//! Workspace-local shim with the `criterion` API subset this repository's
//! micro-benchmarks use.
//!
//! The real `criterion` is a registry crate; this repository builds in
//! network-restricted environments, so the workspace carries a minimal
//! wall-clock harness as a path dependency: fixed warm-up, a measured
//! sample of batches, and a mean/min report per benchmark. No statistical
//! analysis, plots, or baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement back-ends (only wall-clock time in the shim).
pub mod measurement {
    /// Wall-clock time measurement.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{}/{}", name.into(), parameter) }
    }
}

/// Runs closures and accumulates elapsed time.
// Structural: benches receive `&mut Bencher` through the closure argument
// without naming the type.
#[derive(Debug, Default)]
// lint:allow(shim-surface-drift)
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated executions of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One timed batch per call; the harness calls `iter` through
        // several samples.
        let batch = 16u64;
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += batch;
    }
}

#[derive(Debug, Clone, Copy)]
struct GroupConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    criterion: &'a mut Criterion,
    name: String,
    config: GroupConfig,
    throughput: Option<Throughput>,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of measured samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the measurement duration budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        run_one(&full, self.config, self.throughput, f);
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let full = format!("{}/{}", self.name, id.name);
        run_one(&full, self.config, self.throughput, |b| f(b, input));
    }

    /// Finishes the group.
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

fn run_one(
    name: &str,
    config: GroupConfig,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm-up.
    let warm_start = Instant::now();
    while warm_start.elapsed() < config.warm_up_time {
        let mut b = Bencher::default();
        f(&mut b);
        if b.iters == 0 {
            break; // `iter` never called; nothing to measure
        }
    }
    // Measurement.
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    let measure_start = Instant::now();
    for _ in 0..config.sample_size {
        let mut b = Bencher::default();
        f(&mut b);
        if b.iters == 0 {
            // Reporting to stdout is this harness's entire purpose.
            // lint:allow(no-stdout-in-libs)
            println!("{name}: no iterations");
            return;
        }
        let per_iter = b.elapsed / b.iters.max(1) as u32;
        best = best.min(per_iter);
        total += b.elapsed;
        total_iters += b.iters;
        if measure_start.elapsed() > config.measurement_time {
            break;
        }
    }
    let mean = if total_iters == 0 { Duration::ZERO } else { total / total_iters as u32 };
    let rate = throughput.map(|t| {
        let per_sec = |n: u64| n as f64 / mean.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => format!(" ({:.3e} elem/s)", per_sec(n)),
            Throughput::Bytes(n) => format!(" ({:.3e} B/s)", per_sec(n)),
        }
    });
    // Reporting to stdout is this harness's entire purpose.
    // lint:allow(no-stdout-in-libs)
    println!("{name}: mean {mean:?}, best {best:?}{}", rate.unwrap_or_default());
}

/// The benchmark harness entry object.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            config: GroupConfig::default(),
            throughput: None,
            _measurement: std::marker::PhantomData,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, GroupConfig::default(), None, f);
        self
    }

    /// Upstream-compatible no-op (CLI arguments are ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(100));
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.bench_with_input(BenchmarkId::new("input", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(runs > 0);
    }
}
