//! Workspace-local shim with `parking_lot`'s lock API over `std::sync`.
//!
//! The real `parking_lot` is a registry crate; this repository builds in
//! network-restricted environments, so the workspace carries the small API
//! subset it uses as a path dependency. Semantics match `parking_lot` where
//! it differs from `std`: locks are **not poisoned** — a panic while a
//! guard is held leaves the lock usable, which the engine's panic-isolation
//! layer relies on (a quarantined episode must never wedge the session's
//! shared state behind a poisoned latch).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock that ignores poisoning.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard of [`Mutex::lock`].
// Structural: the return type of `lock()`; callers use it through Deref
// without naming it. lint:allow(shim-surface-drift)
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        };
        match g {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock that ignores poisoning.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard of [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII guard of [`RwLock::write`].
// Structural: the return type of `write()`; callers use it through Deref
// without naming it. lint:allow(shim-surface-drift)
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Acquires exclusive write access. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &*g).finish(),
            Err(sync::TryLockError::Poisoned(e)) => {
                f.debug_struct("RwLock").field("data", &*e.into_inner()).finish()
            }
            Err(sync::TryLockError::WouldBlock) => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1; // would panic with std's poisoning semantics
        assert_eq!(*m.lock(), 1);
    }
}
