//! Workspace-local shim with the `rand` API subset this repository uses.
//!
//! The real `rand` is a registry crate; this repository builds in
//! network-restricted environments, so the workspace carries a small,
//! self-contained implementation as a path dependency. The generator is
//! xoshiro256** seeded through SplitMix64 — statistically solid for
//! workload generation and ε-greedy exploration, deterministic for a given
//! seed. Streams differ from upstream `rand`'s ChaCha-based `StdRng`, so
//! seed-pinned expectations belong to *this* generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, `rand`-style.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a value from the "standard" distribution: uniform in
    /// `[0, 1)` for floats, uniform over all values for integers and
    /// `bool`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        unit_f64(self.next_u64()) < p
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator);
        self.gen_range(0..denominator) < numerator
    }
}

impl<T: RngCore> Rng for T {}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable from the standard distribution via [`Rng::gen`].
// Structural: the bound of `Rng::gen`. lint:allow(shim-surface-drift)
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can be sampled uniformly.
// Structural: the bound of `Rng::gen_range`. lint:allow(shim-surface-drift)
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types with a uniform sampler over `[lo, hi)` / `[lo, hi]`.
///
/// The generic `SampleRange` impls below hang off this trait — one impl
/// per range *shape*, as in upstream `rand`, so that integer-literal
/// ranges unify with surrounding expression types during inference.
// Structural: element-type bound behind `SampleRange`. lint:allow(shim-surface-drift)
pub trait SampleUniform: Sized {
    /// Uniform draw; `inclusive` selects `[lo, hi]` over `[lo, hi)`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Debiased multiply-shift (Lemire); the widening multiply maps the
    // 64-bit stream onto [0, span) with rejection of the biased low zone.
    let zone = span.wrapping_neg() % span; // = 2^64 mod span
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "empty gen_range");
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64, _inclusive: bool) -> f64 {
        assert!(lo < hi, "empty gen_range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32, _inclusive: bool) -> f32 {
        assert!(lo < hi, "empty gen_range");
        lo + (unit_f64(rng.next_u64()) as f32) * (hi - lo)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty gen_range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start() <= self.end(), "empty gen_range");
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' seeding advice.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (`SliceRandom`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// Commonly used re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let f = rng.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn gen_ratio_edge_cases() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..50).any(|_| rng.gen_ratio(0, 3)));
        assert!((0..50).all(|_| rng.gen_ratio(3, 3)));
    }

    #[test]
    fn shuffle_and_choose_are_permutations() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
