//! Workspace-local shim with the `proptest` API subset this repository's
//! property tests use.
//!
//! The real `proptest` is a registry crate; this repository builds in
//! network-restricted environments, so the workspace carries a compact
//! random-testing harness as a path dependency. Supported surface:
//! [`proptest!`] with an optional `#![proptest_config(..)]` header,
//! integer/float range strategies, tuples, `any::<T>()`,
//! `prop::collection::{vec, btree_set}`, `prop::option::of`,
//! [`Strategy::prop_map`], and the `prop_assert*` macros.
//!
//! Differences from upstream: cases are drawn from a seed derived from the
//! test name (override with `PROPTEST_SEED`), and failing inputs are not
//! shrunk — the failing case index and seed are printed for replay.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::prelude::*;

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The shim's test-case generator.
// Structural: strategies receive `&mut TestRng` without naming the type.
// lint:allow(shim-surface-drift)
pub type TestRng = StdRng;

/// Derives the base RNG for a named test: `PROPTEST_SEED` if set, else a
/// stable hash of the test name.
fn rng_for(test_name: &str) -> TestRng {
    let seed = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse::<u64>().unwrap_or(0xF00D),
        Err(_) => {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        }
    };
    TestRng::seed_from_u64(seed)
}

/// A value generator (no shrinking in the shim).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
// Structural: the return type of `prop_map`. lint:allow(shim-surface-drift)
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// A strategy for any value of `T` ([`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// `any::<T>()` — arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Types with a canonical "arbitrary value" strategy.
// Structural: the bound of `any::<T>()`. lint:allow(shim-surface-drift)
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Collection size specification: a fixed count or a half-open range.
#[derive(Debug, Clone, Copy)]
// Structural: callers pass `usize`/ranges through `impl Into<SizeRange>`.
// lint:allow(shim-surface-drift)
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..self.hi)
    }
}

/// Strategy combinators namespaced like upstream `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
        #[derive(Debug, Clone)]
        // Structural: the return type of `vec()`. lint:allow(shim-surface-drift)
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `vec(element, size)` — vectors of `element` values.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.sample(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy for `BTreeSet<S::Value>`.
        #[derive(Debug, Clone)]
        // Structural: the return type of `btree_set()`. lint:allow(shim-surface-drift)
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `btree_set(element, size)` — sets with a *target* size drawn
        /// from `size`; duplicates shrink the realized size, as upstream.
        pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = std::collections::BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.sample(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy for `Option<S::Value>`, `None` 25% of the time.
        #[derive(Debug, Clone)]
        // Structural: the return type of `of()`. lint:allow(shim-surface-drift)
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `of(element)` — `Some(element)` or `None`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                if rng.gen_bool(0.75) {
                    Some(self.inner.generate(rng))
                } else {
                    None
                }
            }
        }
    }
}

/// Runs `cases` random executions of a closure over generated inputs.
/// Used by the [`proptest!`] expansion; panics propagate with a replay
/// header identifying the failing case.
pub fn run_cases(test_name: &str, cases: u32, mut case_fn: impl FnMut(&mut TestRng)) {
    let mut rng = rng_for(test_name);
    for case in 0..cases {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            case_fn(&mut rng)
        }));
        if let Err(payload) = result {
            // Failure-replay reporting is part of the harness contract.
            // lint:allow(no-stdout-in-libs)
            eprintln!(
                "proptest shim: `{test_name}` failed at case {case}/{cases} \
                 (set PROPTEST_SEED to replay a fixed stream)"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), config.cases, |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)*
                    $body
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_sample_in_bounds(x in 0u32..10, y in -4i64..=4, f in 0.25f64..0.75) {
            prop_assert!(x < 10);
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn collections_and_tuples(
            v in prop::collection::vec((0u8..4, 0i64..100), 0..6),
            s in prop::collection::btree_set(0u32..50, 0..10),
            o in prop::option::of(1usize..3),
            b in any::<bool>(),
        ) {
            prop_assert!(v.len() < 6);
            prop_assert!(s.len() < 10);
            prop_assert!(s.iter().all(|&x| x < 50));
            if let Some(x) = o {
                prop_assert!((1..3).contains(&x));
            }
            let _ = b;
        }

        #[test]
        fn prop_map_applies(doubled in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled < 20);
        }
    }

    #[test]
    fn fixed_size_vec_is_exact() {
        let strat = prop::collection::vec(0i64..5, 7usize);
        let mut rng = crate::rng_for("fixed_size_vec_is_exact");
        for _ in 0..20 {
            assert_eq!(crate::Strategy::generate(&strat, &mut rng).len(), 7);
        }
    }

    #[test]
    fn named_rng_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = crate::rng_for("t");
            (0..4).map(|_| rand::RngCore::next_u64(&mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::rng_for("t");
            (0..4).map(|_| rand::RngCore::next_u64(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
