//! Watching the policy learn (Fig. 16's convergence view): runs a chains
//! workload with cost tracing enabled and prints measured vs estimated
//! episode cost as execution progresses. Early episodes explore (measured
//! high, estimate optimistic-zero); as future costs propagate through the
//! Q-table the two curves approach each other.
//!
//! ```sh
//! cargo run --release --example learning_curve [chains] [relations]
//! ```

use roulette::core::EngineConfig;
use roulette::exec::RouletteEngine;
use roulette::query::generator::chains_queries;
use roulette::storage::datagen::chains::{self, ChainsParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let c: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let r: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(9);

    let params = ChainsParams { chains: c, relations: r, domain: 800, hub_rows: 6000 };
    println!("Chains workload {} (half shrinking, half expanding joins)", params.label());
    let ds = chains::generate(params, 3);
    let queries = chains_queries(&ds, 64, 17).expect("workload generation");

    let engine =
        RouletteEngine::new(&ds.catalog, EngineConfig::default().with_vector_size(512).unwrap());
    let mut session = engine.session(queries.len());
    session.enable_trace();
    for q in &queries {
        session.admit(q.clone()).unwrap();
    }
    session.run();
    let out = session.finish();

    // Bucket the trace into windows and print the two curves.
    let window = (out.trace.len() / 24).max(1);
    println!("\n{:>10}  {:>14}  {:>14}  {:>8}", "episodes", "measured cost", "estimated best", "ratio");
    for chunk in out.trace.chunks(window) {
        let measured: f64 = chunk.iter().map(|t| t.measured).sum::<f64>() / chunk.len() as f64;
        let estimated: f64 = chunk.iter().map(|t| t.estimated).sum::<f64>() / chunk.len() as f64;
        let last = chunk.last().unwrap().episode;
        let ratio = if estimated > 0.0 { measured / estimated } else { f64::NAN };
        println!("{last:>10}  {measured:>14.0}  {estimated:>14.0}  {ratio:>8.2}");
    }
    println!(
        "\nConvergence: the estimate rises from its optimistic start while the\n\
         measured cost falls; a ratio near 1 means the policy's model of the\n\
         best achievable plan matches what execution actually pays."
    );
}
