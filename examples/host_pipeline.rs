//! The full Figure 6 pipeline: the host delegates SPJ sub-queries to
//! RouLette, then consumes the routed results with its own operators —
//! GROUP BY (Γ), aggregation, and ORDER BY (sort) — exactly like Q1 in the
//! paper's running example:
//!
//! ```sql
//! SELECT R.b, sum(R.c) FROM R, S, T
//! WHERE R.a = S.a AND R.b = T.b AND R.d BETWEEN -3 AND 3 AND S.g < 7
//! GROUP BY R.b ORDER BY R.b
//! ```
//!
//! ```sh
//! cargo run --release --example host_pipeline
//! ```

use roulette::core::{EngineConfig, QueryId};
use roulette::exec::host::{group_by, order_by, Aggregate};
use roulette::exec::RouletteEngine;
use roulette::query::parse;
use roulette::storage::{Catalog, RelationBuilder};

fn main() {
    // --- R, S, T like the paper's running example -------------------------
    let mut catalog = Catalog::new();
    let n = 20_000i64;
    let mut r = RelationBuilder::new("r");
    r.int64("a", (0..n).map(|i| i % 500).collect());
    r.int64("b", (0..n).map(|i| i % 12).collect());
    r.int64("c", (0..n).map(|i| i % 97).collect());
    r.int64("d", (0..n).map(|i| (i % 21) - 10).collect());
    catalog.add(r.build()).unwrap();
    let mut s = RelationBuilder::new("s");
    s.int64("a", (0..500).collect());
    s.int64("g", (0..500).map(|i| i % 15).collect());
    catalog.add(s.build()).unwrap();
    let mut t = RelationBuilder::new("t");
    t.int64("b", (0..12).collect());
    catalog.add(t.build()).unwrap();

    // --- The SPJ sub-query RouLette executes -------------------------------
    // The host's optimizer strips GROUP BY / ORDER BY, delegates the SPJ
    // part with the columns the consumers need projected.
    let spj = parse(
        &catalog,
        "SELECT r.b, r.c FROM r, s, t \
         WHERE r.a = s.a AND r.b = t.b \
         AND r.d BETWEEN -3 AND 3 AND s.g < 7",
    )
    .expect("valid SPJ");

    let engine = RouletteEngine::new(&catalog, EngineConfig::default());
    let mut session = engine.session(1);
    session.collect_rows().expect("before execution"); // the RouLette source pipelining to the host
    session.admit(spj).unwrap();
    let t0 = std::time::Instant::now();
    session.run();
    let spj_rows = session.take_collected(QueryId(0));
    println!(
        "RouLette delivered {} SPJ tuples to the host in {:?}",
        spj_rows.len(),
        t0.elapsed()
    );

    // --- Host-side consumers: Γ (GROUP BY r.b, SUM(r.c)) then sort ---------
    let grouped = group_by(&spj_rows, &[0], &[Aggregate::Sum(1), Aggregate::Count]);
    let sorted = order_by(grouped, &[0]);

    println!("\n  r.b   sum(r.c)   count");
    for row in &sorted {
        println!("{:>5} {:>10} {:>7}", row[0], row[1], row[2]);
    }

    // Sanity: the count column must sum back to the SPJ cardinality.
    let total: i64 = sorted.iter().map(|r| r[2]).sum();
    assert_eq!(total as usize, spj_rows.len());
    println!("\n(total rows reconcile: {total})");
}
