//! Ad-hoc analytics with runtime admission (§3's online scheduling):
//! JOB-style exploratory queries trickle in while earlier ones are still
//! running. RouLette shares the remainder of ongoing circular scans with
//! the newcomers and keeps adapting the global plan.
//!
//! ```sh
//! cargo run --release --example adhoc_analytics
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use roulette::core::{EngineConfig, QueryId};
use roulette::exec::RouletteEngine;
use roulette::query::generator::job_pool;
use roulette::storage::datagen::imdb;
use std::time::Instant;

fn main() {
    println!("Generating the JOB-like correlated dataset…");
    let ds = imdb::generate(0.4, 11);
    println!(
        "  {} tables (title hub: {} rows)",
        ds.catalog.len(),
        ds.catalog.relation(ds.meta.title).rows()
    );

    let arrivals = job_pool(&ds, 24, 99).expect("workload generation");
    println!("Simulating {} analysts firing ad-hoc queries…\n", arrivals.len());

    let engine = RouletteEngine::new(&ds.catalog, EngineConfig::default());
    let mut session = engine.session(arrivals.len());
    let mut rng = StdRng::seed_from_u64(5);
    use rand::Rng;

    let t0 = Instant::now();
    let mut admitted: Vec<QueryId> = Vec::new();
    for (i, q) in arrivals.iter().enumerate() {
        let id = session.admit(q.clone()).expect("admit");
        admitted.push(id);
        println!(
            "[{:>7.2?}] admitted Q{i} ({} joins, {} predicates)",
            t0.elapsed(),
            q.n_joins(),
            q.predicates.len()
        );
        // Interleave: process a random slice of episodes before the next
        // arrival, as a host would between network events.
        let burst = rng.gen_range(3..12);
        for _ in 0..burst {
            if !session.step() {
                break;
            }
        }
    }
    // Drain the remaining work.
    session.run();
    let elapsed = t0.elapsed();

    println!("\nAll queries complete in {elapsed:?}:");
    for (i, &id) in admitted.iter().enumerate() {
        let r = session.result(id);
        println!("  Q{i}: {} rows", r.rows);
    }
    let stats = session.stats();
    println!(
        "\nengine: {} episodes | {} join tuples | filter {:.1}ms, build {:.1}ms, \
         probe {:.1}ms, route {:.1}ms",
        stats.episodes,
        stats.join_tuples,
        stats.filter_ns as f64 / 1e6,
        stats.build_ns as f64 / 1e6,
        stats.probe_ns as f64 / 1e6,
        stats.route_ns as f64 / 1e6,
    );
}
