//! Multi-tenant dashboard burst — the paper's motivating scenario (§1):
//! hundreds of ad-hoc analytical queries arrive at once (every tenant's
//! dashboard refreshes), and the engine must maximize *throughput*, not
//! individual-query latency.
//!
//! Compares RouLette's shared adaptive execution against the vectorized
//! query-at-a-time engine on a TPC-DS-like burst.
//!
//! ```sh
//! cargo run --release --example dashboard_burst [n_queries] [scale]
//! ```

use roulette::baselines::{ExecMode, QatEngine};
use roulette::core::EngineConfig;
use roulette::exec::RouletteEngine;
use roulette::query::generator::{tpcds_pool, SensitivityParams};
use roulette::storage::datagen::tpcds;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_queries: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(128);
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.3);

    println!("Generating TPC-DS-like data (scale {scale})…");
    let ds = tpcds::generate(scale, 42);
    let total_rows: usize = ds.catalog.relations().map(|(_, r)| r.rows()).sum();
    println!("  {} tables, {} total rows", ds.catalog.len(), total_rows);

    println!("Generating a burst of {n_queries} dashboard queries (4 joins, 10% selectivity)…");
    let queries = tpcds_pool(&ds, SensitivityParams::default(), n_queries, 7).expect("workload generation");

    // --- Query-at-a-time (DBMS-V) -----------------------------------------
    let qat = QatEngine::new(&ds.catalog, ExecMode::Vectorized, 1);
    let t0 = Instant::now();
    let qat_results = qat.execute_serial(&queries);
    let qat_time = t0.elapsed();
    println!(
        "\nDBMS-V (query-at-a-time): {:.2?} total, {:.1} queries/sec",
        qat_time,
        n_queries as f64 / qat_time.as_secs_f64()
    );

    // --- RouLette shared batch --------------------------------------------
    let engine = RouletteEngine::new(&ds.catalog, EngineConfig::default());
    let t0 = Instant::now();
    let outcome = engine.execute_batch(&queries).expect("batch executes");
    let rl_time = t0.elapsed();
    println!(
        "RouLette (shared batch):  {:.2?} total, {:.1} queries/sec",
        rl_time,
        n_queries as f64 / rl_time.as_secs_f64()
    );
    println!(
        "  speedup {:.2}x | {} episodes | {} join tuples | {} pruned",
        qat_time.as_secs_f64() / rl_time.as_secs_f64(),
        outcome.stats.episodes,
        outcome.stats.join_tuples,
        outcome.stats.pruned_tuples,
    );

    // --- Verify every tenant got identical answers --------------------------
    let mismatches = outcome
        .per_query
        .iter()
        .zip(&qat_results)
        .filter(|(a, b)| a != b)
        .count();
    assert_eq!(mismatches, 0, "engines disagree on {mismatches} queries");
    println!("\nAll {n_queries} per-query results identical across engines ✓");
}
