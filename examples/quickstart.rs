//! Quickstart: build a small catalog, write SPJ queries in SQL, and run
//! them through RouLette as one shared batch.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use roulette::core::{EngineConfig, QueryId};
use roulette::exec::RouletteEngine;
use roulette::query::parse;
use roulette::storage::{Catalog, RelationBuilder};

fn main() {
    // --- A tiny orders/customers/items schema ---------------------------
    let mut catalog = Catalog::new();

    let n_orders = 50_000;
    let mut orders = RelationBuilder::new("orders");
    orders.int64("o_custkey", (0..n_orders).map(|i| i * 7 % 2_000).collect());
    orders.int64("o_itemkey", (0..n_orders).map(|i| i * 13 % 500).collect());
    orders.int64("o_total", (0..n_orders).map(|i| i * 31 % 10_000).collect());
    catalog.add(orders.build()).unwrap();

    let mut customer = RelationBuilder::new("customer");
    customer.int64("c_custkey", (0..2_000).collect());
    customer.int64("c_age", (0..2_000).map(|i| 18 + i % 70).collect());
    customer.strings("c_segment", (0..2_000).map(|i| ["retail", "pro", "edu"][i % 3]));
    catalog.add(customer.build()).unwrap();

    let mut item = RelationBuilder::new("item");
    item.int64("i_itemkey", (0..500).collect());
    item.int64("i_price", (0..500).map(|i| 1 + i % 300).collect());
    catalog.add(item.build()).unwrap();

    // --- Three analysts ask overlapping questions at once ----------------
    let sql = [
        "SELECT count(*) FROM orders, customer \
         WHERE orders.o_custkey = customer.c_custkey AND customer.c_age < 30",
        "SELECT count(*) FROM orders, customer, item \
         WHERE orders.o_custkey = customer.c_custkey \
         AND orders.o_itemkey = item.i_itemkey \
         AND item.i_price > 200 AND orders.o_total BETWEEN 1000 AND 5000",
        "SELECT orders.o_total FROM orders, customer \
         WHERE orders.o_custkey = customer.c_custkey \
         AND customer.c_segment = 'pro' AND orders.o_total > 9000",
    ];
    let queries: Vec<_> = sql.iter().map(|s| parse(&catalog, s).expect("valid SPJ")).collect();

    // --- One shared adaptive execution ------------------------------------
    let engine = RouletteEngine::new(&catalog, EngineConfig::default());
    let t0 = std::time::Instant::now();
    let outcome = engine.execute_batch(&queries).expect("batch executes");
    let elapsed = t0.elapsed();

    println!("RouLette executed {} queries in {elapsed:?}\n", queries.len());
    for (i, r) in outcome.per_query.iter().enumerate() {
        println!("  Q{i}: {} rows (checksum {:016x})", r.rows, r.checksum);
    }
    println!(
        "\nengine: {} episodes, {} STeM inserts, {} intermediate join tuples, \
         {} tuples pruned before materialization",
        outcome.stats.episodes,
        outcome.stats.inserted_tuples,
        outcome.stats.join_tuples,
        outcome.stats.pruned_tuples,
    );

    // Collected rows for the projecting query, run through a session.
    let mut session = engine.session(1);
    session.collect_rows().expect("before execution");
    session.admit(queries[2].clone()).unwrap();
    session.run();
    let rows = session.take_collected(QueryId(0));
    println!("\nQ2 sample rows (o_total of big 'pro' orders): {:?}", &rows[..rows.len().min(5)]);
}
