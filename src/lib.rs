//! # RouLette
//!
//! A from-scratch Rust reproduction of *"Scalable Multi-Query Execution
//! using Reinforcement Learning"* (Sioulas & Ailamaki, SIGMOD 2021).
//!
//! RouLette executes batches of Select-Project-Join queries through a
//! single, continuously adapting *global query plan*. Planning happens in
//! fine-grained episodes; an eddy consults a Q-learning policy to order
//! shared selections and symmetric-hash-join probes, and refines that
//! policy from observed intermediate cardinalities.
//!
//! This umbrella crate re-exports the workspace crates:
//!
//! * [`core`] — Data-Query model primitives, cost model, configuration;
//! * [`storage`] — columnar storage, circular scans, data generators;
//! * [`query`] — SPJ queries, parser, workload generators;
//! * [`policy`] — learned (Q-learning) and greedy planning policies;
//! * [`exec`] — STeMs, shared operators, the eddy, and the engine;
//! * [`telemetry`] — low-overhead observability: metrics registry, event
//!   stream, policy introspection, Prometheus/JSONL exporters;
//! * [`baselines`] — comparator engines (query-at-a-time, operator-at-a-
//!   time, Stitch&Share, Match&Share, mini-SWO);
//! * [`stream`] — windowed continuous queries over churning data: logical-
//!   clock windowed relations, a drift-injecting stream driver, and
//!   drift-aware policy recovery metering.
//!
//! ## Quickstart
//!
//! ```
//! use roulette::prelude::*;
//!
//! // A two-table schema with some data.
//! let mut catalog = Catalog::new();
//! let mut orders = RelationBuilder::new("orders");
//! orders.int64("o_custkey", (0..1000).map(|i| i % 100).collect());
//! orders.int64("o_total", (0..1000).map(|i| i % 500).collect());
//! let orders = catalog.add(orders.build()).unwrap();
//! let mut cust = RelationBuilder::new("customer");
//! cust.int64("c_custkey", (0..100).collect());
//! cust.int64("c_age", (0..100).map(|i| 20 + i % 60).collect());
//! let cust = catalog.add(cust.build()).unwrap();
//!
//! // Two SPJ queries sharing the join.
//! let q0 = SpjQuery::builder(&catalog)
//!     .relation("orders").relation("customer")
//!     .join(("orders", "o_custkey"), ("customer", "c_custkey"))
//!     .range("orders", "o_total", 0, 250)
//!     .build().unwrap();
//! let q1 = SpjQuery::builder(&catalog)
//!     .relation("orders").relation("customer")
//!     .join(("orders", "o_custkey"), ("customer", "c_custkey"))
//!     .range("customer", "c_age", 30, 50)
//!     .build().unwrap();
//!
//! // Execute the batch through RouLette.
//! let engine = RouletteEngine::new(&catalog, EngineConfig::default());
//! let outcome = engine.execute_batch(&[q0, q1]).unwrap();
//! assert_eq!(outcome.per_query.len(), 2);
//! assert!(outcome.per_query[0].rows > 0);
//! let _ = (orders, cust);
//! ```

#![forbid(unsafe_code)]

pub use roulette_baselines as baselines;
pub use roulette_core as core;
pub use roulette_exec as exec;
pub use roulette_policy as policy;
pub use roulette_query as query;
pub use roulette_storage as storage;
pub use roulette_stream as stream;
pub use roulette_telemetry as telemetry;

/// Convenient glob-import surface for applications.
pub mod prelude {
    pub use roulette_core::{
        CostModel, EngineConfig, Error, OpKind, QueryId, QuerySet, RelId, RelSet, Result,
    };
    pub use roulette_exec::{BatchOutcome, RouletteEngine};
    pub use roulette_query::{JoinGraph, SpjQuery};
    pub use roulette_storage::{Catalog, Column, Relation, RelationBuilder};
}
