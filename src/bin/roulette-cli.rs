//! `roulette-cli` — an interactive shell around the RouLette engine.
//!
//! Load CSVs (or generate the synthetic evaluation datasets), queue SPJ
//! queries, and execute the queue as one shared adaptive batch:
//!
//! ```text
//! $ cargo run --release --bin roulette-cli
//! > \load data/orders.csv
//! > \load data/customer.csv
//! > SELECT count(*) FROM orders, customer WHERE orders.custkey = customer.custkey
//! > SELECT orders.total FROM orders, customer WHERE orders.custkey = customer.custkey AND customer.age < 30
//! > \go
//! Q0: 15230 rows ...
//! ```
//!
//! Commands: `\load FILE [NAME]`, `\gen tpcds|imdb [SF]`, `\tables`,
//! `\schema REL`, `\batch` (show queue), `\save FILE` / `\open FILE`
//! (queue as SQL, one statement per line), `\clear`, `\go`, `\explain`
//! (the learned plan of the last run), `\quit`. Any other line is parsed
//! as SQL and queued.

use roulette::core::{EngineConfig, QueryId};
use roulette::exec::RouletteEngine;
use roulette::query::{parse, to_sql, SpjQuery};
use roulette::storage::datagen::{imdb, tpcds};
use roulette::storage::{relation_from_csv_path, Catalog};
use std::io::{BufRead, Write};

struct Shell {
    catalog: Catalog,
    pending: Vec<SpjQuery>,
    config: EngineConfig,
    last_plan: Option<String>,
}

impl Shell {
    fn new() -> Self {
        Shell {
            catalog: Catalog::new(),
            pending: Vec::new(),
            config: EngineConfig::default(),
            last_plan: None,
        }
    }

    fn handle(&mut self, line: &str, out: &mut impl Write) -> std::io::Result<bool> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(true);
        }
        if let Some(cmd) = line.strip_prefix('\\') {
            let mut parts = cmd.split_whitespace();
            match parts.next().unwrap_or("") {
                "quit" | "q" => return Ok(false),
                "load" => match parts.next() {
                    Some(path) => {
                        let name = parts.next();
                        match relation_from_csv_path(std::path::Path::new(path), name)
                            .and_then(|rel| self.catalog.add(rel))
                        {
                            Ok(id) => {
                                let rel = self.catalog.relation(id);
                                writeln!(out, "loaded {} ({} rows)", rel.name(), rel.rows())?;
                            }
                            Err(e) => writeln!(out, "error: {e}")?,
                        }
                    }
                    None => writeln!(out, "usage: \\load FILE [NAME]")?,
                },
                "gen" => {
                    let which = parts.next().unwrap_or("tpcds");
                    let sf: f64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0.1);
                    if !self.catalog.is_empty() {
                        writeln!(out, "error: \\gen needs an empty catalog")?;
                        return Ok(true);
                    }
                    match which {
                        "tpcds" => {
                            self.catalog = tpcds::generate(sf, 42).catalog;
                            writeln!(out, "generated TPC-DS-like dataset (sf {sf})")?;
                        }
                        "imdb" => {
                            self.catalog = imdb::generate(sf, 42).catalog;
                            writeln!(out, "generated JOB-like dataset (sf {sf})")?;
                        }
                        other => writeln!(out, "error: unknown dataset '{other}'")?,
                    }
                }
                "tables" => {
                    for (_, rel) in self.catalog.relations() {
                        writeln!(out, "{} ({} rows, {} columns)", rel.name(), rel.rows(), rel.width())?;
                    }
                }
                "schema" => match parts.next() {
                    Some(name) => match self.catalog.relation_id(name) {
                        Ok(id) => {
                            for (col, _) in self.catalog.relation(id).columns() {
                                writeln!(out, "{name}.{col}")?;
                            }
                        }
                        Err(e) => writeln!(out, "error: {e}")?,
                    },
                    None => writeln!(out, "usage: \\schema REL")?,
                },
                "batch" => {
                    for (i, q) in self.pending.iter().enumerate() {
                        writeln!(out, "Q{i}: {}", to_sql(&self.catalog, q))?;
                    }
                    writeln!(out, "{} queued", self.pending.len())?;
                }
                "clear" => {
                    self.pending.clear();
                    writeln!(out, "queue cleared")?;
                }
                "save" => match parts.next() {
                    Some(path) => {
                        // One SQL statement per line; re-parsable by \open.
                        let mut text = String::new();
                        for q in &self.pending {
                            text.push_str(&to_sql(&self.catalog, q));
                            text.push('\n');
                        }
                        match std::fs::write(path, text) {
                            Ok(()) => writeln!(out, "saved {} queries", self.pending.len())?,
                            Err(e) => writeln!(out, "error: {e}")?,
                        }
                    }
                    None => writeln!(out, "usage: \\save FILE")?,
                },
                "open" => match parts.next() {
                    Some(path) => match std::fs::read_to_string(path) {
                        Ok(text) => {
                            // Re-parse against the current catalog; skip
                            // statements that no longer validate.
                            let mut kept = 0;
                            for stmt in text.lines().map(str::trim) {
                                if stmt.is_empty() || stmt.starts_with('#') {
                                    continue;
                                }
                                match parse(&self.catalog, stmt) {
                                    Ok(q) => {
                                        self.pending.push(q);
                                        kept += 1;
                                    }
                                    Err(e) => writeln!(out, "skipped: {e}")?,
                                }
                            }
                            writeln!(out, "opened {kept} queries")?;
                        }
                        Err(e) => writeln!(out, "error: {e}")?,
                    },
                    None => writeln!(out, "usage: \\open FILE")?,
                },
                "explain" => match &self.last_plan {
                    Some(plan) => write!(out, "{plan}")?,
                    None => writeln!(out, "nothing executed yet; run \\go first")?,
                },
                "go" => self.execute(out)?,
                other => writeln!(out, "error: unknown command '\\{other}'")?,
            }
            return Ok(true);
        }
        // SQL line: parse and queue.
        match parse(&self.catalog, line) {
            Ok(q) => {
                writeln!(out, "queued as Q{}", self.pending.len())?;
                self.pending.push(q);
            }
            Err(e) => writeln!(out, "error: {e}")?,
        }
        Ok(true)
    }

    fn execute(&mut self, out: &mut impl Write) -> std::io::Result<()> {
        if self.pending.is_empty() {
            writeln!(out, "nothing queued")?;
            return Ok(());
        }
        let queries = std::mem::take(&mut self.pending);
        let engine = RouletteEngine::new(&self.catalog, self.config.clone());
        let collect = queries.iter().any(|q| !q.projections.is_empty());
        let t0 = std::time::Instant::now();
        let mut session = engine.session(queries.len());
        if collect {
            session.collect_rows().expect("before execution");
        }
        for q in &queries {
            if let Err(e) = session.admit(q.clone()) {
                writeln!(out, "error: {e}")?;
                return Ok(());
            }
        }
        session.run();
        let elapsed = t0.elapsed();
        // Capture the learned plan for \explain: a greedy decode rooted at
        // the largest scanned relation.
        self.last_plan = {
            let batch = session.batch();
            let root = batch
                .scanned_relations()
                .iter()
                .max_by_key(|&r| self.catalog.relation(r).rows());
            root.map(|root| {
                let space = roulette::exec::JoinSpace::new(batch);
                let full = roulette::core::QuerySet::full(batch.capacity());
                let plan = session.with_policy(|policy| {
                    roulette::exec::planner::plan_join_phase(batch, &space, policy, root, &full)
                });
                format!(
                    "learned join-phase plan from {}:\n{}",
                    self.catalog.relation(root).name(),
                    plan.explain(&self.catalog)
                )
            })
        };
        for (i, q) in queries.iter().enumerate() {
            let r = session.result(QueryId(i as u32));
            if q.projections.is_empty() {
                writeln!(out, "Q{i}: {} rows", r.rows)?;
            } else {
                let rows = session.take_collected(QueryId(i as u32));
                writeln!(out, "Q{i}: {} rows", r.rows)?;
                for row in rows.iter().take(10) {
                    writeln!(out, "  {row:?}")?;
                }
                if rows.len() > 10 {
                    writeln!(out, "  … {} more", rows.len() - 10)?;
                }
            }
        }
        let stats = session.stats();
        writeln!(
            out,
            "({} queries in {elapsed:.2?}; {} episodes, {} join tuples, {} pruned)",
            queries.len(),
            stats.episodes,
            stats.join_tuples,
            stats.pruned_tuples
        )?;
        Ok(())
    }
}

/// Runs the shell over arbitrary input/output (unit-testable core).
fn run<R: BufRead, W: Write>(input: R, mut output: W) -> std::io::Result<()> {
    let mut shell = Shell::new();
    for line in input.lines() {
        let line = line?;
        if !shell.handle(&line, &mut output)? {
            break;
        }
    }
    Ok(())
}

fn main() -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    println!("RouLette shell — \\gen tpcds 0.1, SQL lines, \\go. \\quit to exit.");
    run(stdin.lock(), stdout.lock())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(script: &str) -> String {
        let mut out = Vec::new();
        run(script.as_bytes(), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn generate_query_and_execute() {
        let out = drive(
            "\\gen tpcds 0.05\n\
             SELECT count(*) FROM store_sales, date_dim WHERE store_sales.ss_sold_date_sk = date_dim.d_date_sk\n\
             \\go\n",
        );
        assert!(out.contains("generated TPC-DS-like dataset"));
        assert!(out.contains("queued as Q0"));
        assert!(out.contains("Q0:"), "{out}");
        assert!(out.contains("episodes"));
    }

    #[test]
    fn load_csv_and_project() {
        let dir = std::env::temp_dir().join("roulette_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("orders.csv");
        std::fs::write(&path, "custkey,total\n1,100\n2,250\n1,50\n").unwrap();
        let script = format!(
            "\\load {}\n\
             \\tables\n\
             SELECT orders.total FROM orders WHERE orders.total > 60\n\
             \\go\n",
            path.display()
        );
        let out = drive(&script);
        assert!(out.contains("loaded orders (3 rows)"), "{out}");
        assert!(out.contains("Q0: 2 rows"), "{out}");
        assert!(out.contains("[100]"), "{out}");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let out = drive(
            "\\load /nonexistent/file.csv\n\
             SELECT nonsense\n\
             \\nosuch\n\
             \\schema missing\n\
             \\go\n",
        );
        assert!(out.contains("error:"));
        assert!(out.contains("unknown command"));
        assert!(out.contains("nothing queued"));
    }

    #[test]
    fn batch_and_clear() {
        let out = drive(
            "\\gen tpcds 0.05\n\
             SELECT count(*) FROM item\n\
             \\batch\n\
             \\clear\n\
             \\batch\n",
        );
        assert!(out.contains("1 queued"));
        assert!(out.contains("queue cleared"));
        assert!(out.contains("0 queued"));
    }

    #[test]
    fn save_open_round_trip() {
        let dir = std::env::temp_dir().join("roulette_cli_save");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("workload.sql");
        let script = format!(
            "\\gen tpcds 0.05
             SELECT count(*) FROM store_sales, item WHERE store_sales.ss_item_sk = item.i_item_sk
             \\save {p}
             \\clear
             \\open {p}
             \\batch
",
            p = path.display()
        );
        let out = drive(&script);
        assert!(out.contains("saved 1 queries"), "{out}");
        assert!(out.contains("opened 1 queries"), "{out}");
        assert!(out.contains("1 queued"), "{out}");
    }

    #[test]
    fn explain_after_go_shows_learned_plan() {
        let out = drive(
            "\\gen tpcds 0.05
             SELECT count(*) FROM store_sales, item WHERE store_sales.ss_item_sk = item.i_item_sk
             \\go
             \\explain
",
        );
        assert!(out.contains("learned join-phase plan from store_sales"), "{out}");
        assert!(out.contains("Probe STeM("), "{out}");
    }

    #[test]
    fn quit_stops_processing() {
        let out = drive("\\quit\n\\gen tpcds 0.05\n");
        assert!(!out.contains("generated"));
    }
}
