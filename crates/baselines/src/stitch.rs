//! Stitch&Share (QPipe \[16\] / SharedDB \[13\] style plan composition).
//!
//! Each query is optimized *individually* by the cost-based optimizer; the
//! resulting per-query plans are then stitched into a global plan by
//! sharing common sub-trees. Because optimization is query-local, two
//! queries that could share a bigger sub-expression under permuted join
//! orders (the paper's Figure 1) keep their individually-optimal orders
//! and the opportunity is missed — the limitation RouLette's global
//! learned policy removes.

use crate::optimizer::optimize;
use crate::shared::{GlobalPlan, GlobalPlanBuilder};
use roulette_core::RelId;
use roulette_query::{JoinPred, SpjQuery};
use roulette_storage::{Catalog, Stats};

/// Builds the Stitch&Share global plan: individually-optimal left-deep
/// plans merged on common prefixes.
pub fn stitch_plan(catalog: &Catalog, stats: &Stats, queries: &[SpjQuery]) -> GlobalPlan {
    let mut builder = GlobalPlanBuilder::new();
    for q in queries {
        let plan = optimize(q, catalog, stats);
        let steps: Vec<(JoinPred, RelId)> =
            plan.steps.iter().map(|s| (q.joins[s.edge_idx], s.target)).collect();
        builder.add_left_deep(plan.root, &steps);
    }
    builder.build()
}

/// Builds a global plan from caller-supplied left-deep orders (used by the
/// §6.2 "Stitch&Share – Sim" configuration, where the per-query orders come
/// from a learned policy instead of the cost-based optimizer).
pub fn stitch_plan_with_orders(
    queries: &[SpjQuery],
    orders: &[(RelId, Vec<(JoinPred, RelId)>)],
) -> GlobalPlan {
    debug_assert_eq!(queries.len(), orders.len());
    let mut builder = GlobalPlanBuilder::new();
    for (root, steps) in orders {
        builder.add_left_deep(*root, steps);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::execute_global;
    use roulette_query::QueryBatch;
    use roulette_storage::RelationBuilder;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut f = RelationBuilder::new("fact");
        f.int64("fk1", (0..300).map(|i| i % 30).collect());
        f.int64("fk2", (0..300).map(|i| i % 10).collect());
        f.int64("v", (0..300).collect());
        c.add(f.build()).unwrap();
        for (name, rows) in [("d1", 30i64), ("d2", 10)] {
            let mut d = RelationBuilder::new(name);
            d.int64("pk", (0..rows).collect());
            d.int64("w", (0..rows).collect());
            c.add(d.build()).unwrap();
        }
        c
    }

    fn queries(c: &Catalog) -> Vec<SpjQuery> {
        let q0 = SpjQuery::builder(c)
            .relation("fact").relation("d1")
            .join(("fact", "fk1"), ("d1", "pk"))
            .range("fact", "v", 0, 149)
            .build()
            .unwrap();
        let q1 = SpjQuery::builder(c)
            .relation("fact").relation("d1").relation("d2")
            .join(("fact", "fk1"), ("d1", "pk"))
            .join(("fact", "fk2"), ("d2", "pk"))
            .range("d1", "w", 0, 14)
            .build()
            .unwrap();
        vec![q0, q1]
    }

    #[test]
    fn stitched_plan_produces_correct_results() {
        let c = catalog();
        let qs = queries(&c);
        let stats = Stats::sample(&c, 512, 1);
        let plan = stitch_plan(&c, &stats, &qs);
        let batch = QueryBatch::from_queries(c.len(), &qs).unwrap();
        let run = execute_global(&c, &batch, &plan);
        // q0: v in 0..150 → 150 rows, all fk1 match.
        assert_eq!(run.per_query[0].rows, 150);
        // q1: d1.w in 0..15 → fk1 % 30 < 15 → 150 rows.
        assert_eq!(run.per_query[1].rows, 150);
    }

    #[test]
    fn common_subtrees_are_shared() {
        let c = catalog();
        let qs = queries(&c);
        let stats = Stats::sample(&c, 512, 1);
        let plan = stitch_plan(&c, &stats, &qs);
        // If the optimizer picks fact⋈d1 first for q1, the join is shared
        // and the plan has 2 join nodes; otherwise 3. Either way the
        // builder must not duplicate identical sub-expressions:
        let n = plan.join_nodes();
        assert!(n == 2 || n == 3, "join nodes {n}");
        // Identical queries share everything.
        let dup = vec![qs[1].clone(), qs[1].clone(), qs[1].clone()];
        let plan = stitch_plan(&c, &stats, &dup);
        assert_eq!(plan.join_nodes(), 2);
        assert_eq!(plan.final_node[0], plan.final_node[1]);
    }

    #[test]
    fn explicit_orders_override_optimizer() {
        let c = catalog();
        let qs = queries(&c);
        let fact = c.relation_id("fact").unwrap();
        let d1 = c.relation_id("d1").unwrap();
        let d2 = c.relation_id("d2").unwrap();
        let orders = vec![
            (fact, vec![(qs[0].joins[0], d1)]),
            (fact, vec![(qs[1].joins[1], d2), (qs[1].joins[0], d1)]),
        ];
        let plan = stitch_plan_with_orders(&qs, &orders);
        // Orders diverge immediately after the shared scans → 3 joins.
        assert_eq!(plan.join_nodes(), 3);
        let batch = QueryBatch::from_queries(c.len(), &qs).unwrap();
        let run = execute_global(&c, &batch, &plan);
        assert_eq!(run.per_query[0].rows, 150);
        assert_eq!(run.per_query[1].rows, 150);
    }
}
