//! Per-query cost-based join-order optimizer (the optimize-then-execute
//! side of the comparison).
//!
//! The query-at-a-time engines and the online-sharing plan builders all
//! plan with this optimizer: a dynamic program over connected relation
//! subsets (queries are join trees, so every connected subset has a unique
//! joining edge set) minimizing the classic Σ-of-intermediate-cardinalities
//! cost under sampled statistics — uniformity and independence assumptions
//! included, which is exactly where correlated data (JOB) hurts it.

use roulette_core::{RelId, RelSet};
use roulette_query::{JoinGraph, SpjQuery};
use roulette_storage::{Catalog, Stats};
use std::collections::HashMap;

/// One step of a left-deep plan: probe `target` through `edge_idx`
/// (an index into the query's `joins`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinStep {
    /// Index into `query.joins`.
    pub edge_idx: usize,
    /// The relation joined in by this step.
    pub target: RelId,
}

/// A left-deep plan: scan `root`, then apply `steps` in order.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// Driving relation.
    pub root: RelId,
    /// Probe steps in execution order.
    pub steps: Vec<JoinStep>,
    /// Estimated Σ of intermediate cardinalities.
    pub est_cost: f64,
}

/// Estimated post-selection cardinality of one relation.
pub fn base_cardinality(q: &SpjQuery, catalog: &Catalog, stats: &Stats, rel: RelId) -> f64 {
    let mut card = stats.rows(rel) as f64;
    for p in q.predicates_on(rel) {
        card *= stats.range_selectivity(catalog, rel, p.col, p.lo, p.hi);
    }
    card.max(0.01)
}

/// Plans `q` with a DP over connected subsets.
pub fn optimize(q: &SpjQuery, catalog: &Catalog, stats: &Stats) -> QueryPlan {
    let graph = JoinGraph::of(q);
    let rels: Vec<RelId> = q.relations.iter().collect();
    if rels.len() == 1 {
        return QueryPlan { root: rels[0], steps: Vec::new(), est_cost: 0.0 };
    }

    #[derive(Clone)]
    struct State {
        cost: f64,
        card: f64,
        parent: RelSet,
        step: Option<JoinStep>,
    }

    let mut table: HashMap<RelSet, State> = HashMap::new();
    for &r in &rels {
        let card = base_cardinality(q, catalog, stats, r);
        table.insert(
            RelSet::singleton(r),
            State { cost: 0.0, card, parent: RelSet::EMPTY, step: None },
        );
    }

    // Expand subsets in increasing size; tree queries make every connected
    // subset reachable through single-relation extensions.
    for size in 1..rels.len() {
        let frontier: Vec<(RelSet, f64, f64)> = table
            .iter()
            .filter(|(s, _)| s.len() == size)
            .map(|(s, st)| (*s, st.cost, st.card))
            .collect();
        for (set, cost, card) in frontier {
            for (edge_idx, target) in graph.expansions(set) {
                let e = &q.joins[edge_idx];
                let sel = stats.join_selectivity(catalog, e.left, e.right);
                let t_card = base_cardinality(q, catalog, stats, target);
                let new_card = (card * t_card * sel).max(0.01);
                let new_cost = cost + new_card;
                let new_set = set.with(target);
                let better = table
                    .get(&new_set)
                    .is_none_or(|existing| new_cost < existing.cost);
                if better {
                    table.insert(
                        new_set,
                        State {
                            cost: new_cost,
                            card: new_card,
                            parent: set,
                            step: Some(JoinStep { edge_idx, target }),
                        },
                    );
                }
            }
        }
    }

    // Backtrack from the full set.
    let full = q.relations;
    let mut steps = Vec::with_capacity(rels.len() - 1);
    let mut cur = full;
    let est_cost = table[&full].cost;
    while table[&cur].step.is_some() {
        let st = &table[&cur];
        steps.push(st.step.unwrap());
        cur = st.parent;
    }
    steps.reverse();
    let root = cur.first().expect("non-empty root");
    QueryPlan { root, steps, est_cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roulette_query::SpjQuery;
    use roulette_storage::RelationBuilder;

    /// fact(100k-ish) ⋈ big_dim(1000) ⋈ small_dim(10): the small dimension
    /// should be joined first.
    fn star() -> (Catalog, SpjQuery) {
        let mut c = Catalog::new();
        let mut f = RelationBuilder::new("fact");
        f.int64("big_fk", (0..20_000).map(|i| i % 1000).collect());
        f.int64("small_fk", (0..20_000).map(|i| i % 10).collect());
        c.add(f.build()).unwrap();
        let mut b = RelationBuilder::new("big_dim");
        b.int64("pk", (0..1000).collect());
        b.int64("v", (0..1000).collect());
        c.add(b.build()).unwrap();
        let mut s = RelationBuilder::new("small_dim");
        s.int64("pk", (0..10).collect());
        s.int64("v", (0..10).collect());
        c.add(s.build()).unwrap();
        let q = SpjQuery::builder(&c)
            .relation("fact").relation("big_dim").relation("small_dim")
            .join(("fact", "big_fk"), ("big_dim", "pk"))
            .join(("fact", "small_fk"), ("small_dim", "pk"))
            .range("small_dim", "v", 0, 0) // 10% of small_dim
            .build()
            .unwrap();
        (c, q)
    }

    #[test]
    fn selective_dimension_joins_first() {
        let (c, q) = star();
        let stats = Stats::sample(&c, 2000, 1);
        let plan = optimize(&q, &c, &stats);
        assert_eq!(plan.steps.len(), 2);
        // The filtered small dimension must participate in the first join
        // (as root or first target) — it shrinks the intermediate most.
        let small = c.relation_id("small_dim").unwrap();
        assert!(
            plan.root == small || plan.steps[0].target == small,
            "small_dim not joined first: root {:?}, steps {:?}",
            plan.root,
            plan.steps
        );
        // big_dim last: joining it earlier would cost an extra wide
        // intermediate.
        assert_eq!(plan.steps[1].target, c.relation_id("big_dim").unwrap());
        assert!(plan.est_cost > 0.0);
    }

    #[test]
    fn single_relation_plan_is_trivial() {
        let mut c = Catalog::new();
        let mut r = RelationBuilder::new("r");
        r.int64("x", vec![1, 2, 3]);
        c.add(r.build()).unwrap();
        let q = SpjQuery::builder(&c).relation("r").build().unwrap();
        let stats = Stats::sample(&c, 16, 1);
        let plan = optimize(&q, &c, &stats);
        assert!(plan.steps.is_empty());
        assert_eq!(plan.est_cost, 0.0);
    }

    #[test]
    fn steps_respect_connectivity() {
        let (c, q) = star();
        let stats = Stats::sample(&c, 500, 3);
        let plan = optimize(&q, &c, &stats);
        let mut joined = RelSet::singleton(plan.root);
        for step in &plan.steps {
            let e = &q.joins[step.edge_idx];
            let (a, b) = e.rels();
            assert!(joined.contains(a) != joined.contains(b), "cross product step");
            joined = joined.with(step.target);
        }
        assert_eq!(joined, q.relations);
    }

    #[test]
    fn base_cardinality_applies_predicates() {
        let (c, q) = star();
        let stats = Stats::sample(&c, 2000, 1);
        let small = c.relation_id("small_dim").unwrap();
        let card = base_cardinality(&q, &c, &stats, small);
        assert!(card < 5.0, "filtered cardinality {card}");
    }
}
