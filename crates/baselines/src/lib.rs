//! # roulette-baselines
//!
//! The comparator systems of §6: query-at-a-time engines (vectorized
//! "DBMS-V" and MonetDB-style operator-at-a-time), a cost-based per-query
//! optimizer, the online-sharing prototypes (Stitch&Share and Match&Share)
//! executing global Data-Query plans in the batched model, and a mini
//! shared-workload optimizer reproducing offline sharing's scalability
//! wall. All engines produce RouLette-compatible `(rows, checksum)`
//! results, so cross-engine result equivalence is testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hashtable;
pub mod match_share;
pub mod mqo;
pub mod optimizer;
pub mod qat;
pub mod shared;
pub mod stitch;

pub use hashtable::JoinHashTable;
pub use match_share::match_share_plan;
pub use mqo::{enumerate_orders, optimize_shared, MqoResult};
pub use optimizer::{optimize, QueryPlan};
pub use qat::{ExecMode, QatEngine};
pub use shared::{execute_global, GlobalPlan, GlobalPlanBuilder, SharedRun, SubExpr};
pub use stitch::{stitch_plan, stitch_plan_with_orders};
