//! Mini shared-workload optimizer ("SWO-sim", the §6.1 offline-sharing
//! reference point).
//!
//! SWO \[14\] performs sharing-aware optimization: it searches the joint
//! space of per-query join orders for the global plan of minimum total
//! cost. The search space is doubly exponential in the batch size — the
//! paper reports 137 seconds for an 11-query batch — which is precisely
//! why offline sharing cannot scale. This module reproduces that behavior
//! at small scale: it enumerates each query's left-deep orders, searches
//! the cross-product exhaustively while it fits a node budget, and beyond
//! that falls back to coordinate-descent hill climbing (the kind of
//! heuristic later MQO work uses). The cost of a combination is the sum of
//! estimated cardinalities over *distinct* shared sub-expressions.

use crate::optimizer::base_cardinality;
use crate::shared::{GlobalPlan, GlobalPlanBuilder, SubExpr};
use roulette_core::{RelId, RelSet};
use roulette_query::{JoinGraph, JoinPred, SpjQuery};
use roulette_storage::{Catalog, Stats};
use std::collections::HashMap;

/// One left-deep order: root plus `(edge, target)` steps.
pub type Order = (RelId, Vec<(JoinPred, RelId)>);

/// Result of shared-workload optimization.
#[derive(Debug)]
pub struct MqoResult {
    /// The chosen global plan.
    pub plan: GlobalPlan,
    /// Estimated total cost (Σ over distinct sub-expressions).
    pub total_cost: f64,
    /// Join orders chosen per query.
    pub orders: Vec<Order>,
    /// Whether the search was exhaustive (vs hill climbing).
    pub exhaustive: bool,
    /// Number of cost evaluations performed.
    pub evaluations: u64,
    /// Size of the joint search space (saturating): the doubly-exponential
    /// blow-up that prevents offline sharing from scaling.
    pub search_space: u64,
}

/// Enumerates all left-deep orders of a tree query (capped at `cap`).
pub fn enumerate_orders(q: &SpjQuery, cap: usize) -> Vec<Order> {
    let graph = JoinGraph::of(q);
    let mut out: Vec<Order> = Vec::new();
    for root in q.relations.iter() {
        let mut stack: Vec<(RelSet, Vec<(JoinPred, RelId)>)> =
            vec![(RelSet::singleton(root), Vec::new())];
        while let Some((set, steps)) = stack.pop() {
            if out.len() >= cap {
                return out;
            }
            if set == q.relations {
                out.push((root, steps));
                continue;
            }
            for (edge_idx, target) in graph.expansions(set) {
                let mut next = steps.clone();
                next.push((q.joins[edge_idx], target));
                stack.push((set.with(target), next));
            }
        }
    }
    out
}

/// Estimated cardinality of a sub-expression under the sampled stats.
fn subexpr_card(catalog: &Catalog, stats: &Stats, q: &SpjQuery, key: &SubExpr) -> f64 {
    let mut card: f64 =
        key.rels.iter().map(|r| base_cardinality(q, catalog, stats, r)).product();
    for e in &key.edges {
        card *= stats.join_selectivity(catalog, e.left, e.right);
    }
    card.max(0.01)
}

/// Total cost of one order combination: Σ of estimated cardinalities over
/// the distinct sub-expressions the combination materializes.
fn combination_cost(
    catalog: &Catalog,
    stats: &Stats,
    queries: &[SpjQuery],
    orders: &[&Order],
    cache: &mut HashMap<SubExpr, f64>,
) -> f64 {
    let mut seen: HashMap<SubExpr, ()> = HashMap::new();
    let mut total = 0.0;
    for (q, (root, steps)) in queries.iter().zip(orders) {
        let mut key = SubExpr::scan(*root);
        for &(edge, target) in steps {
            key = key.extend(edge, target);
            if seen.insert(key.clone(), ()).is_none() {
                let card = *cache
                    .entry(key.clone())
                    .or_insert_with(|| subexpr_card(catalog, stats, q, &key));
                total += card;
            }
        }
    }
    total
}

/// Runs shared-workload optimization over `queries`.
///
/// `budget` bounds the number of cost evaluations; the cross-product is
/// searched exhaustively iff it fits, otherwise per-query coordinate
/// descent runs until a fixpoint.
pub fn optimize_shared(
    catalog: &Catalog,
    stats: &Stats,
    queries: &[SpjQuery],
    budget: u64,
) -> MqoResult {
    let per_query: Vec<Vec<Order>> =
        queries.iter().map(|q| enumerate_orders(q, 10_000)).collect();
    let mut cache: HashMap<SubExpr, f64> = HashMap::new();
    let mut evaluations = 0u64;

    let combos: u64 = per_query
        .iter()
        .map(|o| o.len() as u64)
        .try_fold(1u64, |acc, n| acc.checked_mul(n))
        .unwrap_or(u64::MAX);

    let mut choice: Vec<usize> = vec![0; queries.len()];
    let mut best_choice = choice.clone();
    let mut best_cost = f64::INFINITY;

    let exhaustive = combos <= budget;
    if exhaustive {
        // Odometer over the cross-product.
        loop {
            let orders: Vec<&Order> =
                choice.iter().zip(&per_query).map(|(&i, os)| &os[i]).collect();
            let cost = combination_cost(catalog, stats, queries, &orders, &mut cache);
            evaluations += 1;
            if cost < best_cost {
                best_cost = cost;
                best_choice = choice.clone();
            }
            // Increment odometer.
            let mut k = 0;
            loop {
                if k == queries.len() {
                    break;
                }
                choice[k] += 1;
                if choice[k] < per_query[k].len() {
                    break;
                }
                choice[k] = 0;
                k += 1;
            }
            if k == queries.len() {
                break;
            }
        }
    } else {
        // Coordinate descent from all-zero (each query's first order).
        best_choice = choice.clone();
        {
            let orders: Vec<&Order> =
                best_choice.iter().zip(&per_query).map(|(&i, os)| &os[i]).collect();
            best_cost = combination_cost(catalog, stats, queries, &orders, &mut cache);
            evaluations += 1;
        }
        let mut improved = true;
        while improved && evaluations < budget {
            improved = false;
            for qi in 0..queries.len() {
                for oi in 0..per_query[qi].len() {
                    if oi == best_choice[qi] {
                        continue;
                    }
                    let mut trial = best_choice.clone();
                    trial[qi] = oi;
                    let orders: Vec<&Order> =
                        trial.iter().zip(&per_query).map(|(&i, os)| &os[i]).collect();
                    let cost = combination_cost(catalog, stats, queries, &orders, &mut cache);
                    evaluations += 1;
                    if cost < best_cost {
                        best_cost = cost;
                        best_choice = trial;
                        improved = true;
                    }
                    if evaluations >= budget {
                        break;
                    }
                }
            }
        }
    }

    // Materialize the chosen global plan.
    let mut builder = GlobalPlanBuilder::new();
    let mut orders = Vec::with_capacity(queries.len());
    for (qi, &oi) in best_choice.iter().enumerate() {
        let (root, steps) = per_query[qi][oi].clone();
        builder.add_left_deep(root, &steps);
        orders.push((root, steps));
    }
    MqoResult {
        plan: builder.build(),
        total_cost: best_cost,
        orders,
        exhaustive,
        evaluations,
        search_space: combos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::execute_global;
    use crate::stitch::stitch_plan;
    use roulette_query::QueryBatch;
    use roulette_storage::RelationBuilder;

    /// The paper's Figure 1: Q1 = R⋈S⋈T⋈U, Q2 = R⋈S⋈U⋈V. Individually
    /// optimal plans share only R⋈S; permuted orders share R⋈S⋈U.
    fn fig1() -> (Catalog, Vec<SpjQuery>) {
        let mut c = Catalog::new();
        // Sizes chosen so T-first is individually best for Q1 and V-first
        // for Q2, while U is big enough that sharing R⋈S⋈U wins globally.
        let n_r = 500usize;
        let mut r = RelationBuilder::new("r");
        r.int64("a", (0..n_r as i64).map(|i| i % 100).collect());
        r.int64("b", (0..n_r as i64).map(|i| i % 50).collect());
        c.add(r.build()).unwrap();
        let mut s = RelationBuilder::new("s");
        s.int64("a", (0..100).collect());
        s.int64("c", (0..100i64).map(|i| i % 20).collect());
        s.int64("d", (0..100i64).map(|i| i % 25).collect());
        c.add(s.build()).unwrap();
        let mut t = RelationBuilder::new("t");
        t.int64("b", (0..50).collect());
        c.add(t.build()).unwrap();
        let mut u = RelationBuilder::new("u");
        u.int64("c", (0..20).collect());
        c.add(u.build()).unwrap();
        let mut v = RelationBuilder::new("v");
        v.int64("d", (0..25).collect());
        c.add(v.build()).unwrap();
        let q1 = SpjQuery::builder(&c)
            .relation("r").relation("s").relation("t").relation("u")
            .join(("r", "a"), ("s", "a"))
            .join(("r", "b"), ("t", "b"))
            .join(("s", "c"), ("u", "c"))
            .build()
            .unwrap();
        let q2 = SpjQuery::builder(&c)
            .relation("r").relation("s").relation("u").relation("v")
            .join(("r", "a"), ("s", "a"))
            .join(("s", "c"), ("u", "c"))
            .join(("s", "d"), ("v", "d"))
            .build()
            .unwrap();
        (c, vec![q1, q2])
    }

    #[test]
    fn enumerate_orders_covers_all_left_deep_plans() {
        let (c, qs) = fig1();
        let orders = enumerate_orders(&qs[0], 10_000);
        // Q1's tree R-(S-(U), T): connected left-deep orders from all roots.
        assert!(orders.len() >= 8);
        // All orders join every relation exactly once.
        for (root, steps) in &orders {
            let mut set = RelSet::singleton(*root);
            for &(_, target) in steps {
                assert!(!set.contains(target));
                set.insert(target);
            }
            assert_eq!(set, qs[0].relations);
        }
        let _ = c;
    }

    #[test]
    fn exhaustive_beats_or_matches_stitching() {
        let (c, qs) = fig1();
        let stats = Stats::sample(&c, 512, 1);
        let swo = optimize_shared(&c, &stats, &qs, 1_000_000);
        assert!(swo.exhaustive);
        // SWO's estimated cost must be ≤ the stitched plan's cost under the
        // same estimator.
        let stitched = stitch_plan(&c, &stats, &qs);
        let batch = QueryBatch::from_queries(c.len(), &qs).unwrap();
        let swo_run = execute_global(&c, &batch, &swo.plan);
        let stitch_run = execute_global(&c, &batch, &stitched);
        // Both are correct (same results)…
        assert_eq!(swo_run.per_query, stitch_run.per_query);
        // …and the shared-optimal plan does no more join work.
        assert!(swo_run.join_tuples <= stitch_run.join_tuples);
    }

    #[test]
    fn hill_climbing_engages_beyond_budget() {
        let (c, qs) = fig1();
        let stats = Stats::sample(&c, 512, 1);
        let many: Vec<SpjQuery> = (0..6).flat_map(|_| qs.clone()).collect();
        let swo = optimize_shared(&c, &stats, &many, 500);
        assert!(!swo.exhaustive);
        assert!(swo.total_cost.is_finite());
        assert_eq!(swo.orders.len(), 12);
    }
}
