//! A chained hash multimap from `i64` join keys to row ids, used by the
//! query-at-a-time engines' hash joins.

/// Multimap from key to `u32` row ids with chained buckets.
#[derive(Debug)]
pub struct JoinHashTable {
    keys: Vec<i64>,
    vids: Vec<u32>,
    buckets: Vec<u32>,
    next: Vec<u32>,
    mask: usize,
}

#[inline]
fn hash_key(key: i64) -> u64 {
    let mut z = key as u64;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl JoinHashTable {
    /// Builds the table from parallel key/row-id slices.
    pub fn build(keys: &[i64], vids: &[u32]) -> Self {
        debug_assert_eq!(keys.len(), vids.len());
        let n_buckets = (keys.len() * 2).next_power_of_two().max(16);
        let mut t = JoinHashTable {
            keys: keys.to_vec(),
            vids: vids.to_vec(),
            buckets: vec![0; n_buckets],
            next: vec![0; keys.len()],
            mask: n_buckets - 1,
        };
        for (i, &key) in keys.iter().enumerate() {
            let b = (hash_key(key) as usize) & t.mask;
            t.next[i] = t.buckets[b];
            t.buckets[b] = i as u32 + 1;
        }
        t
    }

    /// Calls `f(row_id)` for every entry matching `key`.
    #[inline]
    pub fn probe(&self, key: i64, mut f: impl FnMut(u32)) {
        let mut cur = self.buckets[(hash_key(key) as usize) & self.mask];
        while cur != 0 {
            let e = (cur - 1) as usize;
            if self.keys[e] == key {
                f(self.vids[e]);
            }
            cur = self.next[e];
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_probe() {
        let t = JoinHashTable::build(&[5, 7, 5, 9], &[0, 1, 2, 3]);
        let mut hits = Vec::new();
        t.probe(5, |v| hits.push(v));
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 2]);
        let mut none = 0;
        t.probe(8, |_| none += 1);
        assert_eq!(none, 0);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn empty_table() {
        let t = JoinHashTable::build(&[], &[]);
        assert!(t.is_empty());
        let mut n = 0;
        t.probe(1, |_| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn negative_and_extreme_keys() {
        let t = JoinHashTable::build(&[i64::MIN, -1, i64::MAX], &[0, 1, 2]);
        let mut hits = Vec::new();
        t.probe(i64::MIN, |v| hits.push(v));
        assert_eq!(hits, vec![0]);
        hits.clear();
        t.probe(i64::MAX, |v| hits.push(v));
        assert_eq!(hits, vec![2]);
    }
}
