//! Match&Share (DataPath \[2\] style incremental global planning).
//!
//! Queries are admitted one at a time; each is grafted onto the existing
//! global plan with minimum *additional* cost: planning starts from the
//! largest already-materialized sub-expression usable by the query, and
//! each extension step prefers (i) reusing an existing sub-expression and
//! otherwise (ii) the cheapest new join under the sampled statistics.
//! Being admission-order-sensitive and estimate-driven (uniformity
//! assumptions — the paper notes its optimizer "supports only uniform
//! data"), it shares less than sharing-aware optimization would.

use crate::optimizer::base_cardinality;
use crate::shared::{GlobalPlan, GlobalPlanBuilder, SubExpr};
use roulette_core::RelSet;
use roulette_query::{JoinGraph, SpjQuery};
use roulette_storage::{Catalog, Stats};

/// Builds the Match&Share global plan by admitting `queries` in order.
pub fn match_share_plan(catalog: &Catalog, stats: &Stats, queries: &[SpjQuery]) -> GlobalPlan {
    let mut builder = GlobalPlanBuilder::new();
    for q in queries {
        admit(&mut builder, catalog, stats, q);
    }
    builder.build()
}

fn admit(builder: &mut GlobalPlanBuilder, catalog: &Catalog, stats: &Stats, q: &SpjQuery) {
    let graph = JoinGraph::of(q);

    // Seed: the largest existing sub-expression embeddable in q (its
    // relations ⊆ q's, every edge one of q's joins). Ties break toward
    // more relations, then fewer estimated rows via relation count.
    let mut seed: Option<SubExpr> = None;
    for (key, _) in builder.known() {
        if !key.rels.is_subset_of(q.relations) {
            continue;
        }
        if !key.edges.iter().all(|e| q.joins.contains(e)) {
            continue;
        }
        let better = match &seed {
            None => true,
            Some(s) => key.rels.len() > s.rels.len(),
        };
        if better {
            seed = Some(key.clone());
        }
    }
    let mut key = match seed {
        Some(s) => s,
        None => {
            // No reusable state: start from the cheapest filtered scan.
            let root = q
                .relations
                .iter()
                .min_by(|&a, &b| {
                    base_cardinality(q, catalog, stats, a)
                        .total_cmp(&base_cardinality(q, catalog, stats, b))
                })
                .expect("query has relations");
            builder.scan(root);
            SubExpr::scan(root)
        }
    };

    // Greedy extension: reuse if possible, otherwise cheapest estimate.
    let mut card = est_card(catalog, stats, q, &key);
    while key.rels != q.relations {
        let expansions = graph.expansions(key.rels);
        debug_assert!(!expansions.is_empty(), "tree query always extensible");
        let mut best: Option<(usize, RelSet, f64, bool)> = None;
        for (edge_idx, target) in expansions {
            let next = key.extend(q.joins[edge_idx], target);
            let exists = builder.node_of(&next).is_some();
            let sel = stats.join_selectivity(catalog, q.joins[edge_idx].left, q.joins[edge_idx].right);
            let next_card = card * base_cardinality(q, catalog, stats, target) * sel;
            // Reuse beats everything; then cheaper estimates win.
            let better = match &best {
                None => true,
                Some((_, _, best_card, best_exists)) => {
                    (exists && !best_exists) || (exists == *best_exists && next_card < *best_card)
                }
            };
            if better {
                best = Some((edge_idx, RelSet::singleton(target), next_card, exists));
            }
        }
        let (edge_idx, target, next_card, _) = best.expect("candidate exists");
        let target = target.first().unwrap();
        let (next_key, _) = builder.join(&key, q.joins[edge_idx], target);
        key = next_key;
        card = next_card;
    }
    builder.finalize_query(&key);
}

fn est_card(catalog: &Catalog, stats: &Stats, q: &SpjQuery, key: &SubExpr) -> f64 {
    let mut card: f64 = key
        .rels
        .iter()
        .map(|r| base_cardinality(q, catalog, stats, r))
        .product();
    for e in &key.edges {
        card *= stats.join_selectivity(catalog, e.left, e.right);
    }
    card.max(0.01)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::execute_global;
    use roulette_query::QueryBatch;
    use roulette_storage::RelationBuilder;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut f = RelationBuilder::new("fact");
        f.int64("fk1", (0..400).map(|i| i % 40).collect());
        f.int64("fk2", (0..400).map(|i| i % 8).collect());
        c.add(f.build()).unwrap();
        for (name, rows) in [("d1", 40i64), ("d2", 8)] {
            let mut d = RelationBuilder::new(name);
            d.int64("pk", (0..rows).collect());
            d.int64("w", (0..rows).collect());
            c.add(d.build()).unwrap();
        }
        c
    }

    #[test]
    fn reuses_existing_subexpressions() {
        let c = catalog();
        let q_rs = SpjQuery::builder(&c)
            .relation("fact").relation("d1")
            .join(("fact", "fk1"), ("d1", "pk"))
            .build()
            .unwrap();
        let q_rst = SpjQuery::builder(&c)
            .relation("fact").relation("d1").relation("d2")
            .join(("fact", "fk1"), ("d1", "pk"))
            .join(("fact", "fk2"), ("d2", "pk"))
            .build()
            .unwrap();
        let stats = Stats::sample(&c, 256, 1);
        let plan = match_share_plan(&c, &stats, &[q_rs.clone(), q_rst.clone()]);
        // The second query starts from the materialized fact⋈d1 → only one
        // extra join node.
        assert_eq!(plan.join_nodes(), 2);

        let batch = QueryBatch::from_queries(c.len(), &[q_rs, q_rst]).unwrap();
        let run = execute_global(&c, &batch, &plan);
        assert_eq!(run.per_query[0].rows, 400);
        assert_eq!(run.per_query[1].rows, 400);
    }

    #[test]
    fn admission_order_changes_the_plan() {
        // d2 is much more selective than d1 in q_big, so planned alone it
        // joins d2 first; after q_rs materializes fact⋈d1, reuse flips the
        // order — admission order sensitivity.
        let c = catalog();
        let q_rs = SpjQuery::builder(&c)
            .relation("fact").relation("d1")
            .join(("fact", "fk1"), ("d1", "pk"))
            .build()
            .unwrap();
        let q_big = SpjQuery::builder(&c)
            .relation("fact").relation("d1").relation("d2")
            .join(("fact", "fk1"), ("d1", "pk"))
            .join(("fact", "fk2"), ("d2", "pk"))
            .range("d2", "w", 0, 0)
            .build()
            .unwrap();
        let stats = Stats::sample(&c, 256, 1);
        let with_reuse = match_share_plan(&c, &stats, &[q_rs.clone(), q_big.clone()]);
        let alone = match_share_plan(&c, &stats, std::slice::from_ref(&q_big));
        // Alone, q_big needs 2 joins; with q_rs first, total is 3 nodes but
        // q_big only adds 1 (reuse), versus 2+2=4 without sharing.
        assert_eq!(alone.join_nodes(), 2);
        assert_eq!(with_reuse.join_nodes(), 2);
        // Results stay correct either way.
        let batch = QueryBatch::from_queries(c.len(), std::slice::from_ref(&q_big)).unwrap();
        let run = execute_global(&c, &batch, &alone);
        // d2.w == 0 → fk2 % 8 == 0 → 50 rows.
        assert_eq!(run.per_query[0].rows, 50);
    }

    #[test]
    fn single_relation_query_is_a_scan() {
        let c = catalog();
        let q = SpjQuery::builder(&c).relation("d1").range("d1", "w", 0, 9).build().unwrap();
        let stats = Stats::sample(&c, 64, 1);
        let plan = match_share_plan(&c, &stats, std::slice::from_ref(&q));
        assert_eq!(plan.join_nodes(), 0);
        let batch = QueryBatch::from_queries(c.len(), &[q]).unwrap();
        let run = execute_global(&c, &batch, &plan);
        assert_eq!(run.per_query[0].rows, 10);
    }
}
