//! Shared global-plan executor in the batched execution model
//! (SharedDB \[13\] / MQJoin \[25\] style).
//!
//! The online-sharing prototypes (Stitch&Share, Match&Share) both produce a
//! *global query plan*: a DAG of Data-Query-model operators in which a
//! sub-expression node is identified by its `(relation set, join edge set)`
//! — within tree-shaped queries that pair determines the result. This
//! module executes such DAGs operator-at-a-time: scans apply all queries'
//! selections via grouped filters and annotate tuples with query-sets,
//! joins intersect query-sets, and each query extracts its rows from its
//! final node. Per the paper's methodology, the prototypes "adopt all
//! useful optimizations and operators from RouLette" — hence the reuse of
//! the grouped filter and the checksum-compatible sinks.

use roulette_core::{ColId, QueryId, QuerySetColumn, RelId, RelSet};
use roulette_exec::{row_hash, GroupedFilter, QueryResult};
use roulette_query::{JoinPred, QueryBatch};
use roulette_storage::Catalog;
use std::collections::HashMap;

use crate::hashtable::JoinHashTable;

/// Identity of a shared sub-expression: its relations and applied edges.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SubExpr {
    /// Relations joined by the sub-expression.
    pub rels: RelSet,
    /// Canonical, sorted join edges applied.
    pub edges: Vec<JoinPred>,
}

impl SubExpr {
    /// A single-relation sub-expression.
    pub fn scan(rel: RelId) -> Self {
        SubExpr { rels: RelSet::singleton(rel), edges: Vec::new() }
    }

    /// This sub-expression extended by one edge joining in `target`.
    pub fn extend(&self, edge: JoinPred, target: RelId) -> Self {
        let mut edges = self.edges.clone();
        edges.push(edge.canonical());
        edges.sort_unstable();
        SubExpr { rels: self.rels.with(target), edges }
    }
}

/// A node of the global plan DAG.
#[derive(Debug, Clone)]
pub enum GNode {
    /// Shared scan + selection of one relation.
    Scan {
        /// Scanned relation.
        rel: RelId,
    },
    /// Shared hash join of two child nodes.
    Join {
        /// Left (probe) child.
        left: usize,
        /// Right (build) child.
        right: usize,
        /// Join edge.
        edge: JoinPred,
    },
}

/// A global query plan: DAG nodes plus each query's final node.
#[derive(Debug, Clone, Default)]
pub struct GlobalPlan {
    /// Nodes in topological (creation) order.
    pub nodes: Vec<GNode>,
    /// Final node per query (admission order).
    pub final_node: Vec<usize>,
}

impl GlobalPlan {
    /// Number of join nodes (shared-work metric: fewer = more sharing).
    pub fn join_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, GNode::Join { .. })).count()
    }
}

/// Incrementally builds a [`GlobalPlan`], deduplicating sub-expressions.
#[derive(Debug, Default)]
pub struct GlobalPlanBuilder {
    nodes: Vec<GNode>,
    map: HashMap<SubExpr, usize>,
    final_node: Vec<usize>,
}

impl GlobalPlanBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sub-expressions materialized so far.
    pub fn known(&self) -> impl Iterator<Item = (&SubExpr, &usize)> {
        self.map.iter()
    }

    /// Whether a sub-expression is already materialized.
    pub fn node_of(&self, key: &SubExpr) -> Option<usize> {
        self.map.get(key).copied()
    }

    /// Returns (creating if needed) the scan node of `rel`.
    pub fn scan(&mut self, rel: RelId) -> usize {
        let key = SubExpr::scan(rel);
        if let Some(&id) = self.map.get(&key) {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(GNode::Scan { rel });
        self.map.insert(key, id);
        id
    }

    /// Returns (creating if needed) the join of `left_key` with `target`'s
    /// scan through `edge`.
    pub fn join(&mut self, left_key: &SubExpr, edge: JoinPred, target: RelId) -> (SubExpr, usize) {
        let new_key = left_key.extend(edge, target);
        if let Some(&id) = self.map.get(&new_key) {
            return (new_key, id);
        }
        let left = self.map[left_key];
        let right = self.scan(target);
        let id = self.nodes.len();
        self.nodes.push(GNode::Join { left, right, edge: edge.canonical() });
        self.map.insert(new_key.clone(), id);
        (new_key, id)
    }

    /// Adds a left-deep plan for one query: `root`, then `(edge, target)`
    /// steps in order. Records the query's final node.
    pub fn add_left_deep(&mut self, root: RelId, steps: &[(JoinPred, RelId)]) {
        self.scan(root);
        let mut key = SubExpr::scan(root);
        for &(edge, target) in steps {
            let (k, _) = self.join(&key, edge, target);
            key = k;
        }
        let final_id = self.map[&key];
        self.final_node.push(final_id);
    }

    /// Records `key`'s node as the next query's final node (incremental
    /// builders like Match&Share).
    pub fn finalize_query(&mut self, key: &SubExpr) {
        let id = self.map[key];
        self.final_node.push(id);
    }

    /// Finalizes the plan.
    pub fn build(self) -> GlobalPlan {
        GlobalPlan { nodes: self.nodes, final_node: self.final_node }
    }
}

/// Materialized output of one global-plan node.
struct NodeOut {
    cols: Vec<(RelId, Vec<u32>)>,
    qsets: QuerySetColumn,
}

impl NodeOut {
    fn vids_of(&self, rel: RelId) -> &[u32] {
        &self.cols.iter().find(|(r, _)| *r == rel).expect("column present").1
    }
}

/// Execution metrics + results of a global plan.
#[derive(Debug, Clone)]
pub struct SharedRun {
    /// Per-query results (admission order).
    pub per_query: Vec<QueryResult>,
    /// Σ of join-node output cardinalities (the §6.2 intermediate-tuples
    /// metric).
    pub join_tuples: u64,
    /// Output cardinality per node.
    pub node_outputs: Vec<u64>,
}

/// Executes a global plan over `catalog` for the batch's queries in the
/// batched (operator-at-a-time, full materialization) model.
pub fn execute_global(catalog: &Catalog, batch: &QueryBatch, plan: &GlobalPlan) -> SharedRun {
    let capacity = batch.capacity();
    let n_queries = batch.n_queries();

    // Grouped filters per selection group, shared by all scans.
    let filters: Vec<(RelId, ColId, GroupedFilter)> = batch
        .selection_groups()
        .iter()
        .map(|g| (g.rel, g.col, GroupedFilter::build(&g.preds, capacity)))
        .collect();

    let mut outputs: Vec<NodeOut> = Vec::with_capacity(plan.nodes.len());
    let mut node_counts: Vec<u64> = Vec::with_capacity(plan.nodes.len());
    let mut join_tuples = 0u64;

    for node in &plan.nodes {
        let out = match node {
            GNode::Scan { rel } => {
                let relation = catalog.relation(*rel);
                let base = batch.rel_queries(*rel).clone();
                let mut vids = Vec::new();
                let mut qsets = QuerySetColumn::new(base.width());
                for row in 0..relation.rows() {
                    let mut mask = base.clone();
                    let mut alive = !mask.is_empty();
                    for (frel, fcol, filter) in &filters {
                        if frel == rel && alive {
                            let v = relation.column(*fcol).value(row);
                            alive = mask.intersect_words(filter.mask_for(v));
                        }
                    }
                    if alive {
                        vids.push(row as u32);
                        qsets.push(mask.words());
                    }
                }
                NodeOut { cols: vec![(*rel, vids)], qsets }
            }
            GNode::Join { left, right, edge } => {
                let l = &outputs[*left];
                let r = &outputs[*right];
                // Build on the right child.
                let (r_rel, r_col) = if r.cols.iter().any(|(rr, _)| *rr == edge.left.0) {
                    edge.left
                } else {
                    edge.right
                };
                let (l_rel, l_col) = if r_rel == edge.left.0 { edge.right } else { edge.left };
                let r_vids = r.vids_of(r_rel);
                let r_column = catalog.relation(r_rel).column(r_col);
                let keys: Vec<i64> =
                    r_vids.iter().map(|&v| r_column.value(v as usize)).collect();
                let row_ids: Vec<u32> = (0..r_vids.len() as u32).collect();
                let table = JoinHashTable::build(&keys, &row_ids);

                let l_vids = l.vids_of(l_rel);
                let l_column = catalog.relation(l_rel).column(l_col);
                let width = l.qsets.words_per_set();
                let mut cols: Vec<(RelId, Vec<u32>)> = l
                    .cols
                    .iter()
                    .map(|(rel, _)| (*rel, Vec::new()))
                    .chain(r.cols.iter().map(|(rel, _)| (*rel, Vec::new())))
                    .collect();
                let n_left_cols = l.cols.len();
                let mut qsets = QuerySetColumn::new(width);
                #[allow(clippy::needless_range_loop)]
                for i in 0..l_vids.len() {
                    let key = l_column.value(l_vids[i] as usize);
                    table.probe(key, |r_row| {
                        if qsets.push_and(l.qsets.row(i), r.qsets.row(r_row as usize)) {
                            for (k, (_, buf)) in cols.iter_mut().enumerate() {
                                if k < n_left_cols {
                                    buf.push(l.cols[k].1[i]);
                                } else {
                                    buf.push(r.cols[k - n_left_cols].1[r_row as usize]);
                                }
                            }
                        }
                    });
                }
                join_tuples += qsets.len() as u64;
                NodeOut { cols, qsets }
            }
        };
        node_counts.push(out.qsets.len() as u64);
        outputs.push(out);
    }

    // Extract per-query results from final nodes.
    let mut per_query = vec![QueryResult::default(); n_queries];
    let mut values: Vec<i64> = Vec::new();
    for (qi, &node_id) in plan.final_node.iter().enumerate() {
        let q = QueryId(qi as u32);
        let query = batch.query(q);
        let out = &outputs[node_id];
        let (w, b) = (q.index() / 64, q.index() % 64);
        for i in 0..out.qsets.len() {
            if (out.qsets.row(i)[w] >> b) & 1 == 1 {
                values.clear();
                for &(rel, col) in &query.projections {
                    let vid = out.vids_of(rel)[i];
                    values.push(catalog.relation(rel).column(col).value(vid as usize));
                }
                per_query[qi].rows += 1;
                per_query[qi].checksum =
                    per_query[qi].checksum.wrapping_add(row_hash(&values));
            }
        }
    }

    SharedRun { per_query, join_tuples, node_outputs: node_counts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subexpr_extend_is_canonical() {
        let e1 = JoinPred { left: (RelId(1), ColId(0)), right: (RelId(0), ColId(0)) };
        let a = SubExpr::scan(RelId(0)).extend(e1, RelId(1));
        let e2 = JoinPred { left: (RelId(0), ColId(0)), right: (RelId(1), ColId(0)) };
        let b = SubExpr::scan(RelId(1)).extend(e2, RelId(0));
        assert_eq!(a, b);
    }

    #[test]
    fn builder_dedups_shared_prefixes() {
        let e_rs = JoinPred { left: (RelId(0), ColId(0)), right: (RelId(1), ColId(0)) };
        let e_rt = JoinPred { left: (RelId(0), ColId(1)), right: (RelId(2), ColId(0)) };
        let mut b = GlobalPlanBuilder::new();
        b.add_left_deep(RelId(0), &[(e_rs, RelId(1))]);
        b.add_left_deep(RelId(0), &[(e_rs, RelId(1)), (e_rt, RelId(2))]);
        let plan = b.build();
        // Nodes: scan r, join rs, scan t, join rst — the rs join is shared.
        assert_eq!(plan.join_nodes(), 2);
        assert_eq!(plan.final_node.len(), 2);
        assert_ne!(plan.final_node[0], plan.final_node[1]);
    }
}
