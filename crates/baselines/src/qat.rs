//! Query-at-a-time comparator engines (§6.1).
//!
//! Two optimize-then-execute engines share one hash-join pipeline:
//!
//! * **DBMS-V** ([`ExecMode::Vectorized`]) — a vectorized engine: the
//!   driving relation streams through the probe pipeline in
//!   1024-tuple chunks, keeping intermediates cache-resident;
//! * **MonetDB-style** ([`ExecMode::Materialized`]) — operator-at-a-time:
//!   every operator materializes its full intermediate result (including
//!   gathered key columns) before the next starts, which is fast for tiny
//!   intermediates and memory-bound for large ones — the §6.1 selectivity
//!   crossover.
//!
//! Both engines plan with the sampled-statistics DP optimizer and produce
//! the same per-query `(rows, checksum)` results as RouLette, enabling
//! result-equivalence testing across engines.

use crate::hashtable::JoinHashTable;
use crate::optimizer::{optimize, QueryPlan};
use roulette_core::{QueryId, RelId};
use roulette_exec::{row_hash, Outputs, QueryResult};
use roulette_query::SpjQuery;
use roulette_storage::{Catalog, Stats};

/// Pipeline granularity of the query-at-a-time engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// DBMS-V: chunked, cache-friendly execution.
    Vectorized,
    /// MonetDB-style: full operator-at-a-time materialization.
    Materialized,
}

/// A query-at-a-time engine over a catalog.
pub struct QatEngine<'a> {
    catalog: &'a Catalog,
    stats: Stats,
    mode: ExecMode,
    vector_size: usize,
}

impl<'a> QatEngine<'a> {
    /// Creates an engine; statistics are sampled once (1024-row samples).
    pub fn new(catalog: &'a Catalog, mode: ExecMode, seed: u64) -> Self {
        QatEngine { catalog, stats: Stats::sample(catalog, 1024, seed), mode, vector_size: 1024 }
    }

    /// The engine's plan for `q` (exposed for the sharing plan builders).
    pub fn plan(&self, q: &SpjQuery) -> QueryPlan {
        optimize(q, self.catalog, &self.stats)
    }

    /// Sampled statistics (shared with the plan builders).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Executes one query, returning `(rows, checksum)`.
    pub fn execute(&self, q: &SpjQuery) -> QueryResult {
        self.execute_impl(q, None)
    }

    /// Executes one query, also collecting projected rows.
    pub fn execute_collect(&self, q: &SpjQuery) -> (QueryResult, Vec<Vec<i64>>) {
        let outputs = Outputs::new(1, true);
        let r = self.execute_impl(q, Some(&outputs));
        (r, outputs.take_collected(QueryId(0)))
    }

    /// Executes queries one after the other (the query-at-a-time
    /// methodology), returning per-query results.
    pub fn execute_serial(&self, queries: &[SpjQuery]) -> Vec<QueryResult> {
        queries.iter().map(|q| self.execute(q)).collect()
    }

    /// Executes the driving scan data-parallel over `threads` chunks
    /// (DBMS-V's single-client configuration in Fig. 20).
    pub fn execute_parallel(&self, q: &SpjQuery, threads: usize) -> QueryResult {
        let plan = self.plan(q);
        let tables = self.build_tables(q, &plan);
        let root_vids = self.filtered_vids(q, plan.root);
        let chunk = root_vids.len().div_ceil(threads.max(1)).max(1);
        let parts: Vec<QueryResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = root_vids
                .chunks(chunk)
                .map(|part| {
                    let plan = &plan;
                    let tables = &tables;
                    scope.spawn(move || self.run_pipeline(q, plan, tables, part, None))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).collect()
        });
        parts.into_iter().fold(QueryResult::default(), |acc, r| QueryResult {
            rows: acc.rows + r.rows,
            checksum: acc.checksum.wrapping_add(r.checksum),
            ..QueryResult::default()
        })
    }

    fn execute_impl(&self, q: &SpjQuery, outputs: Option<&Outputs>) -> QueryResult {
        let plan = self.plan(q);
        let tables = self.build_tables(q, &plan);
        let root_vids = self.filtered_vids(q, plan.root);
        self.run_pipeline(q, &plan, &tables, &root_vids, outputs)
    }

    /// Applies `rel`'s predicates, returning the surviving row ids.
    fn filtered_vids(&self, q: &SpjQuery, rel: RelId) -> Vec<u32> {
        let relation = self.catalog.relation(rel);
        let preds: Vec<_> = q.predicates_on(rel).collect();
        let mut vids = Vec::with_capacity(relation.rows());
        'rows: for row in 0..relation.rows() {
            for p in &preds {
                let v = relation.column(p.col).value(row);
                if v < p.lo || v > p.hi {
                    continue 'rows;
                }
            }
            vids.push(row as u32);
        }
        vids
    }

    /// Builds one hash table per probe step on the (filtered) target.
    fn build_tables(&self, q: &SpjQuery, plan: &QueryPlan) -> Vec<JoinHashTable> {
        plan.steps
            .iter()
            .map(|step| {
                let e = &q.joins[step.edge_idx];
                let (target_rel, target_col) = if e.left.0 == step.target { e.left } else { e.right };
                debug_assert_eq!(target_rel, step.target);
                let vids = self.filtered_vids(q, target_rel);
                let col = self.catalog.relation(target_rel).column(target_col);
                let keys: Vec<i64> = vids.iter().map(|&v| col.value(v as usize)).collect();
                JoinHashTable::build(&keys, &vids)
            })
            .collect()
    }

    fn run_pipeline(
        &self,
        q: &SpjQuery,
        plan: &QueryPlan,
        tables: &[JoinHashTable],
        root_vids: &[u32],
        outputs: Option<&Outputs>,
    ) -> QueryResult {
        let chunk_size = match self.mode {
            ExecMode::Vectorized => self.vector_size,
            ExecMode::Materialized => root_vids.len().max(1),
        };
        let mut rows = 0u64;
        let mut checksum = 0u64;
        let mut values: Vec<i64> = Vec::new();

        // Column order: root, then step targets.
        let rel_order: Vec<RelId> =
            std::iter::once(plan.root).chain(plan.steps.iter().map(|s| s.target)).collect();
        let proj: Vec<(usize, roulette_core::ColId)> = q
            .projections
            .iter()
            .map(|&(rel, col)| {
                (rel_order.iter().position(|&r| r == rel).expect("projected rel joined"), col)
            })
            .collect();

        for chunk in root_vids.chunks(chunk_size.max(1)) {
            // `cols[k]` holds the vids of rel_order[k] for current tuples.
            let mut cols: Vec<Vec<u32>> = vec![chunk.to_vec()];
            for (s, step) in plan.steps.iter().enumerate() {
                let e = &q.joins[step.edge_idx];
                let (probe_rel, probe_col) =
                    if e.left.0 == step.target { e.right } else { e.left };
                let probe_idx =
                    rel_order.iter().position(|&r| r == probe_rel).expect("probe rel joined");
                // MonetDB-style: materialize the gathered key column fully
                // before probing (an extra full pass); vectorized gathers
                // on the fly.
                let probe_column = self.catalog.relation(probe_rel).column(probe_col);
                let keys: Vec<i64> = match self.mode {
                    ExecMode::Materialized => {
                        let mut keys = Vec::with_capacity(cols[probe_idx].len());
                        for &v in &cols[probe_idx] {
                            keys.push(probe_column.value(v as usize));
                        }
                        keys
                    }
                    ExecMode::Vectorized => {
                        cols[probe_idx].iter().map(|&v| probe_column.value(v as usize)).collect()
                    }
                };
                let mut out: Vec<Vec<u32>> = vec![Vec::new(); cols.len() + 1];
                for (i, &key) in keys.iter().enumerate() {
                    tables[s].probe(key, |target_vid| {
                        for (k, col) in cols.iter().enumerate() {
                            out[k].push(col[i]);
                        }
                        out[cols.len()].push(target_vid);
                    });
                }
                cols = out;
                if cols[0].is_empty() {
                    break;
                }
            }
            if cols.len() == rel_order.len() {
                let n = cols[0].len();
                #[allow(clippy::needless_range_loop)]
                for i in 0..n {
                    values.clear();
                    for &(k, col) in &proj {
                        let rel = rel_order[k];
                        values
                            .push(self.catalog.relation(rel).column(col).value(cols[k][i] as usize));
                    }
                    rows += 1;
                    checksum = checksum.wrapping_add(row_hash(&values));
                    if let Some(o) = outputs {
                        o.extend_collected(QueryId(0), &[values.clone()]);
                    }
                }
            }
        }
        QueryResult { rows, checksum, ..QueryResult::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roulette_core::EngineConfig;
    use roulette_exec::RouletteEngine;
    use roulette_storage::RelationBuilder;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut f = RelationBuilder::new("fact");
        f.int64("fk", (0..200).map(|i| i % 20).collect());
        f.int64("fk2", (0..200).map(|i| i % 5).collect());
        f.int64("v", (0..200).collect());
        c.add(f.build()).unwrap();
        let mut d = RelationBuilder::new("d1");
        d.int64("pk", (0..20).collect());
        d.int64("w", (0..20).collect());
        c.add(d.build()).unwrap();
        let mut d2 = RelationBuilder::new("d2");
        d2.int64("pk", (0..5).collect());
        d2.int64("w", (0..5).collect());
        c.add(d2.build()).unwrap();
        c
    }

    fn two_join_query(c: &Catalog) -> SpjQuery {
        SpjQuery::builder(c)
            .relation("fact").relation("d1").relation("d2")
            .join(("fact", "fk"), ("d1", "pk"))
            .join(("fact", "fk2"), ("d2", "pk"))
            .range("fact", "v", 0, 99)
            .range("d1", "w", 0, 9)
            .project("d1", "w")
            .build()
            .unwrap()
    }

    #[test]
    fn counts_match_nested_loop_ground_truth() {
        let c = catalog();
        let q = two_join_query(&c);
        // Ground truth: fact rows 0..100 with fk ∈ 0..10 → fk = v%20 < 10 →
        // v%20 ∈ 0..10 → 50 rows; every fk2 matches d2.
        let engine = QatEngine::new(&c, ExecMode::Vectorized, 1);
        let r = engine.execute(&q);
        assert_eq!(r.rows, 50);
    }

    #[test]
    fn vectorized_and_materialized_agree() {
        let c = catalog();
        let q = two_join_query(&c);
        let v = QatEngine::new(&c, ExecMode::Vectorized, 1).execute(&q);
        let m = QatEngine::new(&c, ExecMode::Materialized, 1).execute(&q);
        assert_eq!(v, m);
    }

    #[test]
    fn qat_matches_roulette_results() {
        let c = catalog();
        let q = two_join_query(&c);
        let qat = QatEngine::new(&c, ExecMode::Vectorized, 1).execute(&q);
        let rl = RouletteEngine::new(&c, EngineConfig::default().with_vector_size(64).unwrap())
            .execute_batch(&[q])
            .unwrap();
        assert_eq!(qat, rl.per_query[0]);
    }

    #[test]
    fn parallel_execution_matches_serial() {
        let c = catalog();
        let q = two_join_query(&c);
        let engine = QatEngine::new(&c, ExecMode::Vectorized, 1);
        let serial = engine.execute(&q);
        let parallel = engine.execute_parallel(&q, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn collected_rows_are_projected() {
        let c = catalog();
        let q = two_join_query(&c);
        let engine = QatEngine::new(&c, ExecMode::Vectorized, 1);
        let (r, rows) = engine.execute_collect(&q);
        assert_eq!(rows.len() as u64, r.rows);
        assert!(rows.iter().all(|row| row.len() == 1 && (0..10).contains(&row[0])));
    }

    #[test]
    fn single_relation_query() {
        let c = catalog();
        let q = SpjQuery::builder(&c)
            .relation("fact")
            .range("fact", "v", 10, 19)
            .build()
            .unwrap();
        let r = QatEngine::new(&c, ExecMode::Vectorized, 1).execute(&q);
        assert_eq!(r.rows, 10);
    }
}
