//! Scalar metrics: sharded counters and gauges.
//!
//! [`ShardedCounter`] spreads increments across cache-line-padded shards
//! selected by a per-thread id, so concurrent workers never contend on one
//! cache line; recording is a single relaxed `fetch_add`. Reads sum the
//! shards (reads are rare: exporters and tests).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One cache line per shard so neighbouring shards never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Lazily-assigned dense thread slot used to pick a counter shard.
    static THREAD_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Dense id for the calling thread, assigned on first use.
#[inline]
fn thread_slot() -> usize {
    THREAD_SLOT.with(|c| {
        let v = c.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
            c.set(v);
            v
        }
    })
}

/// Default shard count: enough for the worker pools the engine spawns,
/// small enough that summing on read stays trivial.
const DEFAULT_SHARDS: usize = 16;

/// A monotonically increasing counter sharded across cache-padded cells.
#[derive(Debug)]
pub struct ShardedCounter {
    shards: Box<[PaddedU64]>,
    mask: usize,
}

impl Default for ShardedCounter {
    fn default() -> Self {
        Self::new(DEFAULT_SHARDS)
    }
}

impl ShardedCounter {
    /// A counter with `shards` cells (rounded up to a power of two, ≥ 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedCounter {
            shards: (0..n).map(|_| PaddedU64::default()).collect(),
            mask: n - 1,
        }
    }

    /// Adds `n` to the calling thread's shard (relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(shard) = self.shards.get(thread_slot() & self.mask) {
            shard.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Sum of all shards.
    pub fn total(&self) -> u64 {
        // ordering: monotone counter shards; a scrape may miss in-flight
        // increments, which is the usual counter contract.
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A last-write-wins integer gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `v` (relaxed).
    #[inline]
    pub fn set(&self, v: u64) {
        // ordering: last-write-wins gauge; no data is published through it.
        self.value.store(v, Ordering::Relaxed);
    }

    /// The last stored value.
    pub fn get(&self) -> u64 {
        // ordering: gauge scrape; a stale value is acceptable.
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge (bits in an atomic word).
#[derive(Debug, Default)]
pub struct FloatGauge {
    bits: AtomicU64,
}

impl FloatGauge {
    /// A gauge at 0.0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `v` (relaxed).
    #[inline]
    pub fn set(&self, v: f64) {
        // ordering: last-write-wins gauge; no data is published through it.
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The last stored value.
    pub fn get(&self) -> f64 {
        // ordering: gauge scrape; a stale value is acceptable.
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(ShardedCounter::new(8));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.total(), 8000);
    }

    #[test]
    fn counter_shard_count_rounds_up() {
        let c = ShardedCounter::new(3);
        c.add(5);
        assert_eq!(c.total(), 5);
        assert_eq!(c.shards.len(), 4);
    }

    #[test]
    fn gauges_round_trip() {
        let g = Gauge::new();
        g.set(42);
        assert_eq!(g.get(), 42);
        let f = FloatGauge::new();
        f.set(-1.25);
        assert_eq!(f.get(), -1.25);
    }
}
