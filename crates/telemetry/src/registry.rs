//! Named-metric registry and Prometheus text-format rendering.
//!
//! The registry interns metrics by name behind `Arc`s: callers fetch (or
//! lazily create) a metric once at setup time and then record against the
//! returned handle lock-free. The registry latch is only taken on
//! registration and on export, never on the recording hot path.

use std::io;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::histogram::{bucket_upper_bound, Histogram};
use crate::metrics::{FloatGauge, Gauge, ShardedCounter};

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<ShardedCounter>),
    Gauge(Arc<Gauge>),
    FloatGauge(Arc<FloatGauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Registered {
    name: String,
    help: String,
    metric: Metric,
}

/// A registry of named metrics. Cloned handles share the same storage.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Vec<Registered>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, Vec<Registered>> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn get_or_insert(&self, name: &str, help: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut inner = self.lock();
        if let Some(r) = inner.iter().find(|r| r.name == name) {
            return r.metric.clone();
        }
        let metric = make();
        inner.push(Registered {
            name: name.to_string(),
            help: help.to_string(),
            metric: metric.clone(),
        });
        metric
    }

    /// The counter registered as `name`, created on first use.
    ///
    /// Returns a fresh unregistered counter if `name` is already registered
    /// with a different metric type (exporters then see the original).
    pub fn counter(&self, name: &str, help: &str) -> Arc<ShardedCounter> {
        match self.get_or_insert(name, help, || {
            Metric::Counter(Arc::new(ShardedCounter::default()))
        }) {
            Metric::Counter(c) => c,
            _ => Arc::new(ShardedCounter::default()),
        }
    }

    /// The integer gauge registered as `name`, created on first use.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, help, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            _ => Arc::new(Gauge::new()),
        }
    }

    /// The floating-point gauge registered as `name`, created on first use.
    pub fn float_gauge(&self, name: &str, help: &str) -> Arc<FloatGauge> {
        match self.get_or_insert(name, help, || Metric::FloatGauge(Arc::new(FloatGauge::new()))) {
            Metric::FloatGauge(g) => g,
            _ => Arc::new(FloatGauge::new()),
        }
    }

    /// The histogram registered as `name`, created on first use.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, help, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            _ => Arc::new(Histogram::new()),
        }
    }

    /// Renders every registered metric in Prometheus text exposition
    /// format, sorted by metric name. Histograms are emitted with
    /// cumulative `_bucket{le="..."}` series up to the highest non-empty
    /// bucket, plus `_sum` and `_count`.
    pub fn render_prometheus(&self, w: &mut dyn io::Write) -> io::Result<()> {
        let mut entries: Vec<(String, String, Metric)> = self
            .lock()
            .iter()
            .map(|r| (r.name.clone(), r.help.clone(), r.metric.clone()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, help, metric) in entries {
            writeln!(w, "# HELP {name} {help}")?;
            match metric {
                Metric::Counter(c) => {
                    writeln!(w, "# TYPE {name} counter")?;
                    writeln!(w, "{name} {}", c.total())?;
                }
                Metric::Gauge(g) => {
                    writeln!(w, "# TYPE {name} gauge")?;
                    writeln!(w, "{name} {}", g.get())?;
                }
                Metric::FloatGauge(g) => {
                    writeln!(w, "# TYPE {name} gauge")?;
                    writeln!(w, "{name} {}", g.get())?;
                }
                Metric::Histogram(h) => {
                    writeln!(w, "# TYPE {name} histogram")?;
                    let snap = h.snapshot();
                    let last = snap.max_bucket().unwrap_or(0);
                    let mut cum = 0u64;
                    for (i, &c) in snap.counts.iter().enumerate().take(last + 1) {
                        cum += c;
                        writeln!(
                            w,
                            "{name}_bucket{{le=\"{}\"}} {cum}",
                            bucket_upper_bound(i)
                        )?;
                    }
                    writeln!(w, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count())?;
                    writeln!(w, "{name}_sum {}", snap.sum)?;
                    writeln!(w, "{name}_count {}", snap.count())?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(reg: &MetricsRegistry) -> String {
        let mut out = Vec::new();
        reg.render_prometheus(&mut out).expect("render");
        String::from_utf8(out).expect("utf8")
    }

    #[test]
    fn counter_handles_are_shared() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("roulette_episodes_total", "episodes");
        let b = reg.counter("roulette_episodes_total", "episodes");
        a.add(3);
        b.add(4);
        assert_eq!(a.total(), 7);
    }

    #[test]
    fn type_mismatch_yields_detached_metric() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x", "a counter");
        let g = reg.gauge("x", "not a counter");
        c.inc();
        g.set(99);
        // The registered metric is still the counter.
        let text = render(&reg);
        assert!(text.contains("# TYPE x counter"));
        assert!(text.contains("x 1"));
    }

    #[test]
    fn prometheus_rendering_is_sorted_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total", "second").add(2);
        reg.gauge("a_gauge", "first").set(5);
        reg.float_gauge("c_ratio", "third").set(0.5);
        let text = render(&reg);
        let a = text.find("a_gauge").expect("a_gauge present");
        let b = text.find("b_total").expect("b_total present");
        let c = text.find("c_ratio").expect("c_ratio present");
        assert!(a < b && b < c);
        assert!(text.contains("# HELP a_gauge first"));
        assert!(text.contains("a_gauge 5"));
        assert!(text.contains("c_ratio 0.5"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_ns", "latency");
        h.record(1);
        h.record(3);
        h.record(3);
        let text = render(&reg);
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_ns_bucket{le=\"3\"} 3"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_ns_sum 7"));
        assert!(text.contains("lat_ns_count 3"));
    }
}
