//! The batteries-included telemetry sink.
//!
//! [`Telemetry`] implements [`Recorder`] by fanning every hook out to the
//! pre-registered metrics below and to a bounded [`EventRing`], and offers
//! the two exporters: Prometheus text format for the metrics and JSONL for
//! the event stream. Handles to the individual metrics are resolved once at
//! construction, so recording never touches the registry latch.

use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::events::{EventKind, EventRing};
use crate::histogram::Histogram;
use crate::json::JsonObject;
use crate::metrics::{FloatGauge, Gauge, ShardedCounter};
use crate::recorder::{EpisodeSample, PolicyProbe, Recorder};
use crate::registry::MetricsRegistry;

/// Default capacity of the structured event ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// Per-shard STeM counters are pre-registered for this many shards (so
/// recording never touches the registry latch); higher shard indices fold
/// into the last slot.
pub const TRACKED_SHARDS: usize = 8;

/// A full telemetry pipeline: metrics registry + event ring + exporters.
#[derive(Debug)]
pub struct Telemetry {
    registry: MetricsRegistry,
    events: EventRing,
    /// Admission timestamps keyed by query slot, for admit→complete latency.
    admit_times: Mutex<HashMap<u32, Instant>>,

    episodes: Arc<ShardedCounter>,
    episode_latency_ns: Arc<Histogram>,
    query_latency_us: Arc<Histogram>,
    insert_batch: Arc<Histogram>,
    probe_batch: Arc<Histogram>,
    shard_insert_tuples: Vec<Arc<ShardedCounter>>,
    shard_probe_keys: Vec<Arc<ShardedCounter>>,
    steals: Arc<ShardedCounter>,
    vector_fill_permille: Arc<Histogram>,
    selection_survivors_permille: Arc<Histogram>,
    scratch_hits: Arc<ShardedCounter>,
    scratch_misses: Arc<ShardedCounter>,

    admitted: Arc<ShardedCounter>,
    completed: Arc<ShardedCounter>,
    quarantined: Arc<ShardedCounter>,
    deadline_exceeded: Arc<ShardedCounter>,
    watchdog_trips: Arc<ShardedCounter>,
    fallback_replans: Arc<ShardedCounter>,
    window_expired_tuples: Arc<ShardedCounter>,
    drift_injected: Arc<ShardedCounter>,
    policy_resets: Arc<ShardedCounter>,
    memory_pressure: Arc<Gauge>,
    events_dropped: Arc<Gauge>,

    policy_q_entries: Arc<Gauge>,
    policy_exploration_share: Arc<FloatGauge>,
    policy_td_error_mean: Arc<FloatGauge>,
    policy_td_error_max: Arc<FloatGauge>,
    policy_reward_mean: Arc<FloatGauge>,
    policy_reward_min: Arc<FloatGauge>,
    policy_reward_max: Arc<FloatGauge>,
    policy_observations: Arc<Gauge>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new(DEFAULT_EVENT_CAPACITY)
    }
}

impl Telemetry {
    /// A sink with an event ring of `event_capacity` entries.
    pub fn new(event_capacity: usize) -> Self {
        let registry = MetricsRegistry::new();
        let episodes = registry.counter("roulette_episodes_total", "Episodes executed");
        let episode_latency_ns = registry.histogram(
            "roulette_episode_latency_ns",
            "Wall-clock episode duration in nanoseconds",
        );
        let query_latency_us = registry.histogram(
            "roulette_query_latency_us",
            "Per-query admit-to-complete latency in microseconds",
        );
        let insert_batch = registry.histogram(
            "roulette_stem_insert_batch_tuples",
            "Tuples inserted into a STeM per episode",
        );
        let probe_batch = registry.histogram(
            "roulette_stem_probe_batch_tuples",
            "Tuples probing a STeM per probe batch",
        );
        let shard_insert_tuples = (0..TRACKED_SHARDS)
            .map(|s| {
                registry.counter(
                    &format!("roulette_stem_shard_insert_tuples_s{s}_total"),
                    "Tuples inserted into this STeM shard (the last slot aggregates higher shard indices)",
                )
            })
            .collect();
        let shard_probe_keys = (0..TRACKED_SHARDS)
            .map(|s| {
                registry.counter(
                    &format!("roulette_stem_shard_probe_keys_s{s}_total"),
                    "Probe keys visiting this STeM shard (the last slot aggregates higher shard indices)",
                )
            })
            .collect();
        let steals = registry.counter(
            "roulette_worker_steals_total",
            "Episode tasks stolen from a sibling worker's morsel queue",
        );
        let vector_fill_permille = registry.histogram(
            "roulette_vector_fill_permille",
            "Episode vector fill ratio, in thousandths of capacity",
        );
        let selection_survivors_permille = registry.histogram(
            "roulette_selection_survivors_permille",
            "Tuples surviving selection, in thousandths of the scanned batch",
        );
        let scratch_hits = registry.counter(
            "roulette_scratch_reuse_hits_total",
            "Episode scratch buffer acquisitions served from a pool",
        );
        let scratch_misses = registry.counter(
            "roulette_scratch_misses_total",
            "Episode scratch buffer acquisitions that had to allocate",
        );
        let admitted = registry.counter("roulette_queries_admitted_total", "Queries admitted");
        let completed = registry.counter("roulette_queries_completed_total", "Queries completed");
        let quarantined =
            registry.counter("roulette_queries_quarantined_total", "Queries quarantined");
        let deadline_exceeded = registry.counter(
            "roulette_deadline_exceeded_total",
            "Queries evicted for exceeding their deadline budget",
        );
        let watchdog_trips =
            registry.counter("roulette_watchdog_trips_total", "Join watchdog budget trips");
        let fallback_replans = registry.counter(
            "roulette_fallback_replans_total",
            "Greedy-fallback replans after watchdog trips",
        );
        let window_expired_tuples = registry.counter(
            "roulette_window_expired_tuples_total",
            "Tuples reclaimed by stream-window expiry sweeps",
        );
        let drift_injected = registry.counter(
            "roulette_drift_injected_total",
            "Scripted drift events injected into the arrival stream",
        );
        let policy_resets = registry.counter(
            "roulette_policy_resets_total",
            "Exploration boosts/resets triggered by the drift-recovery heuristic",
        );
        let memory_pressure = registry.gauge(
            "roulette_memory_pressure_level",
            "Memory-pressure ladder level (0 nominal, 1 forced pruning, 2 admissions paused, 3 evicting)",
        );
        let events_dropped =
            registry.gauge("roulette_events_dropped", "Events dropped by the bounded ring");
        let policy_q_entries =
            registry.gauge("roulette_policy_q_entries", "Materialized Q-table entries");
        let policy_exploration_share = registry.float_gauge(
            "roulette_policy_exploration_share",
            "Fraction of routing decisions that explored",
        );
        let policy_td_error_mean = registry.float_gauge(
            "roulette_policy_td_error_mean",
            "Mean absolute temporal-difference error",
        );
        let policy_td_error_max = registry.float_gauge(
            "roulette_policy_td_error_max",
            "Largest absolute temporal-difference error",
        );
        let policy_reward_mean =
            registry.float_gauge("roulette_policy_reward_mean", "Mean observed reward");
        let policy_reward_min =
            registry.float_gauge("roulette_policy_reward_min", "Smallest observed reward");
        let policy_reward_max =
            registry.float_gauge("roulette_policy_reward_max", "Largest observed reward");
        let policy_observations = registry.gauge(
            "roulette_policy_observations",
            "Reward observations folded into the Q-table",
        );
        Telemetry {
            registry,
            events: EventRing::new(event_capacity),
            admit_times: Mutex::new(HashMap::new()),
            episodes,
            episode_latency_ns,
            query_latency_us,
            insert_batch,
            probe_batch,
            shard_insert_tuples,
            shard_probe_keys,
            steals,
            vector_fill_permille,
            selection_survivors_permille,
            scratch_hits,
            scratch_misses,
            admitted,
            completed,
            quarantined,
            deadline_exceeded,
            watchdog_trips,
            fallback_replans,
            window_expired_tuples,
            drift_injected,
            policy_resets,
            memory_pressure,
            events_dropped,
            policy_q_entries,
            policy_exploration_share,
            policy_td_error_mean,
            policy_td_error_max,
            policy_reward_mean,
            policy_reward_min,
            policy_reward_max,
            policy_observations,
        }
    }

    /// A sink with default event-ring capacity.
    pub fn with_defaults() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn admit_times(&self) -> MutexGuard<'_, HashMap<u32, Instant>> {
        match self.admit_times.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The underlying metrics registry (for registering extra metrics).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The structured event ring.
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// Renders all metrics in Prometheus text exposition format.
    pub fn render_prometheus(&self, w: &mut dyn io::Write) -> io::Result<()> {
        self.events_dropped.set(self.events.dropped());
        self.registry.render_prometheus(w)
    }

    /// Writes the buffered event stream as one JSON object per line.
    pub fn write_events_jsonl(&self, w: &mut dyn io::Write) -> io::Result<()> {
        for event in self.events.snapshot() {
            let mut o = JsonObject::new();
            o.u64("seq", event.seq).u64("episode", event.episode).string(
                "kind",
                event.kind.name(),
            );
            match &event.kind {
                EventKind::Admission { query } | EventKind::Completion { query } => {
                    o.u64("query", u64::from(*query));
                }
                EventKind::Quarantine { query, reason }
                | EventKind::DeadlineExceeded { query, reason } => {
                    o.u64("query", u64::from(*query)).string("reason", reason);
                }
                EventKind::WatchdogTrip { relation } | EventKind::FallbackReplan { relation } => {
                    o.u64("relation", u64::from(*relation));
                }
                EventKind::MemoryPressure { from, to } => {
                    o.u64("from", u64::from(*from)).u64("to", u64::from(*to));
                }
                EventKind::WindowExpiry { relation, expired } => {
                    o.u64("relation", u64::from(*relation)).u64("expired", *expired);
                }
                EventKind::DriftInjected { kind } => {
                    o.string("drift", kind);
                }
                EventKind::PolicyReset { reason } => {
                    o.string("reason", reason);
                }
            }
            writeln!(w, "{}", o.finish())?;
        }
        Ok(())
    }
}

impl Recorder for Telemetry {
    fn record_episode(&self, sample: &EpisodeSample) {
        self.episodes.inc();
        self.episode_latency_ns.record(sample.latency_ns);
        self.insert_batch.record(sample.inserted);
        if let Some(fill) = (sample.scanned * 1000).checked_div(sample.capacity) {
            self.vector_fill_permille.record(fill);
        }
        if let Some(survivors) = (sample.selected * 1000).checked_div(sample.scanned) {
            self.selection_survivors_permille.record(survivors);
        }
    }

    fn record_probe_batch(&self, tuples: u64) {
        self.probe_batch.record(tuples);
    }

    fn record_shard_insert(&self, shard: usize, tuples: u64) {
        if let Some(counter) = self.shard_insert_tuples.get(shard.min(TRACKED_SHARDS - 1)) {
            counter.add(tuples);
        }
    }

    fn record_shard_probe(&self, shard: usize, keys: u64) {
        if let Some(counter) = self.shard_probe_keys.get(shard.min(TRACKED_SHARDS - 1)) {
            counter.add(keys);
        }
    }

    fn record_steal(&self, tasks: u64) {
        self.steals.add(tasks);
    }

    fn record_scratch(&self, hits: u64, misses: u64) {
        self.scratch_hits.add(hits);
        self.scratch_misses.add(misses);
    }

    fn record_event(&self, episode: u64, kind: EventKind) {
        match &kind {
            EventKind::Admission { query } => {
                self.admitted.inc();
                self.admit_times().insert(*query, Instant::now());
            }
            EventKind::Completion { query } => {
                self.completed.inc();
                if let Some(t0) = self.admit_times().remove(query) {
                    self.query_latency_us.record(t0.elapsed().as_micros() as u64);
                }
            }
            EventKind::Quarantine { query, .. } => {
                self.quarantined.inc();
                self.admit_times().remove(query);
            }
            EventKind::DeadlineExceeded { query, .. } => {
                self.deadline_exceeded.inc();
                self.admit_times().remove(query);
            }
            EventKind::WatchdogTrip { .. } => self.watchdog_trips.inc(),
            EventKind::FallbackReplan { .. } => self.fallback_replans.inc(),
            EventKind::MemoryPressure { to, .. } => self.memory_pressure.set(u64::from(*to)),
            EventKind::WindowExpiry { expired, .. } => {
                self.window_expired_tuples.add(*expired);
            }
            EventKind::DriftInjected { .. } => self.drift_injected.inc(),
            EventKind::PolicyReset { .. } => self.policy_resets.inc(),
        }
        self.events.push(episode, kind);
    }

    fn record_policy_probe(&self, _episode: u64, probe: &PolicyProbe) {
        self.policy_q_entries.set(probe.q_entries);
        self.policy_exploration_share.set(probe.exploration_share());
        self.policy_td_error_mean.set(probe.td_error_mean);
        self.policy_td_error_max.set(probe.td_error_max);
        self.policy_reward_mean.set(probe.reward_mean);
        self.policy_reward_min.set(probe.reward_min);
        self.policy_reward_max.set(probe.reward_max);
        self.policy_observations.set(probe.observations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prom(t: &Telemetry) -> String {
        let mut out = Vec::new();
        t.render_prometheus(&mut out).expect("render");
        String::from_utf8(out).expect("utf8")
    }

    fn jsonl(t: &Telemetry) -> String {
        let mut out = Vec::new();
        t.write_events_jsonl(&mut out).expect("write");
        String::from_utf8(out).expect("utf8")
    }

    #[test]
    fn episode_samples_feed_metrics() {
        let t = Telemetry::default();
        t.record_episode(&EpisodeSample {
            episode: 0,
            latency_ns: 5_000,
            scanned: 512,
            capacity: 1024,
            selected: 256,
            inserted: 256,
        });
        t.record_probe_batch(128);
        let text = prom(&t);
        assert!(text.contains("roulette_episodes_total 1"));
        assert!(text.contains("roulette_episode_latency_ns_count 1"));
        assert!(text.contains("roulette_stem_probe_batch_tuples_count 1"));
        // 512/1024 = 500 permille.
        assert!(text.contains("roulette_vector_fill_permille_sum 500"));
        assert!(text.contains("roulette_selection_survivors_permille_sum 500"));
    }

    #[test]
    fn shard_and_steal_counters_accumulate() {
        let t = Telemetry::default();
        t.record_shard_insert(0, 100);
        t.record_shard_insert(3, 28);
        // Shards past the tracked range fold into the last slot.
        t.record_shard_insert(63, 5);
        t.record_shard_probe(3, 64);
        t.record_steal(1);
        t.record_steal(2);
        let text = prom(&t);
        assert!(text.contains("roulette_stem_shard_insert_tuples_s0_total 100"));
        assert!(text.contains("roulette_stem_shard_insert_tuples_s3_total 28"));
        assert!(text.contains("roulette_stem_shard_insert_tuples_s7_total 5"));
        assert!(text.contains("roulette_stem_shard_probe_keys_s3_total 64"));
        assert!(text.contains("roulette_worker_steals_total 3"));
    }

    #[test]
    fn scratch_counters_accumulate() {
        let t = Telemetry::default();
        t.record_scratch(10, 2);
        t.record_scratch(5, 0);
        let text = prom(&t);
        assert!(text.contains("roulette_scratch_reuse_hits_total 15"));
        assert!(text.contains("roulette_scratch_misses_total 2"));
    }

    #[test]
    fn admit_complete_cycle_measures_latency() {
        let t = Telemetry::default();
        t.record_event(0, EventKind::Admission { query: 7 });
        t.record_event(3, EventKind::Completion { query: 7 });
        let text = prom(&t);
        assert!(text.contains("roulette_queries_admitted_total 1"));
        assert!(text.contains("roulette_queries_completed_total 1"));
        assert!(text.contains("roulette_query_latency_us_count 1"));
        assert!(t.admit_times().is_empty());
        let log = jsonl(&t);
        let mut lines = log.lines();
        assert_eq!(
            lines.next(),
            Some("{\"seq\":0,\"episode\":0,\"kind\":\"admission\",\"query\":7}")
        );
        assert_eq!(
            lines.next(),
            Some("{\"seq\":1,\"episode\":3,\"kind\":\"completion\",\"query\":7}")
        );
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn deadline_exceeded_counts_and_clears_admit_time() {
        let t = Telemetry::default();
        t.record_event(0, EventKind::Admission { query: 4 });
        t.record_event(9, EventKind::DeadlineExceeded { query: 4, reason: "250 ms".into() });
        assert!(t.admit_times().is_empty());
        let text = prom(&t);
        assert!(text.contains("roulette_deadline_exceeded_total 1"));
        assert!(text.contains("roulette_queries_quarantined_total 0"));
        assert!(text.contains("roulette_query_latency_us_count 0"));
        assert!(jsonl(&t).contains("\"kind\":\"deadline-exceeded\""));
    }

    #[test]
    fn quarantine_clears_admit_time_without_latency_sample() {
        let t = Telemetry::default();
        t.record_event(0, EventKind::Admission { query: 2 });
        t.record_event(1, EventKind::Quarantine { query: 2, reason: "oom".into() });
        assert!(t.admit_times().is_empty());
        let text = prom(&t);
        assert!(text.contains("roulette_queries_quarantined_total 1"));
        assert!(text.contains("roulette_query_latency_us_count 0"));
        assert!(jsonl(&t).contains("\"reason\":\"oom\""));
    }

    #[test]
    fn pressure_and_watchdog_events_update_gauges() {
        let t = Telemetry::default();
        t.record_event(4, EventKind::MemoryPressure { from: 0, to: 2 });
        t.record_event(5, EventKind::WatchdogTrip { relation: 1 });
        t.record_event(5, EventKind::FallbackReplan { relation: 1 });
        let text = prom(&t);
        assert!(text.contains("roulette_memory_pressure_level 2"));
        assert!(text.contains("roulette_watchdog_trips_total 1"));
        assert!(text.contains("roulette_fallback_replans_total 1"));
    }

    #[test]
    fn stream_events_update_counters_and_jsonl() {
        let t = Telemetry::default();
        t.record_event(10, EventKind::WindowExpiry { relation: 3, expired: 40 });
        t.record_event(11, EventKind::WindowExpiry { relation: 3, expired: 2 });
        t.record_event(12, EventKind::DriftInjected { kind: "join-skew-flip".into() });
        t.record_event(13, EventKind::PolicyReset { reason: "td spike 4.2x".into() });
        let text = prom(&t);
        assert!(text.contains("roulette_window_expired_tuples_total 42"));
        assert!(text.contains("roulette_drift_injected_total 1"));
        assert!(text.contains("roulette_policy_resets_total 1"));
        let log = jsonl(&t);
        assert!(log.contains("\"kind\":\"window-expiry\",\"relation\":3,\"expired\":40"));
        assert!(log.contains("\"kind\":\"drift-injected\",\"drift\":\"join-skew-flip\""));
        assert!(log.contains("\"kind\":\"policy-reset\",\"reason\":\"td spike 4.2x\""));
    }

    #[test]
    fn policy_probe_updates_gauges() {
        let t = Telemetry::default();
        t.record_policy_probe(
            64,
            &PolicyProbe {
                q_entries: 12,
                decisions: 100,
                explorations: 10,
                observations: 90,
                td_error_mean: 0.25,
                td_error_max: 2.0,
                reward_mean: -1.5,
                reward_min: -4.0,
                reward_max: 0.0,
            },
        );
        let text = prom(&t);
        assert!(text.contains("roulette_policy_q_entries 12"));
        assert!(text.contains("roulette_policy_exploration_share 0.1"));
        assert!(text.contains("roulette_policy_td_error_max 2"));
        assert!(text.contains("roulette_policy_reward_min -4"));
    }
}
