//! The [`Recorder`] facade the engine and policy crates instrument against.
//!
//! `roulette-exec` and `roulette-policy` depend only on this trait — never
//! on the concrete sinks in [`crate::sink`] — so swapping or disabling
//! telemetry never recompiles the engine, and a disabled recorder costs one
//! branch on an `Option<&dyn Recorder>` per instrumentation site. All
//! methods have default no-op bodies: sinks override what they consume, and
//! new hooks never break existing implementations.

use crate::events::EventKind;

/// Per-episode measurements, recorded once at the end of each episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpisodeSample {
    /// Engine-wide episode number.
    pub episode: u64,
    /// Wall-clock episode duration in nanoseconds.
    pub latency_ns: u64,
    /// Tuples scanned from the source partition.
    pub scanned: u64,
    /// Episode vector capacity (tuples), for fill-ratio accounting.
    pub capacity: u64,
    /// Tuples surviving selection.
    pub selected: u64,
    /// Tuples inserted into the episode relation's STeM.
    pub inserted: u64,
}

/// A sampled snapshot of the learned policy's internals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyProbe {
    /// Number of materialized Q-table entries.
    pub q_entries: u64,
    /// Routing decisions taken since the last reset.
    pub decisions: u64,
    /// Of those, how many explored (random action) rather than exploited.
    pub explorations: u64,
    /// Reward observations folded into the table since the last reset.
    pub observations: u64,
    /// Mean absolute temporal-difference error across observations.
    pub td_error_mean: f64,
    /// Largest absolute temporal-difference error seen.
    pub td_error_max: f64,
    /// Mean observed reward.
    pub reward_mean: f64,
    /// Smallest observed reward.
    pub reward_min: f64,
    /// Largest observed reward.
    pub reward_max: f64,
}

impl PolicyProbe {
    /// Fraction of decisions that explored, in `[0, 1]`; 0 when no
    /// decisions have been taken.
    pub fn exploration_share(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.explorations as f64 / self.decisions as f64
        }
    }
}

/// Sink facade for engine instrumentation. Implementations must be cheap
/// and non-blocking: they run inside episode execution.
pub trait Recorder: Send + Sync {
    /// Called once per completed episode with its measurements.
    fn record_episode(&self, sample: &EpisodeSample) {
        let _ = sample;
    }

    /// Called once per STeM probe batch with the number of probing tuples.
    fn record_probe_batch(&self, tuples: u64) {
        let _ = tuples;
    }

    /// Called once per sharded-STeM sub-chunk insert with the owning shard
    /// and the number of tuples it received (never called on unsharded
    /// STeMs, keeping the legacy path instrumentation-free).
    fn record_shard_insert(&self, shard: usize, tuples: u64) {
        let _ = (shard, tuples);
    }

    /// Called after a batched probe of a sharded STeM with the number of
    /// probe keys each visited shard saw (routed probes report the
    /// partition histogram; secondary-index scans report the full batch
    /// per shard).
    fn record_shard_probe(&self, shard: usize, keys: u64) {
        let _ = (shard, keys);
    }

    /// Called when a worker steals queued episode tasks from a sibling's
    /// morsel queue instead of idling.
    fn record_steal(&self, tasks: u64) {
        let _ = tasks;
    }

    /// Called once per episode with the scratch arena's buffer-reuse
    /// counters: acquisitions served from a pool (`hits`) vs. freshly
    /// allocated (`misses`). A healthy steady state is all hits.
    fn record_scratch(&self, hits: u64, misses: u64) {
        let _ = (hits, misses);
    }

    /// Called for rare structured events, stamped with the episode counter.
    fn record_event(&self, episode: u64, kind: EventKind) {
        let _ = (episode, kind);
    }

    /// Called every N episodes with a policy introspection snapshot.
    fn record_policy_probe(&self, episode: u64, probe: &PolicyProbe) {
        let _ = (episode, probe);
    }
}

/// A recorder that discards everything — the measured-overhead baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_accepts_everything() {
        let r = NullRecorder;
        r.record_episode(&EpisodeSample {
            episode: 1,
            latency_ns: 10,
            scanned: 1024,
            capacity: 1024,
            selected: 512,
            inserted: 512,
        });
        r.record_probe_batch(64);
        r.record_shard_insert(3, 128);
        r.record_shard_probe(3, 64);
        r.record_steal(1);
        r.record_scratch(12, 3);
        r.record_event(1, EventKind::Admission { query: 0 });
        r.record_policy_probe(
            1,
            &PolicyProbe {
                q_entries: 0,
                decisions: 0,
                explorations: 0,
                observations: 0,
                td_error_mean: 0.0,
                td_error_max: 0.0,
                reward_mean: 0.0,
                reward_min: 0.0,
                reward_max: 0.0,
            },
        );
    }

    #[test]
    fn exploration_share_handles_zero_decisions() {
        let mut p = PolicyProbe {
            q_entries: 0,
            decisions: 0,
            explorations: 0,
            observations: 0,
            td_error_mean: 0.0,
            td_error_max: 0.0,
            reward_mean: 0.0,
            reward_min: 0.0,
            reward_max: 0.0,
        };
        assert_eq!(p.exploration_share(), 0.0);
        p.decisions = 4;
        p.explorations = 1;
        assert_eq!(p.exploration_share(), 0.25);
    }
}
