//! Log-bucketed (HDR-style) histograms.
//!
//! Buckets are powers of two: value 0 lands in bucket 0, and a value `v > 0`
//! lands in bucket `floor(log2 v) + 1`, i.e. bucket `i ≥ 1` covers
//! `[2^(i-1), 2^i - 1]`. Recording is two relaxed atomic adds (bucket +
//! sum) with no allocation, so histograms are safe on the episode hot path.
//! Percentiles are answered from the bucket upper bounds — a relative error
//! of at most 2×, which is plenty for latency-shape regressions while
//! keeping the structure a fixed 66-word array.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: one zero bucket plus one per possible leading-zero count.
pub const BUCKETS: usize = 65;

/// A fixed-size power-of-two-bucketed histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for `v`: 0 for 0, `floor(log2 v) + 1` otherwise.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample (two relaxed adds).
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(b) = self.buckets.get(bucket_index(v)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Wrapping sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q ∈ [0, 1]`); 0 when empty. The estimate errs high by at most the
    /// bucket width (a factor of two).
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_upper_bound(i);
            }
        }
        u64::MAX
    }

    /// A consistent-enough snapshot for exporters (buckets read relaxed).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        HistogramSnapshot { counts, sum: self.sum() }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts, indexed as in [`bucket_index`].
    pub counts: Vec<u64>,
    /// Sum of all recorded samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total sample count.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Index of the highest non-empty bucket, if any.
    pub fn max_bucket(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn record_count_and_sum() {
        let h = Histogram::new();
        for v in [0, 1, 5, 1000, 70_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 71_006);
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.counts[0], 1);
        assert_eq!(s.counts[bucket_index(5)], 1);
    }

    #[test]
    fn quantiles_walk_cumulative_buckets() {
        let h = Histogram::new();
        // 90 small samples, 10 big ones.
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        assert_eq!(h.quantile(0.5), bucket_upper_bound(bucket_index(10)));
        assert_eq!(h.quantile(0.95), bucket_upper_bound(bucket_index(100_000)));
        assert_eq!(h.quantile(1.0), bucket_upper_bound(bucket_index(100_000)));
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::new().quantile(0.99), 0);
    }
}
