//! The bounded structured event stream.
//!
//! Sessions emit rare, high-signal events (admissions, completions,
//! quarantines, watchdog trips, fallback replans, memory-pressure ladder
//! transitions) into a fixed-capacity ring. Each event is stamped with the
//! episode counter at emission time plus a dense sequence number assigned
//! under the ring's latch, so consumers get a total order that can be
//! aligned with the metrics timeline. When the ring is full the oldest
//! event is dropped and a drop counter advances — backpressure never
//! reaches the engine.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard};

/// What happened. Variants carry raw ids (`u32` query slots, `u16`
/// relation slots) so this crate stays dependency-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A query was admitted into the shared plan.
    Admission {
        /// Query slot within the session.
        query: u32,
    },
    /// A query's input was fully consumed (its scans retired).
    Completion {
        /// Query slot within the session.
        query: u32,
    },
    /// A query was evicted from the shared plan.
    Quarantine {
        /// Query slot within the session.
        query: u32,
        /// Human-readable rendering of the attributed error.
        reason: String,
    },
    /// A query blew its deadline budget and was evicted from the shared
    /// plan. Distinct from [`EventKind::Quarantine`] so overload dashboards
    /// can separate latency-policy evictions from faults.
    DeadlineExceeded {
        /// Query slot within the session.
        query: u32,
        /// Human-readable rendering of the exceeded budget.
        reason: String,
    },
    /// An episode's join phase blew its budget and was aborted.
    WatchdogTrip {
        /// Relation slot whose episode tripped.
        relation: u16,
    },
    /// The aborted join phase was replanned with the greedy fallback.
    FallbackReplan {
        /// Relation slot whose episode was replanned.
        relation: u16,
    },
    /// The memory-pressure ladder changed levels.
    MemoryPressure {
        /// Previous level (see `EngineStats::memory_pressure`).
        from: u8,
        /// New level.
        to: u8,
    },
    /// A windowed relation expired tuples that aged past the stream window.
    WindowExpiry {
        /// Relation slot whose window advanced.
        relation: u16,
        /// Tuples reclaimed by this expiry sweep.
        expired: u64,
    },
    /// A scripted drift injector mutated the arrival distribution.
    DriftInjected {
        /// Stable kebab-case drift kind (e.g. `selectivity-flip`).
        kind: String,
    },
    /// The drift-recovery heuristic reset/boosted policy exploration.
    PolicyReset {
        /// Human-readable rendering of the trigger (e.g. the TD-error
        /// spike that tripped the heuristic).
        reason: String,
    },
}

impl EventKind {
    /// Stable kebab-case name used by exporters.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Admission { .. } => "admission",
            EventKind::Completion { .. } => "completion",
            EventKind::Quarantine { .. } => "quarantine",
            EventKind::DeadlineExceeded { .. } => "deadline-exceeded",
            EventKind::WatchdogTrip { .. } => "watchdog-trip",
            EventKind::FallbackReplan { .. } => "fallback-replan",
            EventKind::MemoryPressure { .. } => "memory-pressure",
            EventKind::WindowExpiry { .. } => "window-expiry",
            EventKind::DriftInjected { .. } => "drift-injected",
            EventKind::PolicyReset { .. } => "policy-reset",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Dense per-ring sequence number (total emission order).
    pub seq: u64,
    /// Value of the engine's episode counter when the event was emitted.
    pub episode: u64,
    /// What happened.
    pub kind: EventKind,
}

#[derive(Debug, Default)]
struct RingInner {
    buf: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded, latched ring of [`Event`]s.
#[derive(Debug)]
pub struct EventRing {
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl EventRing {
    /// A ring holding at most `capacity` events (≥ 1).
    pub fn new(capacity: usize) -> Self {
        EventRing { capacity: capacity.max(1), inner: Mutex::new(RingInner::default()) }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> MutexGuard<'_, RingInner> {
        // Telemetry must never take the engine down: recover from a
        // poisoned latch instead of propagating the panic.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Appends an event stamped with `episode`, dropping the oldest entry
    /// when full.
    pub fn push(&self, episode: u64, kind: EventKind) {
        let mut inner = self.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(Event { seq, episode, kind });
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.lock().buf.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.lock().buf.is_empty()
    }

    /// Events dropped to make room (ring overflow).
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Copies the buffered events out in sequence order.
    pub fn snapshot(&self) -> Vec<Event> {
        self.lock().buf.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_snapshot_preserve_order() {
        let r = EventRing::new(8);
        r.push(1, EventKind::Admission { query: 0 });
        r.push(5, EventKind::WatchdogTrip { relation: 2 });
        let events = r.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].episode, 1);
        assert_eq!(events[1].kind, EventKind::WatchdogTrip { relation: 2 });
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let r = EventRing::new(2);
        for q in 0..5u32 {
            r.push(q as u64, EventKind::Admission { query: q });
        }
        let events = r.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(r.dropped(), 3);
        // The two newest survive, with their original sequence numbers.
        assert_eq!(events[0].kind, EventKind::Admission { query: 3 });
        assert_eq!(events[0].seq, 3);
        assert_eq!(events[1].kind, EventKind::Admission { query: 4 });
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(EventKind::Admission { query: 0 }.name(), "admission");
        assert_eq!(EventKind::MemoryPressure { from: 0, to: 2 }.name(), "memory-pressure");
        assert_eq!(
            EventKind::DeadlineExceeded { query: 1, reason: "x".into() }.name(),
            "deadline-exceeded"
        );
        assert_eq!(
            EventKind::WindowExpiry { relation: 0, expired: 8 }.name(),
            "window-expiry"
        );
        assert_eq!(
            EventKind::DriftInjected { kind: "selectivity-flip".into() }.name(),
            "drift-injected"
        );
        assert_eq!(EventKind::PolicyReset { reason: "spike".into() }.name(), "policy-reset");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let r = EventRing::new(0);
        assert_eq!(r.capacity(), 1);
        r.push(0, EventKind::Admission { query: 0 });
        r.push(0, EventKind::Admission { query: 1 });
        assert_eq!(r.len(), 1);
    }
}
