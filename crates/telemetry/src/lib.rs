//! # roulette-telemetry
//!
//! Low-overhead observability for the RouLette engine. The crate is
//! dependency-free (pure std) and splits into four pieces:
//!
//! * a [`MetricsRegistry`] of named metrics — sharded [`ShardedCounter`]s,
//!   [`Gauge`]s, and log-bucketed (power-of-two, HDR-style) [`Histogram`]s —
//!   whose hot-path recording is a single relaxed atomic add;
//! * a bounded, episode-stamped structured [`EventRing`] capturing
//!   admissions, completions, quarantines, watchdog trips, greedy-fallback
//!   replans, and memory-pressure ladder transitions;
//! * a [`PolicyProbe`] snapshot of the learned policy's internals (Q-table
//!   size, exploration share, TD error, reward distribution), sampled every
//!   N episodes;
//! * exporters: Prometheus text-format rendering and a JSONL event-log
//!   writer, both into a caller-provided [`std::io::Write`].
//!
//! The engine and the policy crates depend only on the [`Recorder`] trait —
//! never on the concrete sinks — so a disabled recorder costs one branch on
//! an `Option` per instrumentation site. [`Telemetry`] is the batteries-
//! included sink wiring all of the above together; [`NullRecorder`] is the
//! do-nothing implementation used by overhead tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod histogram;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod registry;
pub mod sink;

pub use events::{Event, EventKind, EventRing};
pub use histogram::{Histogram, HistogramSnapshot};
pub use metrics::{FloatGauge, Gauge, ShardedCounter};
pub use recorder::{EpisodeSample, NullRecorder, PolicyProbe, Recorder};
pub use registry::MetricsRegistry;
pub use sink::Telemetry;
