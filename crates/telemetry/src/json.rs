//! Minimal hand-rolled JSON writing helpers.
//!
//! The exporters emit flat objects of strings and numbers, so this module
//! only needs string escaping and a tiny object builder — no serialization
//! framework, keeping the crate dependency-free.

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds one flat JSON object, field by field, in insertion order.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::from("{") }
    }

    fn key(&mut self, k: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        push_json_string(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn string(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        push_json_string(&mut self.buf, v);
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Finishes the object, returning the serialized text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn builds_objects_in_order() {
        let mut o = JsonObject::new();
        o.string("kind", "admission").u64("seq", 3);
        assert_eq!(o.finish(), "{\"kind\":\"admission\",\"seq\":3}");
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }
}
