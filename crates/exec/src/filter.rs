//! Shared selections with range-based grouped filters (§5.1).
//!
//! A selection-phase operator evaluates *all* queries' predicates on one
//! attribute and intersects each tuple's query-set with the satisfied set.
//! Prior work indexes predicates but still pays per-satisfied-query
//! comparison costs; RouLette instead precomputes a *lookup table* of
//! predicate-result bitsets over the value ranges induced by the batch's
//! predicate boundaries, so evaluating a tuple is one binary search —
//! logarithmic in the number of queries.
//!
//! [`PlainFilter`] is the per-query fallback used by the Fig. 18 ablation.

use roulette_core::{QueryId, QuerySet};

/// Precomputed range → predicate-result-bitset lookup table for one
/// `(relation, column)` selection group.
#[derive(Debug, Clone)]
pub struct GroupedFilter {
    /// Sorted distinct cut points. Segment `i` covers
    /// `[boundaries[i-1], boundaries[i])`, with open-ended segments at both
    /// ends.
    boundaries: Vec<i64>,
    /// Per-segment masks, `words` words each.
    masks: Vec<u64>,
    words: usize,
}

impl GroupedFilter {
    /// Builds the table from per-query inclusive ranges; `capacity` is the
    /// batch's query-id capacity.
    pub fn build(preds: &[(QueryId, i64, i64)], capacity: usize) -> Self {
        let words = roulette_core::queryset::words_for(capacity.max(1));
        let mut boundaries: Vec<i64> = Vec::with_capacity(preds.len() * 2);
        for &(_, lo, hi) in preds {
            boundaries.push(lo);
            if hi < i64::MAX {
                boundaries.push(hi + 1);
            }
        }
        boundaries.sort_unstable();
        boundaries.dedup();

        let n_segments = boundaries.len() + 1;
        let mut masks = vec![u64::MAX; n_segments * words];
        for seg in 0..n_segments {
            // A representative value inside the segment; segments never
            // straddle a predicate boundary, so one sample decides.
            let sample = if seg == 0 {
                boundaries.first().map_or(0, |&b| b.saturating_sub(1))
            } else {
                boundaries[seg - 1]
            };
            let row = &mut masks[seg * words..(seg + 1) * words];
            for &(q, lo, hi) in preds {
                if sample < lo || sample > hi {
                    row[q.index() / 64] &= !(1u64 << (q.index() % 64));
                }
            }
        }
        GroupedFilter { boundaries, masks, words }
    }

    /// The predicate-result bitset for value `v`: bit `q` is set iff query
    /// `q` either has no predicate in this group or its predicate is
    /// satisfied by `v`.
    #[inline]
    pub fn mask_for(&self, v: i64) -> &[u64] {
        let seg = self.boundaries.partition_point(|&b| b <= v);
        &self.masks[seg * self.words..(seg + 1) * self.words]
    }

    /// Number of range segments (diagnostics).
    pub fn segments(&self) -> usize {
        self.boundaries.len() + 1
    }
}

/// Per-query predicate evaluation (the pre-grouped-filter baseline):
/// cost is linear in the number of predicates for every tuple.
#[derive(Debug, Clone)]
pub struct PlainFilter {
    preds: Vec<(QueryId, i64, i64)>,
    words: usize,
}

impl PlainFilter {
    /// Wraps the group's predicates.
    pub fn new(preds: &[(QueryId, i64, i64)], capacity: usize) -> Self {
        PlainFilter {
            preds: preds.to_vec(),
            words: roulette_core::queryset::words_for(capacity.max(1)),
        }
    }

    /// Writes the predicate-result bitset for `v` into `mask`
    /// (`words_for(capacity)` words, set to all-ones first).
    #[inline]
    pub fn mask_into(&self, v: i64, mask: &mut [u64]) {
        debug_assert_eq!(mask.len(), self.words);
        mask.fill(u64::MAX);
        for &(q, lo, hi) in &self.preds {
            if v < lo || v > hi {
                mask[q.index() / 64] &= !(1u64 << (q.index() % 64));
            }
        }
    }
}

/// Builds the set of queries that have a predicate in a group (callers
/// combine with satisfied masks for bookkeeping/diagnostics).
pub fn group_queries(preds: &[(QueryId, i64, i64)], capacity: usize) -> QuerySet {
    let mut qs = QuerySet::empty(capacity);
    for &(q, _, _) in preds {
        qs.insert(q);
    }
    qs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 8 example on R.d:
    /// Q1: −3 < d < 3 (as −2..=2), Q2: true, Q3: d < 0.
    fn fig8_preds() -> Vec<(QueryId, i64, i64)> {
        vec![(QueryId(0), -2, 2), (QueryId(2), i64::MIN, -1)]
    }

    #[test]
    fn grouped_filter_reproduces_fig8_table() {
        let f = GroupedFilter::build(&fig8_preds(), 3);
        // (-∞,-2) → Q2,Q3 pass, Q1 fails: 110 (bit0=Q1).
        assert_eq!(f.mask_for(-5)[0] & 0b111, 0b110);
        // [-2,0) → all pass: 111.
        assert_eq!(f.mask_for(-1)[0] & 0b111, 0b111);
        // [0,3) → Q3 fails: 011.
        assert_eq!(f.mask_for(1)[0] & 0b111, 0b011);
        // [3,∞) → Q1,Q3 fail: 010.
        assert_eq!(f.mask_for(3)[0] & 0b111, 0b010);
        assert_eq!(f.mask_for(100)[0] & 0b111, 0b010);
    }

    #[test]
    fn plain_filter_agrees_with_grouped() {
        let preds = vec![
            (QueryId(0), 10, 20),
            (QueryId(1), 15, 35),
            (QueryId(3), i64::MIN, 12),
            (QueryId(5), 33, i64::MAX),
        ];
        let grouped = GroupedFilter::build(&preds, 6);
        let plain = PlainFilter::new(&preds, 6);
        let mut mask = vec![0u64; 1];
        for v in [-100, 9, 10, 12, 13, 15, 20, 21, 32, 33, 35, 36, 1000, i64::MIN, i64::MAX] {
            plain.mask_into(v, &mut mask);
            assert_eq!(
                mask[0] & 0b111111,
                grouped.mask_for(v)[0] & 0b111111,
                "divergence at v={v}"
            );
        }
    }

    #[test]
    fn queries_without_predicates_always_pass() {
        let f = GroupedFilter::build(&[(QueryId(1), 0, 0)], 64);
        for v in [-1, 0, 1] {
            let m = f.mask_for(v)[0];
            // Bits other than Q1's must be set everywhere.
            assert_eq!(m | 0b10, u64::MAX);
        }
        assert_eq!(f.mask_for(0)[0] & 0b10, 0b10);
        assert_eq!(f.mask_for(1)[0] & 0b10, 0);
    }

    #[test]
    fn segment_count_is_bounded_by_boundaries() {
        let preds: Vec<_> = (0..10).map(|i| (QueryId(i), i as i64 * 10, i as i64 * 10 + 5)).collect();
        let f = GroupedFilter::build(&preds, 10);
        assert!(f.segments() <= 21);
    }

    #[test]
    fn multiword_masks() {
        // Query 70 lives in the second word.
        let f = GroupedFilter::build(&[(QueryId(70), 5, 9)], 128);
        assert_eq!(f.mask_for(7)[1] & (1 << 6), 1 << 6);
        assert_eq!(f.mask_for(4)[1] & (1 << 6), 0);
        assert_eq!(f.mask_for(4)[0], u64::MAX);
    }

    #[test]
    fn extreme_bounds_do_not_overflow() {
        let preds = vec![(QueryId(0), i64::MIN, i64::MAX)];
        let f = GroupedFilter::build(&preds, 1);
        assert_eq!(f.mask_for(i64::MIN)[0] & 1, 1);
        assert_eq!(f.mask_for(i64::MAX)[0] & 1, 1);
        assert_eq!(f.mask_for(0)[0] & 1, 1);
    }

    #[test]
    fn group_queries_collects_predicate_owners() {
        let qs = group_queries(&fig8_preds(), 3);
        assert!(qs.contains(QueryId(0)));
        assert!(!qs.contains(QueryId(1)));
        assert!(qs.contains(QueryId(2)));
    }
}
