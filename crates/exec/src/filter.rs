//! Shared selections with range-based grouped filters (§5.1).
//!
//! A selection-phase operator evaluates *all* queries' predicates on one
//! attribute and intersects each tuple's query-set with the satisfied set.
//! Prior work indexes predicates but still pays per-satisfied-query
//! comparison costs; RouLette instead precomputes a *lookup table* of
//! predicate-result bitsets over the value ranges induced by the batch's
//! predicate boundaries, so evaluating a tuple is one binary search —
//! logarithmic in the number of queries.
//!
//! [`PlainFilter`] is the per-query fallback used by the Fig. 18 ablation.

use roulette_core::{QueryId, QuerySet};

/// Precomputed range → predicate-result-bitset lookup table for one
/// `(relation, column)` selection group.
#[derive(Debug, Clone)]
pub struct GroupedFilter {
    /// Sorted distinct cut points. Segment `i` covers
    /// `[boundaries[i-1], boundaries[i])`, with open-ended segments at both
    /// ends.
    boundaries: Vec<i64>,
    /// Per-segment masks, `words` words each.
    masks: Vec<u64>,
    words: usize,
    /// Bucket jump table accelerating the segment search (DESIGN.md §14):
    /// `jump[k]` is the number of boundaries mapping to buckets `< k`, so
    /// a value in bucket `k` has its segment in `jump[k] ..= jump[k + 1]`.
    /// Empty when there are fewer than two boundaries (nothing to search).
    jump: Vec<u32>,
    /// `boundaries` plus pad entries, so the fixed-shape refinement reads
    /// in [`seg_of`](Self::seg_of) are always in bounds — the
    /// loads stay branch-free instead of mispredicting near the table end.
    /// Pad values are never counted (masked by the real-length compare).
    jump_bounds: Vec<i64>,
    /// `boundaries[0]` in the order-preserving unsigned domain
    /// ([`sign_flip`]).
    jump_umin: u64,
    /// `sign_flip(boundaries[last]) - jump_umin`: the value span the
    /// buckets divide.
    jump_span: u64,
    /// Fixed-point bucket width reciprocal:
    /// `bucket(v) = mulhi(clamp(sign_flip(v) - jump_umin), jump_scale)`.
    jump_scale: u64,
}

/// Maps an `i64` to a `u64` preserving order (`a < b ⇔ sign_flip(a) <
/// sign_flip(b)`), so bucket arithmetic runs branch-free in unsigned math.
#[inline]
fn sign_flip(v: i64) -> u64 {
    (v as u64) ^ (1u64 << 63)
}

/// Bucket count for a boundary table: ~4 boundaries' worth of slack per
/// bucket keeps the refinement scan at 0–2 comparisons, capped so the
/// table stays a few hundred KiB even for enormous batches. Also capped
/// at half the span so the fixed-point reciprocal fits in 64 bits.
fn jump_buckets(n_boundaries: usize, span: u64) -> usize {
    let by_len = (n_boundaries * 4).next_power_of_two().min(1 << 16);
    // Largest power of two at most `span / 2`; the caller guarantees
    // `span >= 4`, so `span / 2 >= 2` and the shift is in range.
    let by_span = 1u64 << (63 - (span / 2).leading_zeros());
    by_len.min(by_span.min(1 << 16) as usize)
}

impl GroupedFilter {
    /// Builds the table from per-query inclusive ranges; `capacity` is the
    /// batch's query-id capacity.
    pub fn build(preds: &[(QueryId, i64, i64)], capacity: usize) -> Self {
        let words = roulette_core::queryset::words_for(capacity.max(1));
        let mut boundaries: Vec<i64> = Vec::with_capacity(preds.len() * 2);
        for &(_, lo, hi) in preds {
            boundaries.push(lo);
            if hi < i64::MAX {
                boundaries.push(hi + 1);
            }
        }
        boundaries.sort_unstable();
        boundaries.dedup();

        let n_segments = boundaries.len() + 1;
        let mut masks = vec![u64::MAX; n_segments * words];
        for seg in 0..n_segments {
            // A representative value inside the segment; segments never
            // straddle a predicate boundary, so one sample decides.
            let sample = if seg == 0 {
                boundaries.first().map_or(0, |&b| b.saturating_sub(1))
            } else {
                boundaries[seg - 1]
            };
            let row = &mut masks[seg * words..(seg + 1) * words];
            for &(q, lo, hi) in preds {
                if sample < lo || sample > hi {
                    row[q.index() / 64] &= !(1u64 << (q.index() % 64));
                }
            }
        }
        let (jump, jump_umin, jump_span, jump_scale) = Self::build_jump(&boundaries);
        let jump_bounds = if jump.is_empty() {
            Vec::new()
        } else {
            let mut jb = boundaries.clone();
            jb.extend([0i64; 4]);
            jb
        };
        GroupedFilter { boundaries, masks, words, jump, jump_bounds, jump_umin, jump_span, jump_scale }
    }

    /// Builds the bucket jump table: a histogram of boundary bucket
    /// indices, prefix-summed so `jump[k]` counts boundaries in buckets
    /// `< k`. The bucket map is monotone in the value, so those boundaries
    /// are exactly a prefix of the sorted array.
    fn build_jump(boundaries: &[i64]) -> (Vec<u32>, u64, u64, u64) {
        let (Some(&min), Some(&max)) = (boundaries.first(), boundaries.last()) else {
            return (Vec::new(), 0, 0, 0);
        };
        let umin = sign_flip(min);
        let span = sign_flip(max) - umin;
        if span < 4 {
            // At most a handful of adjacent boundaries; plain search wins.
            return (Vec::new(), 0, 0, 0);
        }
        let nb = jump_buckets(boundaries.len(), span);
        // `nb <= span / 2`, so `scale` fits in 64 bits; it rounds down, so
        // `bucket(max) <= nb` and every in-range value (`min <= v < max`)
        // lands strictly below `nb`.
        let scale = (((nb as u128) << 64) / span as u128) as u64;
        let mut hist = vec![0u32; nb + 1];
        for &b in boundaries {
            let k = (((sign_flip(b) - umin) as u128 * scale as u128) >> 64) as usize;
            hist[k.min(nb)] += 1;
        }
        // `jump[k]` = #boundaries in buckets `< k`, for `k` in `0..=nb+1`
        // (the final entry is the total, so `jump[k + 1]` is valid for
        // every reachable bucket including `nb`).
        let mut jump = Vec::with_capacity(nb + 2);
        let mut acc = 0u32;
        for &h in hist.iter().take(nb + 1) {
            jump.push(acc);
            acc += h;
        }
        jump.push(acc);
        (jump, umin, span, scale)
    }

    /// The segment index for value `v` — identical to
    /// `boundaries.partition_point(|b| b <= v)`, computed through the
    /// bucket jump table: one fixed-point multiply finds the bucket, whose
    /// boundary range is almost always 0–2 entries, scanned branchlessly.
    /// Long ranges (adversarially clustered boundaries) fall back to a
    /// binary search over just that range.
    #[inline]
    pub(crate) fn seg_of(&self, v: i64) -> usize {
        if self.jump.is_empty() {
            // Few/trivially-spanned boundaries: the plain search is cheap.
            return self.boundaries.partition_point(|&b| b <= v);
        }
        // Out-of-range values clamp into the edge buckets instead of
        // branching: for `v < min` every scanned boundary fails `b <= v`
        // (segment 0); for `v >= max` the clamped bucket is the last
        // boundary's own, whose scan range runs to the end of the table.
        // All in order-preserving unsigned math ([`sign_flip`]) — the
        // saturating-sub and `min` lower to conditional moves.
        let d = sign_flip(v).saturating_sub(self.jump_umin).min(self.jump_span);
        let k = ((d as u128 * self.jump_scale as u128) >> 64) as usize;
        // `k <= nb` and `jump.len() == nb + 2`, so both reads are in
        // bounds (the checks fold away or never-taken-predict).
        let lo = self.jump[k] as usize;
        let hi = self.jump[k + 1] as usize;
        if hi - lo <= 2 {
            // Fixed-shape refinement: two reads from the padded boundary
            // copy (always in bounds, so no data-dependent branch),
            // counted branchlessly with pad/past-`hi` entries masked off
            // arithmetically — a sentinel would miscount `v == i64::MAX`,
            // and a real boundary past `hi` sits in a later bucket, so it
            // is strictly greater than `v` and adds 0 anyway. With ~4
            // buckets per boundary this tier covers all but adversarially
            // clustered tables.
            let n = self.boundaries.len();
            let mut seg = lo;
            for j in 0..2 {
                let b = self.jump_bounds[lo + j];
                seg += usize::from(b <= v) & usize::from(lo + j < n);
            }
            seg
        } else {
            // Adversarially clustered boundaries: binary-search the range.
            let range = self.boundaries.get(lo..hi).unwrap_or(&[]);
            lo + range.partition_point(|&b| b <= v)
        }
    }

    /// The predicate-result bitset for value `v`: bit `q` is set iff query
    /// `q` either has no predicate in this group or its predicate is
    /// satisfied by `v`.
    #[inline]
    pub fn mask_for(&self, v: i64) -> &[u64] {
        let seg = self.seg_of(v);
        &self.masks[seg * self.words..(seg + 1) * self.words]
    }

    /// Number of range segments (diagnostics).
    pub fn segments(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The raw lookup table for the kernel layer's batched evaluation:
    /// `(boundaries, per-segment masks concatenated, words per mask)`.
    /// Segment for value `v` is `boundaries.partition_point(|b| b <= v)`,
    /// exactly what [`mask_for`](Self::mask_for) computes.
    #[inline]
    pub(crate) fn table(&self) -> (&[i64], &[u64], usize) {
        (&self.boundaries, &self.masks, self.words)
    }
}

/// Per-query predicate evaluation (the pre-grouped-filter baseline):
/// cost is linear in the number of predicates for every tuple.
#[derive(Debug, Clone)]
pub struct PlainFilter {
    preds: Vec<(QueryId, i64, i64)>,
    words: usize,
}

impl PlainFilter {
    /// Wraps the group's predicates.
    pub fn new(preds: &[(QueryId, i64, i64)], capacity: usize) -> Self {
        PlainFilter {
            preds: preds.to_vec(),
            words: roulette_core::queryset::words_for(capacity.max(1)),
        }
    }

    /// Writes the predicate-result bitset for `v` into `mask`
    /// (`words_for(capacity)` words, set to all-ones first).
    #[inline]
    pub fn mask_into(&self, v: i64, mask: &mut [u64]) {
        debug_assert_eq!(mask.len(), self.words);
        mask.fill(u64::MAX);
        for &(q, lo, hi) in &self.preds {
            if v < lo || v > hi {
                mask[q.index() / 64] &= !(1u64 << (q.index() % 64));
            }
        }
    }

    /// Width of the masks this filter produces, in words.
    #[inline]
    pub(crate) fn words(&self) -> usize {
        self.words
    }
}

/// Builds the set of queries that have a predicate in a group (callers
/// combine with satisfied masks for bookkeeping/diagnostics).
pub fn group_queries(preds: &[(QueryId, i64, i64)], capacity: usize) -> QuerySet {
    let mut qs = QuerySet::empty(capacity);
    for &(q, _, _) in preds {
        qs.insert(q);
    }
    qs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 8 example on R.d:
    /// Q1: −3 < d < 3 (as −2..=2), Q2: true, Q3: d < 0.
    fn fig8_preds() -> Vec<(QueryId, i64, i64)> {
        vec![(QueryId(0), -2, 2), (QueryId(2), i64::MIN, -1)]
    }

    #[test]
    fn grouped_filter_reproduces_fig8_table() {
        let f = GroupedFilter::build(&fig8_preds(), 3);
        // (-∞,-2) → Q2,Q3 pass, Q1 fails: 110 (bit0=Q1).
        assert_eq!(f.mask_for(-5)[0] & 0b111, 0b110);
        // [-2,0) → all pass: 111.
        assert_eq!(f.mask_for(-1)[0] & 0b111, 0b111);
        // [0,3) → Q3 fails: 011.
        assert_eq!(f.mask_for(1)[0] & 0b111, 0b011);
        // [3,∞) → Q1,Q3 fail: 010.
        assert_eq!(f.mask_for(3)[0] & 0b111, 0b010);
        assert_eq!(f.mask_for(100)[0] & 0b111, 0b010);
    }

    #[test]
    fn plain_filter_agrees_with_grouped() {
        let preds = vec![
            (QueryId(0), 10, 20),
            (QueryId(1), 15, 35),
            (QueryId(3), i64::MIN, 12),
            (QueryId(5), 33, i64::MAX),
        ];
        let grouped = GroupedFilter::build(&preds, 6);
        let plain = PlainFilter::new(&preds, 6);
        let mut mask = vec![0u64; 1];
        for v in [-100, 9, 10, 12, 13, 15, 20, 21, 32, 33, 35, 36, 1000, i64::MIN, i64::MAX] {
            plain.mask_into(v, &mut mask);
            assert_eq!(
                mask[0] & 0b111111,
                grouped.mask_for(v)[0] & 0b111111,
                "divergence at v={v}"
            );
        }
    }

    #[test]
    fn queries_without_predicates_always_pass() {
        let f = GroupedFilter::build(&[(QueryId(1), 0, 0)], 64);
        for v in [-1, 0, 1] {
            let m = f.mask_for(v)[0];
            // Bits other than Q1's must be set everywhere.
            assert_eq!(m | 0b10, u64::MAX);
        }
        assert_eq!(f.mask_for(0)[0] & 0b10, 0b10);
        assert_eq!(f.mask_for(1)[0] & 0b10, 0);
    }

    #[test]
    fn segment_count_is_bounded_by_boundaries() {
        let preds: Vec<_> = (0..10).map(|i| (QueryId(i), i as i64 * 10, i as i64 * 10 + 5)).collect();
        let f = GroupedFilter::build(&preds, 10);
        assert!(f.segments() <= 21);
    }

    #[test]
    fn multiword_masks() {
        // Query 70 lives in the second word.
        let f = GroupedFilter::build(&[(QueryId(70), 5, 9)], 128);
        assert_eq!(f.mask_for(7)[1] & (1 << 6), 1 << 6);
        assert_eq!(f.mask_for(4)[1] & (1 << 6), 0);
        assert_eq!(f.mask_for(4)[0], u64::MAX);
    }

    #[test]
    fn extreme_bounds_do_not_overflow() {
        let preds = vec![(QueryId(0), i64::MIN, i64::MAX)];
        let f = GroupedFilter::build(&preds, 1);
        assert_eq!(f.mask_for(i64::MIN)[0] & 1, 1);
        assert_eq!(f.mask_for(i64::MAX)[0] & 1, 1);
        assert_eq!(f.mask_for(0)[0] & 1, 1);
    }

    #[test]
    fn seg_of_matches_partition_point() {
        let cases: Vec<Vec<(QueryId, i64, i64)>> = vec![
            vec![],
            vec![(QueryId(0), 5, 5)],
            vec![(QueryId(0), i64::MIN, i64::MAX)],
            vec![(QueryId(0), i64::MIN, -1), (QueryId(1), 0, i64::MAX)],
            fig8_preds(),
            (0..64)
                .map(|i| {
                    let lo = (i as i64 * 13) % 1000;
                    (QueryId(i), lo, lo + 150)
                })
                .collect(),
            // Adversarial clustering: a dense clump of boundaries plus one
            // far outlier, so one bucket holds nearly everything and the
            // long-range binary-search fallback is exercised.
            (0..40)
                .map(|i| (QueryId(i), 1000 + i as i64, 1000 + i as i64))
                .chain([(QueryId(40), i64::MAX - 2, i64::MAX - 2)])
                .collect(),
        ];
        for preds in &cases {
            let f = GroupedFilter::build(preds, 64);
            let mut probes: Vec<i64> =
                vec![i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX];
            for &b in &f.boundaries {
                probes.extend([b.saturating_sub(1), b, b.saturating_add(1)]);
            }
            let mut v = 0x2545_F491_4F6C_DD1Di64;
            for _ in 0..4096 {
                v = v.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                probes.push(v >> 16);
                probes.push((v >> 16) % 1200);
            }
            for &p in &probes {
                assert_eq!(
                    f.seg_of(p),
                    f.boundaries.partition_point(|&b| b <= p),
                    "seg divergence at v={p} ({} preds)",
                    preds.len()
                );
            }
        }
    }

    #[test]
    fn group_queries_collects_predicate_owners() {
        let qs = group_queries(&fig8_preds(), 3);
        assert!(qs.contains(QueryId(0)));
        assert!(!qs.contains(QueryId(1)));
        assert!(qs.contains(QueryId(2)));
    }
}
