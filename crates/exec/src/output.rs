//! RouLette sources: per-query output sinks (§3).
//!
//! Routers multicast SPJ result tuples to their query-set's *RouLette
//! sources*, which pipeline them to host-side consumers. This reproduction
//! models the host side as per-query sinks that accumulate a row count, an
//! order-independent checksum over the projected values (so RouLette's
//! results can be compared tuple-for-tuple against the baseline engines,
//! which compute the same checksum), and optionally the projected rows
//! themselves for small workloads.

use parking_lot::Mutex;
use roulette_core::{Error, QueryId};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Hashes one projected output row (order-independent accumulation is the
/// caller's job). An empty projection hashes to a constant, making the
/// checksum a scaled row count for `COUNT(*)`-style queries.
#[inline]
pub fn row_hash(values: &[i64]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    for &v in values {
        let mut z = (v as u64).wrapping_add(h);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h = z ^ (z >> 31);
    }
    h | 1 // never zero, so checksums distinguish "no rows" from "hash 0"
}

/// How a query's shared execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompletionStatus {
    /// The query ran to completion; `rows`/`checksum` are its full result.
    #[default]
    Complete,
    /// The query faulted mid-session and was evicted from the shared plan;
    /// its accumulated outputs are partial and must not be trusted. The
    /// attributed error is available via [`Outputs::error`] /
    /// `Session::query_error`.
    Quarantined,
}

/// One query's accumulated result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryResult {
    /// Output cardinality.
    pub rows: u64,
    /// Wrapping sum of [`row_hash`] over all output rows.
    pub checksum: u64,
    /// Whether the result is complete or the query was quarantined.
    pub status: CompletionStatus,
}

impl QueryResult {
    /// Whether this result is trustworthy (the query was not quarantined).
    pub fn is_complete(&self) -> bool {
        self.status == CompletionStatus::Complete
    }
}

/// Per-query sinks shared across workers.
#[derive(Debug)]
pub struct Outputs {
    rows: Vec<AtomicU64>,
    checksums: Vec<AtomicU64>,
    collected: Option<Vec<Mutex<Vec<Vec<i64>>>>>,
    statuses: Vec<AtomicU8>,
    errors: Mutex<Vec<Option<Error>>>,
}

impl Outputs {
    /// Sinks for up to `capacity` queries. When `collect` is set, projected
    /// rows are retained (intended for tests and small examples).
    pub fn new(capacity: usize, collect: bool) -> Self {
        Outputs {
            rows: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            checksums: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            collected: collect
                .then(|| (0..capacity).map(|_| Mutex::new(Vec::new())).collect()),
            statuses: (0..capacity).map(|_| AtomicU8::new(0)).collect(),
            errors: Mutex::new(vec![None; capacity]),
        }
    }

    /// Marks `q` quarantined with the attributed error. First writer wins;
    /// later errors for the same query are dropped.
    pub fn quarantine(&self, q: QueryId, err: Error) {
        // ordering: Release pairs with the Acquire load in `status` so a
        // reader that sees Quarantined also sees the attributed error.
        self.statuses[q.index()].store(1, Ordering::Release);
        let mut errors = self.errors.lock();
        errors[q.index()].get_or_insert(err);
    }

    /// The error attributed to `q`, if it was quarantined.
    pub fn error(&self, q: QueryId) -> Option<Error> {
        self.errors.lock()[q.index()].clone()
    }

    /// `q`'s completion status.
    pub fn status(&self, q: QueryId) -> CompletionStatus {
        // ordering: Acquire pairs with `quarantine`'s Release store.
        match self.statuses[q.index()].load(Ordering::Acquire) {
            0 => CompletionStatus::Complete,
            _ => CompletionStatus::Quarantined,
        }
    }

    /// Whether rows are being collected.
    pub fn collecting(&self) -> bool {
        self.collected.is_some()
    }

    /// Adds one output row for `q`.
    #[inline]
    pub fn push(&self, q: QueryId, values: &[i64]) {
        self.rows[q.index()].fetch_add(1, Ordering::Relaxed);
        self.checksums[q.index()].fetch_add(row_hash(values), Ordering::Relaxed);
        if let Some(collected) = &self.collected {
            collected[q.index()].lock().push(values.to_vec());
        }
    }

    /// Adds a pre-aggregated batch for `q` (the locality-conscious router's
    /// one-update-per-query-per-vector path).
    #[inline]
    pub fn push_batch(&self, q: QueryId, rows: u64, checksum: u64) {
        self.rows[q.index()].fetch_add(rows, Ordering::Relaxed);
        self.checksums[q.index()].fetch_add(checksum, Ordering::Relaxed);
    }

    /// Appends collected rows for `q` (two-pass router path).
    pub fn extend_collected(&self, q: QueryId, rows: &[Vec<i64>]) {
        if let Some(collected) = &self.collected {
            collected[q.index()].lock().extend(rows.iter().cloned());
        }
    }

    /// Appends collected rows for `q` from a flat value store: row `i` is
    /// `data[offsets[i-1]..offsets[i]]` (with `offsets[-1]` read as 0).
    /// The episode sink stages rows this way so routing never allocates;
    /// rows materialize into `Vec`s only here, at the commit point.
    pub fn extend_collected_flat(&self, q: QueryId, data: &[i64], offsets: &[u32]) {
        if let Some(collected) = &self.collected {
            let mut sink = collected[q.index()].lock();
            sink.reserve(offsets.len());
            let mut start = 0usize;
            for &end in offsets {
                sink.push(data[start..end as usize].to_vec());
                start = end as usize;
            }
        }
    }

    /// Snapshot of one query's result.
    pub fn result(&self, q: QueryId) -> QueryResult {
        QueryResult {
            // ordering: rows/checksum are monotone accumulators read after
            // the drain barrier; no ordering is carried through them.
            rows: self.rows[q.index()].load(Ordering::Relaxed),
            checksum: self.checksums[q.index()].load(Ordering::Relaxed),
            status: self.status(q),
        }
    }

    /// Snapshot of the first `n` queries' results.
    pub fn results(&self, n: usize) -> Vec<QueryResult> {
        (0..n).map(|i| self.result(QueryId(i as u32))).collect()
    }

    /// Takes the collected rows of `q` (empty when not collecting).
    pub fn take_collected(&self, q: QueryId) -> Vec<Vec<i64>> {
        match &self.collected {
            Some(c) => std::mem::take(&mut *c[q.index()].lock()),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hash_is_order_sensitive_but_accumulation_is_not() {
        assert_ne!(row_hash(&[1, 2]), row_hash(&[2, 1]));
        let a = row_hash(&[1, 2]).wrapping_add(row_hash(&[3, 4]));
        let b = row_hash(&[3, 4]).wrapping_add(row_hash(&[1, 2]));
        assert_eq!(a, b);
        assert_ne!(row_hash(&[]), 0);
    }

    #[test]
    fn push_accumulates() {
        let o = Outputs::new(2, false);
        o.push(QueryId(0), &[1]);
        o.push(QueryId(0), &[2]);
        o.push(QueryId(1), &[1]);
        let r0 = o.result(QueryId(0));
        assert_eq!(r0.rows, 2);
        assert_eq!(r0.checksum, row_hash(&[1]).wrapping_add(row_hash(&[2])));
        assert_eq!(o.result(QueryId(1)).rows, 1);
    }

    #[test]
    fn batch_path_equals_per_row_path() {
        let a = Outputs::new(1, false);
        let b = Outputs::new(1, false);
        for v in 0..10i64 {
            a.push(QueryId(0), &[v]);
        }
        let mut sum = 0u64;
        for v in 0..10i64 {
            sum = sum.wrapping_add(row_hash(&[v]));
        }
        b.push_batch(QueryId(0), 10, sum);
        assert_eq!(a.result(QueryId(0)), b.result(QueryId(0)));
    }

    #[test]
    fn quarantine_marks_status_and_keeps_first_error() {
        let o = Outputs::new(2, false);
        assert!(o.result(QueryId(0)).is_complete());
        o.quarantine(QueryId(0), Error::Internal("first".into()));
        o.quarantine(QueryId(0), Error::Internal("second".into()));
        let r = o.result(QueryId(0));
        assert_eq!(r.status, CompletionStatus::Quarantined);
        assert!(!r.is_complete());
        assert_eq!(o.error(QueryId(0)), Some(Error::Internal("first".into())));
        assert!(o.result(QueryId(1)).is_complete());
        assert!(o.error(QueryId(1)).is_none());
    }

    #[test]
    fn flat_extension_matches_nested_rows() {
        let a = Outputs::new(1, true);
        let b = Outputs::new(1, true);
        a.extend_collected(QueryId(0), &[vec![1, 2], vec![3], vec![]]);
        b.extend_collected_flat(QueryId(0), &[1, 2, 3], &[2, 3, 3]);
        assert_eq!(a.take_collected(QueryId(0)), b.take_collected(QueryId(0)));
        // No-op when not collecting.
        let no = Outputs::new(1, false);
        no.extend_collected_flat(QueryId(0), &[1], &[1]);
        assert!(no.take_collected(QueryId(0)).is_empty());
    }

    #[test]
    fn collection_is_optional() {
        let o = Outputs::new(1, true);
        assert!(o.collecting());
        o.push(QueryId(0), &[7, 8]);
        o.extend_collected(QueryId(0), &[vec![9, 10]]);
        let rows = o.take_collected(QueryId(0));
        assert_eq!(rows, vec![vec![7, 8], vec![9, 10]]);
        assert!(o.take_collected(QueryId(0)).is_empty());

        let no = Outputs::new(1, false);
        no.push(QueryId(0), &[1]);
        assert!(no.take_collected(QueryId(0)).is_empty());
    }
}
