//! # roulette-exec
//!
//! The adaptive multi-query executor (§3, §5): STeMs implementing a
//! history-independent multi-query n-ary symmetric hash join with batch
//! versioning, shared selections with range-based grouped filters, the
//! eddy's multi-step optimization (Algorithm 1) driven by a learned policy,
//! symmetric join pruning with scan-order ranking, adaptive projections,
//! locality-conscious routing, and the episode-based engine with dynamic
//! query admission and a multi-core worker pool.

// The `simd` feature introduces one audited `unsafe` surface — the
// `std::arch` AVX2 bodies in `kernels::simd`, every block SAFETY-commented
// and gated on runtime feature detection (DESIGN.md §14). Default builds
// keep the crate-wide forbid.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod engine;
pub mod episode;
pub mod fault;
pub mod filter;
pub mod host;
pub mod kernels;
pub mod output;
pub mod planner;
pub mod profile;
pub mod pruning;
pub mod scratch;
pub mod spaces;
pub mod stem;
pub mod vector;

pub use engine::{
    pressure_from_usage, BatchOutcome, EngineStats, PressureLevel, RouletteEngine, Session,
};
pub use episode::{EngineShared, FilterPair, SharedStats, TraceEntry};
pub use fault::{FaultInjector, FaultKind, FaultSite, LiveSet};
pub use filter::{GroupedFilter, PlainFilter};
pub use kernels::{KernelMode, Kernels, Partition};
pub use output::{row_hash, CompletionStatus, Outputs, QueryResult};
pub use planner::{JoinNode, ProbeNode};
pub use profile::{Category, Profile};
pub use scratch::EpisodeScratch;
pub use spaces::{JoinSpace, SelectionSpace};
pub use stem::{shard_for_key, ProbeScratch, Stem, StemReader, MAX_STEM_SHARDS, VERSION_ALL};
pub use vector::DataVector;
