//! State Modules (STeMs) — the shared join state (§2.2, §5.1).
//!
//! RouLette keeps one STeM per base relation, shared across all queries and
//! joins. Entries are *unified*: `(index-vector, vID, version, query-set)`
//! stored columnarly; each hash index materializes its join key and chains
//! entries through a self-referential `next` vector (the paper's
//! index-vector element).
//!
//! ## Insert-probe atomicity (scalable versioning, §5.2)
//!
//! Symmetric-join correctness requires each match be produced by exactly
//! one side: a probe only sees entries with a *strictly older* version.
//! Versions are assigned per inserted vector ("batch versioning" — one
//! version per 1024-tuple vector, not per tuple) from a global atomic
//! counter, *inside* the STeM's write latch. Probes hold the read latch.
//! This gives the required invariant cheaply: if `entry.version <
//! probe.version`, the entry's insert critical section completed before the
//! probe's read latch, so the entry is visible; otherwise the entry's
//! inserter holds the later version and will see the prober's tuples when
//! it probes. Latches are taken once per *vector*, so synchronization cost
//! is two atomic acquisitions per episode per STeM — the same granularity
//! the paper's wait-free scheme achieves.

use parking_lot::{RwLock, RwLockReadGuard};
use roulette_core::{ColId, QuerySetColumn, RelId};
use std::sync::atomic::{AtomicU32, Ordering};

/// Version value meaning "see everything" (semi-joins against completed
/// scans).
///
/// Versions are `u32` and one is consumed per inserted vector; a session
/// would need ~4.3 billion episodes (quadrillions of tuples at the default
/// vector size) to exhaust them, far beyond the in-memory datasets STeMs
/// can hold. Sessions are per-batch, so the counter resets naturally.
pub const VERSION_ALL: u32 = u32::MAX;

#[inline]
fn hash_key(key: i64) -> u64 {
    // SplitMix64 finalizer — cheap and well-distributed for integer keys.
    let mut z = key as u64;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One hash index of a STeM (per join-key column).
#[derive(Debug)]
struct StemIndex {
    /// Materialized join key per entry (avoids late materialization on the
    /// probe's inner loop).
    keys: Vec<i64>,
    /// Bucket heads: entry index + 1, 0 = empty.
    buckets: Vec<u32>,
    /// Chain links: next entry index + 1, 0 = end.
    next: Vec<u32>,
    mask: usize,
}

impl StemIndex {
    /// Smallest bucket table; tiny relations no longer pay a fixed
    /// 1024-bucket tax per index.
    const MIN_BUCKETS: usize = 16;

    /// Sizes the bucket table for an expected `hint` entries at the 3/4
    /// load factor, so a correctly hinted index never rehashes during its
    /// build. `hint = 0` (unknown cardinality) starts at the minimum and
    /// grows by doubling as usual.
    fn with_capacity(hint: usize) -> Self {
        let buckets = (hint + hint / 3 + 1)
            .next_power_of_two()
            .max(Self::MIN_BUCKETS);
        StemIndex {
            keys: Vec::new(),
            buckets: vec![0; buckets],
            next: Vec::new(),
            mask: buckets - 1,
        }
    }

    // lint: hot-loop
    fn insert(&mut self, key: i64) {
        if self.keys.len() + 1 > self.buckets.len() - self.buckets.len() / 4 {
            self.grow();
        }
        let idx = self.keys.len() as u32;
        self.keys.push(key);
        let b = (hash_key(key) as usize) & self.mask;
        self.next.push(self.buckets[b]);
        self.buckets[b] = idx + 1;
    }

    fn grow(&mut self) {
        let new_size = self.buckets.len() * 2;
        self.buckets.clear();
        self.buckets.resize(new_size, 0);
        self.mask = new_size - 1;
        for (i, &k) in self.keys.iter().enumerate() {
            let b = (hash_key(k) as usize) & self.mask;
            self.next[i] = self.buckets[b];
            self.buckets[b] = i as u32 + 1;
        }
    }

    /// Calls `f(entry_index)` for every entry with this key.
    // lint: hot-loop
    #[inline]
    fn for_each_match(&self, key: i64, mut f: impl FnMut(usize)) {
        let b = (hash_key(key) as usize) & self.mask;
        let mut cur = self.buckets[b];
        while cur != 0 {
            let e = (cur - 1) as usize;
            if self.keys[e] == key {
                f(e);
            }
            cur = self.next[e];
        }
    }
}

#[derive(Debug)]
struct StemInner {
    vids: Vec<u32>,
    versions: Vec<u32>,
    qsets: QuerySetColumn,
    indices: Vec<StemIndex>,
}

/// A shared, versioned, multi-index state module for one relation.
#[derive(Debug)]
pub struct Stem {
    rel: RelId,
    key_cols: Vec<ColId>,
    inner: RwLock<StemInner>,
}

impl Stem {
    /// Creates a STeM for `rel` with one hash index per key column.
    /// `words_per_set` fixes the query-set width. Indices start at the
    /// minimum bucket-table size; pass the relation's expected cardinality
    /// via [`with_capacity_hint`](Self::with_capacity_hint) to avoid
    /// build-time rehashing.
    pub fn new(rel: RelId, key_cols: Vec<ColId>, words_per_set: usize) -> Self {
        Self::with_capacity_hint(rel, key_cols, words_per_set, 0)
    }

    /// Like [`new`](Self::new), but sizes each index's bucket table for
    /// `hint` expected entries (e.g. the base relation's row count).
    pub fn with_capacity_hint(
        rel: RelId,
        key_cols: Vec<ColId>,
        words_per_set: usize,
        hint: usize,
    ) -> Self {
        let indices = key_cols.iter().map(|_| StemIndex::with_capacity(hint)).collect();
        Stem {
            rel,
            key_cols,
            inner: RwLock::new(StemInner {
                vids: Vec::new(),
                versions: Vec::new(),
                qsets: QuerySetColumn::new(words_per_set),
                indices,
            }),
        }
    }

    /// The STeM's relation.
    #[inline]
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// The indexed key columns, in index order.
    #[inline]
    pub fn key_cols(&self) -> &[ColId] {
        &self.key_cols
    }

    /// Index id of `col`, if indexed.
    pub fn index_of(&self, col: ColId) -> Option<usize> {
        self.key_cols.iter().position(|&c| c == col)
    }

    /// Inserts a vector of tuples, assigning it a fresh global version
    /// under the write latch (see module docs). `keys[k][i]` is tuple `i`'s
    /// key for index `k`. Returns the assigned version.
    pub fn insert_vector(
        &self,
        vids: &[u32],
        qsets: &QuerySetColumn,
        keys: &[Vec<i64>],
        global_version: &AtomicU32,
    ) -> u32 {
        debug_assert_eq!(keys.len(), self.key_cols.len());
        debug_assert_eq!(qsets.len(), vids.len());
        let mut inner = self.inner.write();
        let version = global_version.fetch_add(1, Ordering::Relaxed);
        inner.vids.extend_from_slice(vids);
        let new_len = inner.versions.len() + vids.len();
        inner.versions.resize(new_len, version);
        // One up-front reservation: the row-at-a-time fill below then never
        // reallocates, which both avoids repeated amortized doubling and
        // keeps `projected_insert_bytes`'s single-reserve growth model an
        // upper bound.
        inner.qsets.reserve_rows(vids.len());
        for i in 0..vids.len() {
            inner.qsets.push_row_from(qsets, i);
        }
        for (k, index_keys) in keys.iter().enumerate() {
            debug_assert_eq!(index_keys.len(), vids.len());
            let idx = &mut inner.indices[k];
            for &key in index_keys {
                idx.insert(key);
            }
        }
        version
    }

    /// Adds a hash index on `col` if absent, retroactively indexing stored
    /// entries by gathering their keys from the base column (dynamic query
    /// admission can introduce new join keys mid-run).
    pub fn ensure_index(&mut self, col: ColId, column: &roulette_storage::Column) -> usize {
        if let Some(i) = self.index_of(col) {
            return i;
        }
        let inner = self.inner.get_mut();
        let mut idx = StemIndex::with_capacity(inner.vids.len());
        for &vid in &inner.vids {
            idx.insert(column.value(vid as usize));
        }
        inner.indices.push(idx);
        self.key_cols.push(col);
        self.key_cols.len() - 1
    }

    /// Acquires the probe-side read latch once per vector.
    pub fn read(&self) -> StemReader<'_> {
        StemReader { guard: self.inner.read() }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.inner.read().vids.len()
    }

    /// Approximate resident bytes (entry block + indices). STeM footprint
    /// bounds the dataset size RouLette can process (§3), so the engine
    /// surfaces it in its statistics.
    pub fn memory_bytes(&self) -> usize {
        let inner = self.inner.read();
        let entries = inner.vids.capacity() * std::mem::size_of::<u32>()
            + inner.versions.capacity() * std::mem::size_of::<u32>()
            + inner.qsets.capacity_words() * std::mem::size_of::<u64>();
        let indices: usize = inner
            .indices
            .iter()
            .map(|i| {
                i.keys.capacity() * std::mem::size_of::<i64>()
                    + (i.buckets.capacity() + i.next.capacity()) * std::mem::size_of::<u32>()
            })
            .sum();
        entries + indices
    }

    /// Whether no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Upper bound on how much [`memory_bytes`](Self::memory_bytes) would
    /// grow if `n` more tuples were inserted now. Used by the memory
    /// governor to gate inserts *before* they overshoot the budget.
    ///
    /// Models `Vec`'s amortized doubling (`reserve` grows to
    /// `max(2·cap, len + n)`) for the entry block and index columns, and
    /// bucket-table doubling past the 3/4 load factor.
    pub fn projected_insert_bytes(&self, n: usize) -> usize {
        fn vec_growth(len: usize, cap: usize, n: usize, elem: usize) -> usize {
            if len + n <= cap { 0 } else { ((cap * 2).max(len + n) - cap) * elem }
        }
        let inner = self.inner.read();
        let len = inner.vids.len();
        let wps = inner.qsets.words_per_set();
        let mut bytes = vec_growth(len, inner.vids.capacity(), n, 4)
            + vec_growth(len, inner.versions.capacity(), n, 4)
            // The qset block is reserved once per insert (see
            // `insert_vector`), so single-step growth models it exactly —
            // in words, since that is the column's allocation unit.
            + vec_growth(len * wps, inner.qsets.capacity_words(), n * wps, 8);
        for idx in &inner.indices {
            bytes += vec_growth(idx.keys.len(), idx.keys.capacity(), n, 8)
                + vec_growth(idx.next.len(), idx.next.capacity(), n, 4);
            let mut buckets = idx.buckets.len();
            while idx.keys.len() + n > buckets - buckets / 4 {
                buckets *= 2;
            }
            bytes += buckets.saturating_sub(idx.buckets.capacity()) * 4;
        }
        bytes
    }
}

/// Reusable working state for [`StemReader::probe_batch`]: the batched
/// hash and bucket-head slices of the two-phase probe. Owned by the episode
/// scratch arena so steady-state probing never allocates.
#[derive(Debug, Default)]
pub struct ProbeScratch {
    hashes: Vec<u64>,
    heads: Vec<u32>,
}

impl ProbeScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Read access to a STeM for the duration of one probe vector.
pub struct StemReader<'a> {
    guard: RwLockReadGuard<'a, StemInner>,
}

impl StemReader<'_> {
    /// Calls `f(entry, entry_qset_words, entry_vid)` for every match of
    /// `key` in index `index_id` with version strictly older than
    /// `version` (pass [`VERSION_ALL`] to see everything).
    #[inline]
    pub fn probe(&self, index_id: usize, key: i64, version: u32, mut f: impl FnMut(&[u64], u32)) {
        let inner = &*self.guard;
        inner.indices[index_id].for_each_match(key, |e| {
            if inner.versions[e] < version {
                f(inner.qsets.row(e), inner.vids[e]);
            }
        });
    }

    /// Batched two-phase probe: for every key in `keys` (one per probe
    /// row), calls `f(probe_row, entry_qset_words, entry_vid)` for each
    /// match with version strictly older than `version`, in probe-row
    /// order then chain order — the same visit order as calling
    /// [`probe`](Self::probe) per key.
    ///
    /// Phase one hashes the whole batch and fetches every bucket head in a
    /// tight loop over the bucket table (independent loads the hardware
    /// can overlap and prefetch); only phase two walks the dependent chain
    /// links. `scratch` holds the per-batch hash/head slices.
    // lint: hot-loop
    pub fn probe_batch(
        &self,
        index_id: usize,
        keys: &[i64],
        version: u32,
        scratch: &mut ProbeScratch,
        mut f: impl FnMut(usize, &[u64], u32),
    ) {
        let inner = &*self.guard;
        let index = &inner.indices[index_id];
        let ProbeScratch { hashes, heads } = scratch;
        hashes.clear();
        hashes.extend(keys.iter().map(|&k| hash_key(k)));
        heads.clear();
        heads.extend(hashes.iter().map(|&h| index.buckets[h as usize & index.mask]));
        for (i, (&key, &head)) in keys.iter().zip(heads.iter()).enumerate() {
            let mut cur = head;
            while cur != 0 {
                let e = (cur - 1) as usize;
                if index.keys[e] == key && inner.versions[e] < version {
                    f(i, inner.qsets.row(e), inner.vids[e]);
                }
                cur = index.next[e];
            }
        }
    }

    /// Semi-join support for symmetric join pruning (§5.2): ORs into
    /// `acc` the query-sets of all matches of `key` (any version).
    #[inline]
    pub fn semijoin_mask(&self, index_id: usize, key: i64, acc: &mut [u64]) {
        let inner = &*self.guard;
        inner.indices[index_id].for_each_match(key, |e| {
            for (a, w) in acc.iter_mut().zip(inner.qsets.row(e)) {
                *a |= w;
            }
        });
    }

    /// Batched two-phase semi-join: for every key in `keys`, calls
    /// `f(probe_row, entry_qset_words)` for each match, any version. Same
    /// hash-then-heads-then-chains structure as
    /// [`probe_batch`](Self::probe_batch); since the caller ORs the entry
    /// sets, visit order is immaterial here.
    // lint: hot-loop
    pub fn semijoin_batch(
        &self,
        index_id: usize,
        keys: &[i64],
        scratch: &mut ProbeScratch,
        mut f: impl FnMut(usize, &[u64]),
    ) {
        let inner = &*self.guard;
        let index = &inner.indices[index_id];
        let ProbeScratch { hashes, heads } = scratch;
        hashes.clear();
        hashes.extend(keys.iter().map(|&k| hash_key(k)));
        heads.clear();
        heads.extend(hashes.iter().map(|&h| index.buckets[h as usize & index.mask]));
        for (i, (&key, &head)) in keys.iter().zip(heads.iter()).enumerate() {
            let mut cur = head;
            while cur != 0 {
                let e = (cur - 1) as usize;
                if index.keys[e] == key {
                    f(i, inner.qsets.row(e));
                }
                cur = index.next[e];
            }
        }
    }

    /// Number of entries visible to this reader.
    pub fn len(&self) -> usize {
        self.guard.vids.len()
    }

    /// Whether the STeM is empty.
    pub fn is_empty(&self) -> bool {
        self.guard.vids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roulette_core::QuerySet;

    fn qcol(sets: &[&QuerySet]) -> QuerySetColumn {
        let mut c = QuerySetColumn::new(sets[0].width());
        for s in sets {
            c.push(s.words());
        }
        c
    }

    #[test]
    fn insert_and_probe_round_trip() {
        let stem = Stem::new(RelId(0), vec![ColId(0)], 1);
        let global = AtomicU32::new(0);
        let q = QuerySet::full(2);
        let v = stem.insert_vector(&[10, 11, 12], &qcol(&[&q, &q, &q]), &[vec![5, 7, 5]], &global);
        assert_eq!(v, 0);
        assert_eq!(stem.len(), 3);
        let r = stem.read();
        let mut hits = Vec::new();
        r.probe(0, 5, VERSION_ALL, |_, vid| hits.push(vid));
        hits.sort_unstable();
        assert_eq!(hits, vec![10, 12]);
        let mut none = 0;
        r.probe(0, 99, VERSION_ALL, |_, _| none += 1);
        assert_eq!(none, 0);
    }

    #[test]
    fn version_filtering_enforces_atomicity() {
        let stem = Stem::new(RelId(0), vec![ColId(0)], 1);
        let global = AtomicU32::new(0);
        let q = QuerySet::full(1);
        let v0 = stem.insert_vector(&[1], &qcol(&[&q]), &[vec![42]], &global);
        let v1 = stem.insert_vector(&[2], &qcol(&[&q]), &[vec![42]], &global);
        assert!(v0 < v1);
        let r = stem.read();
        // A probe at version v1 sees only the v0 entry.
        let mut hits = Vec::new();
        r.probe(0, 42, v1, |_, vid| hits.push(vid));
        assert_eq!(hits, vec![1]);
        // A probe at version v0 sees nothing (no strictly older entries).
        hits.clear();
        r.probe(0, 42, v0, |_, vid| hits.push(vid));
        assert!(hits.is_empty());
    }

    #[test]
    fn multiple_indices_are_independent() {
        let stem = Stem::new(RelId(0), vec![ColId(0), ColId(3)], 1);
        let global = AtomicU32::new(0);
        let q = QuerySet::full(1);
        stem.insert_vector(&[7], &qcol(&[&q]), &[vec![1], vec![100]], &global);
        assert_eq!(stem.index_of(ColId(3)), Some(1));
        assert_eq!(stem.index_of(ColId(9)), None);
        let r = stem.read();
        let mut hits = 0;
        r.probe(1, 100, VERSION_ALL, |_, _| hits += 1);
        assert_eq!(hits, 1);
        hits = 0;
        r.probe(0, 100, VERSION_ALL, |_, _| hits += 1);
        assert_eq!(hits, 0);
    }

    #[test]
    fn index_growth_preserves_entries() {
        let stem = Stem::new(RelId(0), vec![ColId(0)], 1);
        let global = AtomicU32::new(0);
        let q = QuerySet::full(1);
        let n = 10_000u32;
        let vids: Vec<u32> = (0..n).collect();
        let keys: Vec<i64> = (0..n as i64).map(|i| i % 97).collect();
        let mut qc = QuerySetColumn::new(1);
        for _ in 0..n {
            qc.push(q.words());
        }
        stem.insert_vector(&vids, &qc, &[keys], &global);
        let r = stem.read();
        let mut hits = 0;
        r.probe(0, 13, VERSION_ALL, |_, _| hits += 1);
        let expected = (0..n as i64).filter(|i| i % 97 == 13).count();
        assert_eq!(hits, expected);
    }

    #[test]
    fn ensure_index_retroactively_indexes_entries() {
        let mut stem = Stem::new(RelId(0), vec![ColId(0)], 1);
        let global = AtomicU32::new(0);
        let q = QuerySet::full(1);
        // Entries reference base rows 0..4 before the second index exists.
        stem.insert_vector(&[0, 1, 2, 3], &qcol(&[&q, &q, &q, &q]), &[vec![0, 1, 2, 3]], &global);
        let base = roulette_storage::Column::Int64(vec![7, 8, 7, 8]);
        let idx = stem.ensure_index(ColId(5), &base);
        assert_eq!(idx, 1);
        // Idempotent.
        assert_eq!(stem.ensure_index(ColId(5), &base), 1);
        let r = stem.read();
        let mut hits = Vec::new();
        r.probe(1, 7, VERSION_ALL, |_, vid| hits.push(vid));
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 2]);
    }

    #[test]
    fn memory_accounting_grows_with_entries() {
        let stem = Stem::new(RelId(0), vec![ColId(0)], 2);
        let global = AtomicU32::new(0);
        let empty = stem.memory_bytes();
        let q = QuerySet::full(100);
        let n = 4096u32;
        let mut qc = QuerySetColumn::new(2);
        for _ in 0..n {
            qc.push(q.words());
        }
        let vids: Vec<u32> = (0..n).collect();
        let keys: Vec<i64> = (0..n as i64).collect();
        stem.insert_vector(&vids, &qc, &[keys], &global);
        let full = stem.memory_bytes();
        // At least vids + versions + qsets + keys worth of growth.
        assert!(full > empty + n as usize * (4 + 4 + 16 + 8) - 1, "{empty} → {full}");
    }

    #[test]
    fn projected_insert_bytes_bounds_actual_growth() {
        let stem = Stem::new(RelId(0), vec![ColId(0)], 2);
        let global = AtomicU32::new(0);
        let q = QuerySet::full(100);
        for round in 0..8 {
            let n = 1024;
            let before = stem.memory_bytes();
            let projected = stem.projected_insert_bytes(n);
            let mut qc = QuerySetColumn::new(2);
            for _ in 0..n {
                qc.push(q.words());
            }
            let vids: Vec<u32> = (0..n as u32).collect();
            let keys: Vec<i64> = (0..n as i64).collect();
            stem.insert_vector(&vids, &qc, &[keys], &global);
            let actual = stem.memory_bytes() - before;
            assert!(actual <= projected, "round {round}: actual {actual} > projected {projected}");
        }
    }

    #[test]
    fn memory_accounting_charges_qset_capacity() {
        // The governor must see reserved capacity, not just filled length:
        // a vector insert reserves the whole batch's qset block up front,
        // and that memory is resident immediately.
        let stem = Stem::new(RelId(0), vec![ColId(0)], 4);
        let global = AtomicU32::new(0);
        let q = QuerySet::full(256);
        let mut qc = QuerySetColumn::new(4);
        for _ in 0..100 {
            qc.push(q.words());
        }
        let vids: Vec<u32> = (0..100).collect();
        let keys: Vec<i64> = (0..100).collect();
        stem.insert_vector(&vids, &qc, &[keys], &global);
        let inner = stem.inner.read();
        let cap_bytes = inner.qsets.capacity_words() * 8;
        let len_bytes = inner.qsets.raw().len() * 8;
        assert!(cap_bytes >= len_bytes);
        let accounted = stem.memory_bytes();
        // memory_bytes must include the full reserved qset block: strip the
        // other components and compare against capacity, not length.
        let non_qset: usize = inner.vids.capacity() * 4
            + inner.versions.capacity() * 4
            + inner
                .indices
                .iter()
                .map(|i| i.keys.capacity() * 8 + (i.buckets.capacity() + i.next.capacity()) * 4)
                .sum::<usize>();
        assert_eq!(accounted - non_qset, cap_bytes);
    }

    #[test]
    fn capacity_hint_sizes_buckets_and_shrinks_tiny_indices() {
        // Unhinted (tiny) indices start at the minimum table...
        let tiny = Stem::new(RelId(0), vec![ColId(0), ColId(1)], 1);
        for idx in &tiny.inner.read().indices {
            assert_eq!(idx.buckets.len(), StemIndex::MIN_BUCKETS);
        }
        // ...a hinted index is sized to hold the hint at ≤3/4 load...
        let hinted = Stem::with_capacity_hint(RelId(0), vec![ColId(0)], 1, 6000);
        let buckets = hinted.inner.read().indices[0].buckets.len();
        assert!(buckets.is_power_of_two());
        assert!(6000 <= buckets - buckets / 4, "{buckets} buckets under-sized");
        assert!(buckets <= 16384, "{buckets} buckets over-sized");
        // ...and the footprint gap is visible to the memory governor.
        assert!(tiny.memory_bytes() < hinted.memory_bytes());
        // A correctly hinted build never rehashes: insert exactly `hint`
        // keys and check the table kept its initial size.
        let global = AtomicU32::new(0);
        let n = 6000u32;
        let q = QuerySet::full(1);
        let mut qc = QuerySetColumn::new(1);
        for _ in 0..n {
            qc.push(q.words());
        }
        let vids: Vec<u32> = (0..n).collect();
        let keys: Vec<i64> = (0..n as i64).collect();
        hinted.insert_vector(&vids, &qc, &[keys], &global);
        assert_eq!(hinted.inner.read().indices[0].buckets.len(), buckets);
    }

    #[test]
    fn probe_batch_matches_per_key_probes() {
        let stem = Stem::new(RelId(0), vec![ColId(0)], 2);
        let global = AtomicU32::new(0);
        let q = QuerySet::full(100);
        let n = 5000u32;
        let mut qc = QuerySetColumn::new(2);
        for _ in 0..n {
            qc.push(q.words());
        }
        let vids: Vec<u32> = (0..n).collect();
        let keys: Vec<i64> = (0..n as i64).map(|i| i % 301).collect();
        let v0 = stem.insert_vector(&vids, &qc, &[keys], &global);
        let v1 = stem.insert_vector(&[n], &qcol(&[&q]), &[vec![7]], &global);
        assert!(v0 < v1);
        let probe_keys: Vec<i64> = (0..512).map(|i| (i * 37) % 400).collect();
        let r = stem.read();
        for version in [v0, v1, VERSION_ALL] {
            let mut single: Vec<(usize, u64, u32)> = Vec::new();
            for (i, &k) in probe_keys.iter().enumerate() {
                r.probe(0, k, version, |qs, vid| single.push((i, qs[0], vid)));
            }
            let mut batched = Vec::new();
            let mut scratch = ProbeScratch::new();
            r.probe_batch(0, &probe_keys, version, &mut scratch, |i, qs, vid| {
                batched.push((i, qs[0], vid));
            });
            // Same matches in the same visit order.
            assert_eq!(single, batched, "version {version}");
        }
    }

    #[test]
    fn semijoin_mask_unions_query_sets() {
        let stem = Stem::new(RelId(0), vec![ColId(0)], 1);
        let global = AtomicU32::new(0);
        let q0 = QuerySet::singleton(roulette_core::QueryId(0), 3);
        let q2 = QuerySet::singleton(roulette_core::QueryId(2), 3);
        stem.insert_vector(&[1, 2], &qcol(&[&q0, &q2]), &[vec![5, 5]], &global);
        let r = stem.read();
        let mut mask = [0u64];
        r.semijoin_mask(0, 5, &mut mask);
        assert_eq!(mask[0], 0b101);
        mask = [0];
        r.semijoin_mask(0, 9, &mut mask);
        assert_eq!(mask[0], 0);
    }

    #[test]
    fn concurrent_insert_probe_exactly_once() {
        // Two threads symmetric-join R and S: each inserts its vector then
        // probes the other side. Every (r, s) match must be found exactly
        // once across both threads.
        use std::sync::Arc;
        let stem_r = Arc::new(Stem::new(RelId(0), vec![ColId(0)], 1));
        let stem_s = Arc::new(Stem::new(RelId(1), vec![ColId(0)], 1));
        let global = Arc::new(AtomicU32::new(0));
        let q = QuerySet::full(1);

        for trial in 0..50 {
            let found = Arc::new(std::sync::Mutex::new(Vec::new()));
            let mk = |own: Arc<Stem>, other: Arc<Stem>, vid: u32| {
                let global = Arc::clone(&global);
                let q = q.clone();
                let found = Arc::clone(&found);
                move || {
                    let key = 1000 + trial;
                    let mut qc = QuerySetColumn::new(1);
                    qc.push(q.words());
                    let v = own.insert_vector(&[vid], &qc, &[vec![key]], &global);
                    let r = other.read();
                    r.probe(0, key, v, |_, other_vid| {
                        found.lock().unwrap().push((vid, other_vid));
                    });
                }
            };
            let t1 = std::thread::spawn(mk(Arc::clone(&stem_r), Arc::clone(&stem_s), trial as u32));
            let t2 = std::thread::spawn(mk(Arc::clone(&stem_s), Arc::clone(&stem_r), trial as u32));
            t1.join().unwrap();
            t2.join().unwrap();
            let matches = found.lock().unwrap();
            assert_eq!(matches.len(), 1, "trial {trial}: {:?}", *matches);
        }
    }
}
