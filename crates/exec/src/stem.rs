//! State Modules (STeMs) — the shared join state (§2.2, §5.1).
//!
//! RouLette keeps one STeM per base relation, shared across all queries and
//! joins. Entries are *unified*: `(index-vector, vID, version, query-set)`
//! stored columnarly; each hash index materializes its join key and chains
//! entries through a self-referential `next` vector (the paper's
//! index-vector element).
//!
//! ## Insert-probe atomicity (scalable versioning, §5.2)
//!
//! Symmetric-join correctness requires each match be produced by exactly
//! one side: a probe only sees entries with a *strictly older* version.
//! Versions are assigned per inserted vector ("batch versioning" — one
//! version per 1024-tuple vector, not per tuple) from a global atomic
//! counter, *inside* the STeM's write latch. Probes hold the read latch.
//! This gives the required invariant cheaply: if `entry.version <
//! probe.version`, the entry's insert critical section completed before the
//! probe's read latch, so the entry is visible; otherwise the entry's
//! inserter holds the later version and will see the prober's tuples when
//! it probes. Latches are taken once per *vector*, so synchronization cost
//! is two atomic acquisitions per episode per STeM — the same granularity
//! the paper's wait-free scheme achieves.
//!
//! ## Sharding (DESIGN.md §15)
//!
//! A STeM may be split into `S` shards by join-key hash
//! ([`EngineConfig::stem_shards`](roulette_core::EngineConfig::stem_shards)),
//! each an independent `(entries, versions, query-sets, indices)` block
//! behind its own latch. The *routing index* is index 0 — the first key
//! column the STeM was constructed with; [`shard_for_key`] decides the
//! owning shard. Inserts touch only the shards their rows route to, each
//! insert critical section drawing its own version from the **global**
//! counter, so the strictly-older-version argument above holds pairwise
//! per shard: a probe's read latch on shard `t` still orders against every
//! insert critical section on shard `t`, and version comparisons remain
//! globally meaningful because the counter is shared. Probes on the
//! routing index visit exactly one shard per key; probes on secondary
//! indices and semi-joins visit all shards, one latch at a time. A STeM
//! constructed without key columns has no routing index: everything lives
//! in shard 0 and probes scan all shards (only shard 0 is nonempty).

use parking_lot::{RwLock, RwLockReadGuard};
use roulette_core::{ColId, QuerySetColumn, RelId};
use std::sync::atomic::{AtomicU32, Ordering};

/// Version value meaning "see everything" (semi-joins against completed
/// scans).
///
/// Versions are `u32` and one is consumed per inserted vector; a session
/// would need ~4.3 billion episodes (quadrillions of tuples at the default
/// vector size) to exhaust them, far beyond the in-memory datasets STeMs
/// can hold. Sessions are per-batch, so the counter resets naturally.
pub const VERSION_ALL: u32 = u32::MAX;

/// Hard cap on shards per STeM; mirrors
/// `EngineConfig::with_stem_shards`'s validation and bounds the fixed-size
/// per-probe partition buffers.
pub const MAX_STEM_SHARDS: usize = 64;

#[inline]
fn hash_key(key: i64) -> u64 {
    // SplitMix64 finalizer — cheap and well-distributed for integer keys.
    let mut z = key as u64;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The shard owning `key` in a STeM routed across `n_shards` shards: a
/// pure, total function of the key and the shard count. Every key maps to
/// exactly one shard, and re-sharding a relation only ever *moves* keys
/// between shards — the union over shards is invariant.
#[inline]
pub fn shard_for_key(key: i64, n_shards: usize) -> usize {
    if n_shards <= 1 { 0 } else { (hash_key(key) % n_shards as u64) as usize }
}

/// One hash index of a STeM (per join-key column).
#[derive(Debug)]
struct StemIndex {
    /// Materialized join key per entry (avoids late materialization on the
    /// probe's inner loop).
    keys: Vec<i64>,
    /// Bucket heads: entry index + 1, 0 = empty.
    buckets: Vec<u32>,
    /// Chain links: next entry index + 1, 0 = end.
    next: Vec<u32>,
    mask: usize,
}

impl StemIndex {
    /// Smallest bucket table; tiny relations no longer pay a fixed
    /// 1024-bucket tax per index.
    const MIN_BUCKETS: usize = 16;

    /// Sizes the bucket table for an expected `hint` entries at the 3/4
    /// load factor, so a correctly hinted index never rehashes during its
    /// build. `hint = 0` (unknown cardinality) starts at the minimum and
    /// grows by doubling as usual.
    fn with_capacity(hint: usize) -> Self {
        let buckets = (hint + hint / 3 + 1)
            .next_power_of_two()
            .max(Self::MIN_BUCKETS);
        StemIndex {
            keys: Vec::new(),
            buckets: vec![0; buckets],
            next: Vec::new(),
            mask: buckets - 1,
        }
    }

    // lint: hot-loop
    fn insert(&mut self, key: i64) {
        if self.keys.len() + 1 > self.buckets.len() - self.buckets.len() / 4 {
            self.grow();
        }
        let idx = self.keys.len() as u32;
        self.keys.push(key);
        let b = (hash_key(key) as usize) & self.mask;
        if let Some(slot) = self.buckets.get_mut(b) {
            self.next.push(*slot);
            *slot = idx + 1;
        }
    }

    fn grow(&mut self) {
        let new_size = self.buckets.len() * 2;
        self.buckets.clear();
        self.buckets.resize(new_size, 0);
        self.mask = new_size - 1;
        for (i, (nx, &k)) in self.next.iter_mut().zip(self.keys.iter()).enumerate() {
            let b = (hash_key(k) as usize) & self.mask;
            if let Some(slot) = self.buckets.get_mut(b) {
                *nx = *slot;
                *slot = i as u32 + 1;
            }
        }
    }

    /// Bucket-chain head for a precomputed `hash` (0 = empty chain).
    // lint: hot-loop
    #[inline]
    fn head_of_hash(&self, hash: u64) -> u32 {
        self.buckets.get(hash as usize & self.mask).copied().unwrap_or(0)
    }

    /// Walks the chain starting at `head`, calling `f(entry_index)` for
    /// every entry whose key equals `key`. A corrupt link ends the walk
    /// instead of panicking mid-episode.
    // lint: hot-loop
    #[inline]
    fn walk_chain(&self, head: u32, key: i64, mut f: impl FnMut(usize)) {
        let mut cur = head;
        while cur != 0 {
            let e = (cur - 1) as usize;
            let (Some(&k), Some(&nx)) = (self.keys.get(e), self.next.get(e)) else {
                break;
            };
            if k == key {
                f(e);
            }
            cur = nx;
        }
    }

    /// Calls `f(entry_index)` for every entry with this key.
    // lint: hot-loop
    #[inline]
    fn for_each_match(&self, key: i64, f: impl FnMut(usize)) {
        self.walk_chain(self.head_of_hash(hash_key(key)), key, f);
    }
}

#[derive(Debug)]
struct StemInner {
    vids: Vec<u32>,
    versions: Vec<u32>,
    qsets: QuerySetColumn,
    indices: Vec<StemIndex>,
}

/// Resident bytes of one shard's entry block + indices.
fn inner_memory_bytes(inner: &StemInner) -> usize {
    let entries = inner.vids.capacity() * std::mem::size_of::<u32>()
        + inner.versions.capacity() * std::mem::size_of::<u32>()
        + inner.qsets.capacity_words() * std::mem::size_of::<u64>();
    let indices: usize = inner
        .indices
        .iter()
        .map(|i| {
            i.keys.capacity() * std::mem::size_of::<i64>()
                + (i.buckets.capacity() + i.next.capacity()) * std::mem::size_of::<u32>()
        })
        .sum();
    entries + indices
}

/// Upper bound on one shard's growth if `n` more tuples landed in it.
///
/// Models `Vec`'s amortized doubling (`reserve` grows to
/// `max(2·cap, len + n)`) for the entry block and index columns, and
/// bucket-table doubling past the 3/4 load factor.
fn inner_projected_insert_bytes(inner: &StemInner, n: usize) -> usize {
    fn vec_growth(len: usize, cap: usize, n: usize, elem: usize) -> usize {
        if len + n <= cap { 0 } else { ((cap * 2).max(len + n) - cap) * elem }
    }
    let len = inner.vids.len();
    let wps = inner.qsets.words_per_set();
    let mut bytes = vec_growth(len, inner.vids.capacity(), n, 4)
        + vec_growth(len, inner.versions.capacity(), n, 4)
        // The qset block is reserved once per insert (see
        // `insert_shard`), so single-step growth models it exactly —
        // in words, since that is the column's allocation unit.
        + vec_growth(len * wps, inner.qsets.capacity_words(), n * wps, 8);
    for idx in &inner.indices {
        bytes += vec_growth(idx.keys.len(), idx.keys.capacity(), n, 8)
            + vec_growth(idx.next.len(), idx.next.capacity(), n, 4);
        let mut buckets = idx.buckets.len();
        while idx.keys.len() + n > buckets - buckets / 4 {
            buckets *= 2;
        }
        bytes += buckets.saturating_sub(idx.buckets.capacity()) * 4;
    }
    bytes
}

/// A shared, versioned, multi-index state module for one relation,
/// optionally hash-partitioned into shards (module docs).
#[derive(Debug)]
pub struct Stem {
    rel: RelId,
    key_cols: Vec<ColId>,
    /// Whether index 0 routes: fixed at construction. A STeM born without
    /// key columns keeps all entries in shard 0 forever, even if
    /// `ensure_index` later adds indices — routing by a late index would
    /// strand already-stored entries in the wrong shard.
    routed: bool,
    shards: Box<[RwLock<StemInner>]>,
}

impl Stem {
    /// Creates an unsharded STeM for `rel` with one hash index per key
    /// column. `words_per_set` fixes the query-set width. Indices start at
    /// the minimum bucket-table size; pass the relation's expected
    /// cardinality via [`with_capacity_hint`](Self::with_capacity_hint) to
    /// avoid build-time rehashing.
    pub fn new(rel: RelId, key_cols: Vec<ColId>, words_per_set: usize) -> Self {
        Self::with_capacity_hint(rel, key_cols, words_per_set, 0)
    }

    /// Like [`new`](Self::new), but sizes each index's bucket table for
    /// `hint` expected entries (e.g. the base relation's row count).
    pub fn with_capacity_hint(
        rel: RelId,
        key_cols: Vec<ColId>,
        words_per_set: usize,
        hint: usize,
    ) -> Self {
        Self::with_shards(rel, key_cols, words_per_set, hint, 1)
    }

    /// Like [`with_capacity_hint`](Self::with_capacity_hint), but splits
    /// the STeM into `n_shards` hash shards (clamped to
    /// `1..=`[`MAX_STEM_SHARDS`]); `hint` is the *total* expected
    /// cardinality, divided evenly across shards.
    pub fn with_shards(
        rel: RelId,
        key_cols: Vec<ColId>,
        words_per_set: usize,
        hint: usize,
        n_shards: usize,
    ) -> Self {
        let n_shards = n_shards.clamp(1, MAX_STEM_SHARDS);
        let shard_hint = if n_shards > 1 { hint / n_shards } else { hint };
        let shards: Box<[RwLock<StemInner>]> = (0..n_shards)
            .map(|_| {
                RwLock::new(StemInner {
                    vids: Vec::new(),
                    versions: Vec::new(),
                    qsets: QuerySetColumn::new(words_per_set),
                    indices: key_cols.iter().map(|_| StemIndex::with_capacity(shard_hint)).collect(),
                })
            })
            .collect();
        Stem { rel, routed: n_shards > 1 && !key_cols.is_empty(), key_cols, shards }
    }

    /// The STeM's relation.
    #[inline]
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// The indexed key columns, in index order.
    #[inline]
    pub fn key_cols(&self) -> &[ColId] {
        &self.key_cols
    }

    /// Index id of `col`, if indexed.
    pub fn index_of(&self, col: ColId) -> Option<usize> {
        self.key_cols.iter().position(|&c| c == col)
    }

    /// Number of hash shards.
    #[inline]
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Whether index 0 routes keys to shards (false for unsharded STeMs
    /// and STeMs constructed without key columns).
    #[inline]
    pub fn is_routed(&self) -> bool {
        self.routed
    }

    /// The shard that tuples with routing key `key` (index 0) belong to.
    #[inline]
    pub fn shard_of_key(&self, key: i64) -> usize {
        if self.routed { shard_for_key(key, self.shards.len()) } else { 0 }
    }

    /// Inserts a sub-vector of tuples that all route to `shard`, assigning
    /// it a fresh global version under that shard's write latch (module
    /// docs). `keys[k][i]` is tuple `i`'s key for index `k`. Returns the
    /// assigned version.
    ///
    /// This is the sharded hot path: concurrent workers inserting into
    /// different shards never contend. The caller partitions rows with
    /// [`shard_of_key`](Self::shard_of_key) and must probe each sub-vector
    /// with *its own* returned version for the exactly-once guarantee.
    pub fn insert_shard(
        &self,
        shard: usize,
        vids: &[u32],
        qsets: &QuerySetColumn,
        keys: &[Vec<i64>],
        global_version: &AtomicU32,
    ) -> u32 {
        debug_assert_eq!(keys.len(), self.key_cols.len());
        debug_assert_eq!(qsets.len(), vids.len());
        #[cfg(debug_assertions)]
        if self.routed {
            for &k in keys.first().map(Vec::as_slice).unwrap_or(&[]) {
                debug_assert_eq!(self.shard_of_key(k), shard, "misrouted key {k}");
            }
        } else {
            debug_assert_eq!(shard, 0, "unrouted STeM stores everything in shard 0");
        }
        let Some(lock) = self.shards.get(shard) else {
            // A shard id out of range is a caller bug (`shard_of_key` is a
            // modulus); drop the insert rather than panic mid-episode.
            debug_assert!(false, "shard {shard} out of range");
            return 0;
        };
        let mut inner = lock.write();
        let version = global_version.fetch_add(1, Ordering::Relaxed);
        inner.vids.extend_from_slice(vids);
        let new_len = inner.versions.len() + vids.len();
        inner.versions.resize(new_len, version);
        // One up-front reservation: the row-at-a-time fill below then never
        // reallocates, which both avoids repeated amortized doubling and
        // keeps `projected_insert_bytes`'s single-reserve growth model an
        // upper bound.
        inner.qsets.reserve_rows(vids.len());
        for i in 0..vids.len() {
            inner.qsets.push_row_from(qsets, i);
        }
        for (idx, index_keys) in inner.indices.iter_mut().zip(keys.iter()) {
            debug_assert_eq!(index_keys.len(), vids.len());
            for &key in index_keys {
                idx.insert(key);
            }
        }
        version
    }

    /// Inserts a vector of tuples, assigning versions under the write
    /// latch (see module docs). `keys[k][i]` is tuple `i`'s key for index
    /// `k`.
    ///
    /// On an unsharded STeM this is one critical section with one version,
    /// which it returns. On a sharded STeM the rows are partitioned by
    /// routing key and inserted per shard via
    /// [`insert_shard`](Self::insert_shard) — each sub-vector gets its own
    /// version and the *last* one is returned, which is only safe to probe
    /// with when no concurrent inserter exists (single-threaded loaders,
    /// benchmarks). The engine's episode path calls `insert_shard`
    /// directly and keeps the per-shard versions.
    pub fn insert_vector(
        &self,
        vids: &[u32],
        qsets: &QuerySetColumn,
        keys: &[Vec<i64>],
        global_version: &AtomicU32,
    ) -> u32 {
        if !self.routed {
            return self.insert_shard(0, vids, qsets, keys, global_version);
        }
        let n_shards = self.shards.len();
        let mut version = 0;
        let Some(keys0) = keys.first() else {
            return version;
        };
        // Cold-path partition (bench/test convenience): per-shard gather
        // of vids, key columns, and query-set rows.
        let mut sub_vids: Vec<u32> = Vec::new();
        let mut sub_keys: Vec<Vec<i64>> = vec![Vec::new(); keys.len()];
        for shard in 0..n_shards {
            sub_vids.clear();
            for sk in &mut sub_keys {
                sk.clear();
            }
            let mut sub_qsets = QuerySetColumn::new(qsets.words_per_set());
            for (i, &k0) in keys0.iter().enumerate() {
                if shard_for_key(k0, n_shards) != shard {
                    continue;
                }
                sub_vids.extend(vids.get(i).copied());
                for (sk, kc) in sub_keys.iter_mut().zip(keys.iter()) {
                    sk.extend(kc.get(i).copied());
                }
                sub_qsets.push_row_from(qsets, i);
            }
            if sub_vids.is_empty() {
                continue;
            }
            version = self.insert_shard(shard, &sub_vids, &sub_qsets, &sub_keys, global_version);
        }
        version
    }

    /// Adds a hash index on `col` if absent, retroactively indexing stored
    /// entries by gathering their keys from the base column (dynamic query
    /// admission can introduce new join keys mid-run).
    pub fn ensure_index(&mut self, col: ColId, column: &roulette_storage::Column) -> usize {
        if let Some(i) = self.index_of(col) {
            return i;
        }
        for shard in self.shards.iter_mut() {
            let inner = shard.get_mut();
            let mut idx = StemIndex::with_capacity(inner.vids.len());
            for &vid in &inner.vids {
                idx.insert(column.value(vid as usize));
            }
            inner.indices.push(idx);
        }
        self.key_cols.push(col);
        self.key_cols.len() - 1
    }

    /// Acquires the probe-side read latch on every shard (ascending shard
    /// order) for the duration of one probe vector. The engine's episode
    /// path uses the shard-at-a-time [`probe_batch`](Self::probe_batch)
    /// instead; a reader pins a consistent snapshot across shards for
    /// loaders, benchmarks, and tests.
    pub fn read(&self) -> StemReader<'_> {
        let mut guards = Vec::with_capacity(self.shards.len());
        for shard in self.shards.iter() {
            guards.push(shard.read()); // lint:allow(lock-order) — same-class shard latches are always acquired in ascending shard order
        }
        StemReader { guards }
    }

    /// Calls `f(entry_qset_words, entry_vid)` for every match of `key` in
    /// index `index_id` with version strictly older than `version` (pass
    /// [`VERSION_ALL`] to see everything), taking one shard read latch at
    /// a time. The routing index visits only the key's shard.
    #[inline]
    pub fn probe(&self, index_id: usize, key: i64, version: u32, mut f: impl FnMut(&[u64], u32)) {
        let visit = |inner: &StemInner, f: &mut dyn FnMut(&[u64], u32)| {
            let Some(index) = inner.indices.get(index_id) else {
                return;
            };
            index.for_each_match(key, |e| {
                if let (Some(&v), Some(&vid)) = (inner.versions.get(e), inner.vids.get(e)) {
                    if v < version {
                        f(inner.qsets.row(e), vid);
                    }
                }
            });
        };
        if self.routed && index_id == 0 {
            if let Some(shard) = self.shards.get(self.shard_of_key(key)) {
                visit(&shard.read(), &mut f);
            }
        } else {
            for shard in self.shards.iter() {
                visit(&shard.read(), &mut f);
            }
        }
    }

    /// Batched two-phase probe: for every key in `keys` (one per probe
    /// row), calls `f(probe_row, entry_qset_words, entry_vid)` for each
    /// match with version strictly older than `version`.
    ///
    /// Unsharded, the visit order is probe-row order then chain order —
    /// the same order as calling [`probe`](Self::probe) per key, and
    /// byte-identical to the pre-sharding reader path. Sharded, rows are
    /// counting-sorted by owning shard (routing index) or re-probed per
    /// shard (secondary indices), so the visit order is shard-grouped —
    /// a permutation of the unsharded matches. Only one shard's read
    /// latch is held at a time.
    ///
    /// Phase one hashes the whole batch and fetches every bucket head in a
    /// tight loop over the bucket table (independent loads the hardware
    /// can overlap and prefetch); only phase two walks the dependent chain
    /// links. `scratch` holds the per-batch hash/head/partition slices;
    /// after the call, [`ProbeScratch::shard_key_counts`] exposes how many
    /// keys each visited shard saw.
    // lint: hot-loop
    pub fn probe_batch(
        &self,
        index_id: usize,
        keys: &[i64],
        version: u32,
        scratch: &mut ProbeScratch,
        mut f: impl FnMut(usize, &[u64], u32),
    ) {
        let n_shards = self.shards.len();
        let ProbeScratch { hashes, heads, shard_of, order, counts } = scratch;
        hashes.clear();
        hashes.extend(keys.iter().map(|&k| hash_key(k)));
        if self.routed && index_id == 0 {
            let offs = partition_probe_rows(n_shards, hashes, shard_of, order, counts);
            for (s, shard) in self.shards.iter().enumerate() {
                let (Some(&start), Some(&end)) = (offs.get(s), offs.get(s + 1)) else {
                    break;
                };
                let rows = order.get(start as usize..end as usize).unwrap_or(&[]);
                if rows.is_empty() {
                    continue;
                }
                let inner = shard.read();
                let Some(index) = inner.indices.get(index_id) else {
                    continue;
                };
                for &oi in rows {
                    let i = oi as usize;
                    let (Some(&key), Some(&h)) = (keys.get(i), hashes.get(i)) else {
                        continue;
                    };
                    index.walk_chain(index.head_of_hash(h), key, |e| {
                        if let (Some(&v), Some(&vid)) = (inner.versions.get(e), inner.vids.get(e))
                        {
                            if v < version {
                                f(i, inner.qsets.row(e), vid);
                            }
                        }
                    });
                }
            }
        } else {
            counts.clear();
            for shard in self.shards.iter() {
                let inner = shard.read();
                let Some(index) = inner.indices.get(index_id) else {
                    continue;
                };
                heads.clear();
                heads.extend(hashes.iter().map(|&h| index.head_of_hash(h)));
                for (i, (&key, &head)) in keys.iter().zip(heads.iter()).enumerate() {
                    index.walk_chain(head, key, |e| {
                        if let (Some(&v), Some(&vid)) = (inner.versions.get(e), inner.vids.get(e))
                        {
                            if v < version {
                                f(i, inner.qsets.row(e), vid);
                            }
                        }
                    });
                }
                counts.push(keys.len() as u32);
            }
        }
    }

    /// Semi-join support for symmetric join pruning (§5.2): ORs into
    /// `acc` the query-sets of all matches of `key` (any version), one
    /// shard latch at a time.
    #[inline]
    pub fn semijoin_mask(&self, index_id: usize, key: i64, acc: &mut [u64]) {
        let visit = |inner: &StemInner, acc: &mut [u64]| {
            let Some(index) = inner.indices.get(index_id) else {
                return;
            };
            index.for_each_match(key, |e| {
                for (a, w) in acc.iter_mut().zip(inner.qsets.row(e)) {
                    *a |= w;
                }
            });
        };
        if self.routed && index_id == 0 {
            if let Some(shard) = self.shards.get(self.shard_of_key(key)) {
                visit(&shard.read(), acc);
            }
        } else {
            for shard in self.shards.iter() {
                visit(&shard.read(), acc);
            }
        }
    }

    /// Batched two-phase semi-join: for every key in `keys`, calls
    /// `f(probe_row, entry_qset_words)` for each match, any version. Same
    /// shard-at-a-time structure as [`probe_batch`](Self::probe_batch);
    /// since the caller ORs the entry sets, visit order is immaterial.
    // lint: hot-loop
    pub fn semijoin_batch(
        &self,
        index_id: usize,
        keys: &[i64],
        scratch: &mut ProbeScratch,
        mut f: impl FnMut(usize, &[u64]),
    ) {
        let n_shards = self.shards.len();
        let ProbeScratch { hashes, heads, shard_of, order, counts } = scratch;
        hashes.clear();
        hashes.extend(keys.iter().map(|&k| hash_key(k)));
        if self.routed && index_id == 0 {
            let offs = partition_probe_rows(n_shards, hashes, shard_of, order, counts);
            for (s, shard) in self.shards.iter().enumerate() {
                let (Some(&start), Some(&end)) = (offs.get(s), offs.get(s + 1)) else {
                    break;
                };
                let rows = order.get(start as usize..end as usize).unwrap_or(&[]);
                if rows.is_empty() {
                    continue;
                }
                let inner = shard.read();
                let Some(index) = inner.indices.get(index_id) else {
                    continue;
                };
                for &oi in rows {
                    let i = oi as usize;
                    let (Some(&key), Some(&h)) = (keys.get(i), hashes.get(i)) else {
                        continue;
                    };
                    index.walk_chain(index.head_of_hash(h), key, |e| {
                        f(i, inner.qsets.row(e));
                    });
                }
            }
        } else {
            counts.clear();
            for shard in self.shards.iter() {
                let inner = shard.read();
                let Some(index) = inner.indices.get(index_id) else {
                    continue;
                };
                heads.clear();
                heads.extend(hashes.iter().map(|&h| index.head_of_hash(h)));
                for (i, (&key, &head)) in keys.iter().zip(heads.iter()).enumerate() {
                    index.walk_chain(head, key, |e| {
                        f(i, inner.qsets.row(e));
                    });
                }
                counts.push(keys.len() as u32);
            }
        }
    }

    /// Number of stored entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().vids.len()).sum()
    }

    /// Entries stored per shard, in shard order.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.read().vids.len()).collect()
    }

    /// Approximate resident bytes (entry blocks + indices, summed over
    /// shards). STeM footprint bounds the dataset size RouLette can
    /// process (§3), so the engine surfaces it in its statistics.
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(|s| inner_memory_bytes(&s.read())).sum()
    }

    /// Per-shard resident bytes, in shard order; sums to
    /// [`memory_bytes`](Self::memory_bytes).
    pub fn shard_memory_bytes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| inner_memory_bytes(&s.read())).collect()
    }

    /// Whether no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Upper bound on how much [`memory_bytes`](Self::memory_bytes) would
    /// grow if `n` more tuples were inserted now, with no knowledge of
    /// where they route. Unsharded this is exact to the growth model;
    /// sharded it charges every shard for the full `n` (any distribution
    /// of the rows grows each shard by at most its `n`-row projection), so
    /// callers that know the routing keys should use
    /// [`projected_insert_bytes_routed`](Self::projected_insert_bytes_routed)
    /// for a tight per-shard sum.
    pub fn projected_insert_bytes(&self, n: usize) -> usize {
        self.shards.iter().map(|s| inner_projected_insert_bytes(&s.read(), n)).sum()
    }

    /// Projected growth of an `n`-row insert whose routing keys (index 0)
    /// are `keys0`: counts the rows landing in each shard and sums the
    /// per-shard growth projections, so the memory governor's eviction
    /// ladder gates on what the sharded insert will actually allocate —
    /// a single oversized shard is fully charged. Unrouted STeMs charge
    /// shard 0 for all `n` rows (and ignore `keys0`).
    pub fn projected_insert_bytes_routed(&self, n: usize, keys0: &[i64]) -> usize {
        if !self.routed {
            return self
                .shards
                .first()
                .map(|s| inner_projected_insert_bytes(&s.read(), n))
                .unwrap_or(0);
        }
        debug_assert_eq!(keys0.len(), n);
        let n_shards = self.shards.len();
        let mut per_shard = [0usize; MAX_STEM_SHARDS];
        for &k in keys0 {
            if let Some(rows) = per_shard.get_mut(shard_for_key(k, n_shards)) {
                *rows += 1;
            }
        }
        let mut bytes = 0;
        for (shard, &rows) in self.shards.iter().zip(per_shard.iter()) {
            if rows > 0 {
                bytes += inner_projected_insert_bytes(&shard.read(), rows);
            }
        }
        bytes
    }
}

/// Counting-sorts probe rows by owning shard: fills `shard_of` (row →
/// shard), `order` (row indices grouped by shard), `counts` (keys per
/// shard), and returns the per-shard offsets into `order`.
fn partition_probe_rows(
    n_shards: usize,
    hashes: &[u64],
    shard_of: &mut Vec<u8>,
    order: &mut Vec<u32>,
    counts: &mut Vec<u32>,
) -> [u32; MAX_STEM_SHARDS + 1] {
    shard_of.clear();
    shard_of.extend(hashes.iter().map(|&h| (h % n_shards as u64) as u8));
    counts.clear();
    counts.resize(n_shards, 0);
    for &s in shard_of.iter() {
        if let Some(c) = counts.get_mut(s as usize) {
            *c += 1;
        }
    }
    let mut offs = [0u32; MAX_STEM_SHARDS + 1];
    let mut acc = 0u32;
    for (o, &c) in offs.iter_mut().skip(1).zip(counts.iter()) {
        acc += c;
        *o = acc;
    }
    order.clear();
    order.resize(hashes.len(), 0);
    let mut cursor = offs;
    for (i, &s) in shard_of.iter().enumerate() {
        if let Some(c) = cursor.get_mut(s as usize) {
            if let Some(slot) = order.get_mut(*c as usize) {
                *slot = i as u32;
            }
            *c += 1;
        }
    }
    offs
}

/// Reusable working state for [`Stem::probe_batch`]: the batched hash,
/// bucket-head, and shard-partition slices of the two-phase probe. Owned
/// by the episode scratch arena so steady-state probing never allocates.
#[derive(Debug, Default)]
pub struct ProbeScratch {
    hashes: Vec<u64>,
    heads: Vec<u32>,
    shard_of: Vec<u8>,
    order: Vec<u32>,
    counts: Vec<u32>,
}

impl ProbeScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Keys-per-shard of the most recent batched probe/semi-join through
    /// this scratch: one entry per visited shard (telemetry hook). Routed
    /// probes report the partition histogram; full scans report the whole
    /// batch size once per shard.
    pub fn shard_key_counts(&self) -> &[u32] {
        &self.counts
    }
}

/// Read access to a STeM — all shards — for the duration of one probe
/// vector.
pub struct StemReader<'a> {
    guards: Vec<RwLockReadGuard<'a, StemInner>>,
}

impl StemReader<'_> {
    /// Calls `f(entry_qset_words, entry_vid)` for every match of `key` in
    /// index `index_id` with version strictly older than `version` (pass
    /// [`VERSION_ALL`] to see everything), in shard order.
    #[inline]
    pub fn probe(&self, index_id: usize, key: i64, version: u32, mut f: impl FnMut(&[u64], u32)) {
        for inner in &self.guards {
            let Some(index) = inner.indices.get(index_id) else {
                continue;
            };
            index.for_each_match(key, |e| {
                if let (Some(&v), Some(&vid)) = (inner.versions.get(e), inner.vids.get(e)) {
                    if v < version {
                        f(inner.qsets.row(e), vid);
                    }
                }
            });
        }
    }

    /// Batched two-phase probe: for every key in `keys` (one per probe
    /// row), calls `f(probe_row, entry_qset_words, entry_vid)` for each
    /// match with version strictly older than `version`, in shard order
    /// then probe-row order then chain order — unsharded, the same visit
    /// order as calling [`probe`](Self::probe) per key.
    // lint: hot-loop
    pub fn probe_batch(
        &self,
        index_id: usize,
        keys: &[i64],
        version: u32,
        scratch: &mut ProbeScratch,
        mut f: impl FnMut(usize, &[u64], u32),
    ) {
        let ProbeScratch { hashes, heads, .. } = scratch;
        hashes.clear();
        hashes.extend(keys.iter().map(|&k| hash_key(k)));
        for inner in &self.guards {
            let Some(index) = inner.indices.get(index_id) else {
                continue;
            };
            heads.clear();
            heads.extend(hashes.iter().map(|&h| index.head_of_hash(h)));
            for (i, (&key, &head)) in keys.iter().zip(heads.iter()).enumerate() {
                index.walk_chain(head, key, |e| {
                    if let (Some(&v), Some(&vid)) = (inner.versions.get(e), inner.vids.get(e)) {
                        if v < version {
                            f(i, inner.qsets.row(e), vid);
                        }
                    }
                });
            }
        }
    }

    /// Semi-join support for symmetric join pruning (§5.2): ORs into
    /// `acc` the query-sets of all matches of `key` (any version).
    #[inline]
    pub fn semijoin_mask(&self, index_id: usize, key: i64, acc: &mut [u64]) {
        for inner in &self.guards {
            let Some(index) = inner.indices.get(index_id) else {
                continue;
            };
            index.for_each_match(key, |e| {
                for (a, w) in acc.iter_mut().zip(inner.qsets.row(e)) {
                    *a |= w;
                }
            });
        }
    }

    /// Batched two-phase semi-join: for every key in `keys`, calls
    /// `f(probe_row, entry_qset_words)` for each match, any version.
    // lint: hot-loop
    pub fn semijoin_batch(
        &self,
        index_id: usize,
        keys: &[i64],
        scratch: &mut ProbeScratch,
        mut f: impl FnMut(usize, &[u64]),
    ) {
        let ProbeScratch { hashes, heads, .. } = scratch;
        hashes.clear();
        hashes.extend(keys.iter().map(|&k| hash_key(k)));
        for inner in &self.guards {
            let Some(index) = inner.indices.get(index_id) else {
                continue;
            };
            heads.clear();
            heads.extend(hashes.iter().map(|&h| index.head_of_hash(h)));
            for (i, (&key, &head)) in keys.iter().zip(heads.iter()).enumerate() {
                index.walk_chain(head, key, |e| {
                    f(i, inner.qsets.row(e));
                });
            }
        }
    }

    /// Number of entries visible to this reader.
    pub fn len(&self) -> usize {
        self.guards.iter().map(|g| g.vids.len()).sum()
    }

    /// Whether the STeM is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roulette_core::QuerySet;

    fn qcol(sets: &[&QuerySet]) -> QuerySetColumn {
        let mut c = QuerySetColumn::new(sets[0].width());
        for s in sets {
            c.push(s.words());
        }
        c
    }

    #[test]
    fn insert_and_probe_round_trip() {
        let stem = Stem::new(RelId(0), vec![ColId(0)], 1);
        let global = AtomicU32::new(0);
        let q = QuerySet::full(2);
        let v = stem.insert_vector(&[10, 11, 12], &qcol(&[&q, &q, &q]), &[vec![5, 7, 5]], &global);
        assert_eq!(v, 0);
        assert_eq!(stem.len(), 3);
        let r = stem.read();
        let mut hits = Vec::new();
        r.probe(0, 5, VERSION_ALL, |_, vid| hits.push(vid));
        hits.sort_unstable();
        assert_eq!(hits, vec![10, 12]);
        let mut none = 0;
        r.probe(0, 99, VERSION_ALL, |_, _| none += 1);
        assert_eq!(none, 0);
    }

    #[test]
    fn version_filtering_enforces_atomicity() {
        let stem = Stem::new(RelId(0), vec![ColId(0)], 1);
        let global = AtomicU32::new(0);
        let q = QuerySet::full(1);
        let v0 = stem.insert_vector(&[1], &qcol(&[&q]), &[vec![42]], &global);
        let v1 = stem.insert_vector(&[2], &qcol(&[&q]), &[vec![42]], &global);
        assert!(v0 < v1);
        let r = stem.read();
        // A probe at version v1 sees only the v0 entry.
        let mut hits = Vec::new();
        r.probe(0, 42, v1, |_, vid| hits.push(vid));
        assert_eq!(hits, vec![1]);
        // A probe at version v0 sees nothing (no strictly older entries).
        hits.clear();
        r.probe(0, 42, v0, |_, vid| hits.push(vid));
        assert!(hits.is_empty());
    }

    #[test]
    fn multiple_indices_are_independent() {
        let stem = Stem::new(RelId(0), vec![ColId(0), ColId(3)], 1);
        let global = AtomicU32::new(0);
        let q = QuerySet::full(1);
        stem.insert_vector(&[7], &qcol(&[&q]), &[vec![1], vec![100]], &global);
        assert_eq!(stem.index_of(ColId(3)), Some(1));
        assert_eq!(stem.index_of(ColId(9)), None);
        let r = stem.read();
        let mut hits = 0;
        r.probe(1, 100, VERSION_ALL, |_, _| hits += 1);
        assert_eq!(hits, 1);
        hits = 0;
        r.probe(0, 100, VERSION_ALL, |_, _| hits += 1);
        assert_eq!(hits, 0);
    }

    #[test]
    fn index_growth_preserves_entries() {
        let stem = Stem::new(RelId(0), vec![ColId(0)], 1);
        let global = AtomicU32::new(0);
        let q = QuerySet::full(1);
        let n = 10_000u32;
        let vids: Vec<u32> = (0..n).collect();
        let keys: Vec<i64> = (0..n as i64).map(|i| i % 97).collect();
        let mut qc = QuerySetColumn::new(1);
        for _ in 0..n {
            qc.push(q.words());
        }
        stem.insert_vector(&vids, &qc, &[keys], &global);
        let r = stem.read();
        let mut hits = 0;
        r.probe(0, 13, VERSION_ALL, |_, _| hits += 1);
        let expected = (0..n as i64).filter(|i| i % 97 == 13).count();
        assert_eq!(hits, expected);
    }

    #[test]
    fn ensure_index_retroactively_indexes_entries() {
        let mut stem = Stem::new(RelId(0), vec![ColId(0)], 1);
        let global = AtomicU32::new(0);
        let q = QuerySet::full(1);
        // Entries reference base rows 0..4 before the second index exists.
        stem.insert_vector(&[0, 1, 2, 3], &qcol(&[&q, &q, &q, &q]), &[vec![0, 1, 2, 3]], &global);
        let base = roulette_storage::Column::Int64(vec![7, 8, 7, 8]);
        let idx = stem.ensure_index(ColId(5), &base);
        assert_eq!(idx, 1);
        // Idempotent.
        assert_eq!(stem.ensure_index(ColId(5), &base), 1);
        let r = stem.read();
        let mut hits = Vec::new();
        r.probe(1, 7, VERSION_ALL, |_, vid| hits.push(vid));
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 2]);
    }

    #[test]
    fn memory_accounting_grows_with_entries() {
        let stem = Stem::new(RelId(0), vec![ColId(0)], 2);
        let global = AtomicU32::new(0);
        let empty = stem.memory_bytes();
        let q = QuerySet::full(100);
        let n = 4096u32;
        let mut qc = QuerySetColumn::new(2);
        for _ in 0..n {
            qc.push(q.words());
        }
        let vids: Vec<u32> = (0..n).collect();
        let keys: Vec<i64> = (0..n as i64).collect();
        stem.insert_vector(&vids, &qc, &[keys], &global);
        let full = stem.memory_bytes();
        // At least vids + versions + qsets + keys worth of growth.
        assert!(full > empty + n as usize * (4 + 4 + 16 + 8) - 1, "{empty} → {full}");
    }

    #[test]
    fn projected_insert_bytes_bounds_actual_growth() {
        let stem = Stem::new(RelId(0), vec![ColId(0)], 2);
        let global = AtomicU32::new(0);
        let q = QuerySet::full(100);
        for round in 0..8 {
            let n = 1024;
            let before = stem.memory_bytes();
            let projected = stem.projected_insert_bytes(n);
            let mut qc = QuerySetColumn::new(2);
            for _ in 0..n {
                qc.push(q.words());
            }
            let vids: Vec<u32> = (0..n as u32).collect();
            let keys: Vec<i64> = (0..n as i64).collect();
            stem.insert_vector(&vids, &qc, &[keys], &global);
            let actual = stem.memory_bytes() - before;
            assert!(actual <= projected, "round {round}: actual {actual} > projected {projected}");
        }
    }

    #[test]
    fn memory_accounting_charges_qset_capacity() {
        // The governor must see reserved capacity, not just filled length:
        // a vector insert reserves the whole batch's qset block up front,
        // and that memory is resident immediately.
        let stem = Stem::new(RelId(0), vec![ColId(0)], 4);
        let global = AtomicU32::new(0);
        let q = QuerySet::full(256);
        let mut qc = QuerySetColumn::new(4);
        for _ in 0..100 {
            qc.push(q.words());
        }
        let vids: Vec<u32> = (0..100).collect();
        let keys: Vec<i64> = (0..100).collect();
        stem.insert_vector(&vids, &qc, &[keys], &global);
        let inner = stem.shards[0].read();
        let cap_bytes = inner.qsets.capacity_words() * 8;
        let len_bytes = inner.qsets.raw().len() * 8;
        assert!(cap_bytes >= len_bytes);
        let accounted = stem.memory_bytes();
        // memory_bytes must include the full reserved qset block: strip the
        // other components and compare against capacity, not length.
        let non_qset: usize = inner.vids.capacity() * 4
            + inner.versions.capacity() * 4
            + inner
                .indices
                .iter()
                .map(|i| i.keys.capacity() * 8 + (i.buckets.capacity() + i.next.capacity()) * 4)
                .sum::<usize>();
        assert_eq!(accounted - non_qset, cap_bytes);
    }

    #[test]
    fn capacity_hint_sizes_buckets_and_shrinks_tiny_indices() {
        // Unhinted (tiny) indices start at the minimum table...
        let tiny = Stem::new(RelId(0), vec![ColId(0), ColId(1)], 1);
        for idx in &tiny.shards[0].read().indices {
            assert_eq!(idx.buckets.len(), StemIndex::MIN_BUCKETS);
        }
        // ...a hinted index is sized to hold the hint at ≤3/4 load...
        let hinted = Stem::with_capacity_hint(RelId(0), vec![ColId(0)], 1, 6000);
        let buckets = hinted.shards[0].read().indices[0].buckets.len();
        assert!(buckets.is_power_of_two());
        assert!(6000 <= buckets - buckets / 4, "{buckets} buckets under-sized");
        assert!(buckets <= 16384, "{buckets} buckets over-sized");
        // ...and the footprint gap is visible to the memory governor.
        assert!(tiny.memory_bytes() < hinted.memory_bytes());
        // A correctly hinted build never rehashes: insert exactly `hint`
        // keys and check the table kept its initial size.
        let global = AtomicU32::new(0);
        let n = 6000u32;
        let q = QuerySet::full(1);
        let mut qc = QuerySetColumn::new(1);
        for _ in 0..n {
            qc.push(q.words());
        }
        let vids: Vec<u32> = (0..n).collect();
        let keys: Vec<i64> = (0..n as i64).collect();
        hinted.insert_vector(&vids, &qc, &[keys], &global);
        assert_eq!(hinted.shards[0].read().indices[0].buckets.len(), buckets);
    }

    #[test]
    fn probe_batch_matches_per_key_probes() {
        let stem = Stem::new(RelId(0), vec![ColId(0)], 2);
        let global = AtomicU32::new(0);
        let q = QuerySet::full(100);
        let n = 5000u32;
        let mut qc = QuerySetColumn::new(2);
        for _ in 0..n {
            qc.push(q.words());
        }
        let vids: Vec<u32> = (0..n).collect();
        let keys: Vec<i64> = (0..n as i64).map(|i| i % 301).collect();
        let v0 = stem.insert_vector(&vids, &qc, &[keys], &global);
        let v1 = stem.insert_vector(&[n], &qcol(&[&q]), &[vec![7]], &global);
        assert!(v0 < v1);
        let probe_keys: Vec<i64> = (0..512).map(|i| (i * 37) % 400).collect();
        let r = stem.read();
        for version in [v0, v1, VERSION_ALL] {
            let mut single: Vec<(usize, u64, u32)> = Vec::new();
            for (i, &k) in probe_keys.iter().enumerate() {
                r.probe(0, k, version, |qs, vid| single.push((i, qs[0], vid)));
            }
            let mut batched = Vec::new();
            let mut scratch = ProbeScratch::new();
            r.probe_batch(0, &probe_keys, version, &mut scratch, |i, qs, vid| {
                batched.push((i, qs[0], vid));
            });
            // Same matches in the same visit order.
            assert_eq!(single, batched, "version {version}");
        }
    }

    #[test]
    fn semijoin_mask_unions_query_sets() {
        let stem = Stem::new(RelId(0), vec![ColId(0)], 1);
        let global = AtomicU32::new(0);
        let q0 = QuerySet::singleton(roulette_core::QueryId(0), 3);
        let q2 = QuerySet::singleton(roulette_core::QueryId(2), 3);
        stem.insert_vector(&[1, 2], &qcol(&[&q0, &q2]), &[vec![5, 5]], &global);
        let r = stem.read();
        let mut mask = [0u64];
        r.semijoin_mask(0, 5, &mut mask);
        assert_eq!(mask[0], 0b101);
        mask = [0];
        r.semijoin_mask(0, 9, &mut mask);
        assert_eq!(mask[0], 0);
    }

    #[test]
    fn concurrent_insert_probe_exactly_once() {
        // Two threads symmetric-join R and S: each inserts its vector then
        // probes the other side. Every (r, s) match must be found exactly
        // once across both threads — at every shard count.
        use std::sync::Arc;
        for shards in [1usize, 2, 8] {
            let stem_r = Arc::new(Stem::with_shards(RelId(0), vec![ColId(0)], 1, 0, shards));
            let stem_s = Arc::new(Stem::with_shards(RelId(1), vec![ColId(0)], 1, 0, shards));
            let global = Arc::new(AtomicU32::new(0));
            let q = QuerySet::full(1);

            for trial in 0..50 {
                let found = Arc::new(std::sync::Mutex::new(Vec::new()));
                let mk = |own: Arc<Stem>, other: Arc<Stem>, vid: u32| {
                    let global = Arc::clone(&global);
                    let q = q.clone();
                    let found = Arc::clone(&found);
                    move || {
                        let key = 1000 + trial;
                        let mut qc = QuerySetColumn::new(1);
                        qc.push(q.words());
                        let shard = own.shard_of_key(key);
                        let v = own.insert_shard(shard, &[vid], &qc, &[vec![key]], &global);
                        other.probe(0, key, v, |_, other_vid| {
                            found.lock().unwrap().push((vid, other_vid));
                        });
                    }
                };
                let t1 =
                    std::thread::spawn(mk(Arc::clone(&stem_r), Arc::clone(&stem_s), trial as u32));
                let t2 =
                    std::thread::spawn(mk(Arc::clone(&stem_s), Arc::clone(&stem_r), trial as u32));
                t1.join().unwrap();
                t2.join().unwrap();
                let matches = found.lock().unwrap();
                assert_eq!(matches.len(), 1, "shards {shards} trial {trial}: {:?}", *matches);
            }
        }
    }

    #[test]
    fn sharded_insert_routes_and_probes_find_everything() {
        let global = AtomicU32::new(0);
        let q = QuerySet::full(4);
        let n = 4000u32;
        let vids: Vec<u32> = (0..n).collect();
        let keys0: Vec<i64> = (0..n as i64).map(|i| i * 13 % 509).collect();
        let keys1: Vec<i64> = (0..n as i64).map(|i| i % 17).collect();
        let mut qc = QuerySetColumn::new(q.width());
        for _ in 0..n {
            qc.push(q.words());
        }
        let flat = Stem::new(RelId(0), vec![ColId(0), ColId(1)], q.width());
        flat.insert_vector(&vids, &qc, &[keys0.clone(), keys1.clone()], &global);
        for shards in [2usize, 8, 64] {
            let sharded =
                Stem::with_shards(RelId(0), vec![ColId(0), ColId(1)], q.width(), n as usize, shards);
            sharded.insert_vector(&vids, &qc, &[keys0.clone(), keys1.clone()], &global);
            assert_eq!(sharded.len(), flat.len());
            assert_eq!(sharded.shard_lens().iter().sum::<usize>(), flat.len());
            // Every entry landed in the shard its routing key owns.
            for (s, lock) in sharded.shards.iter().enumerate() {
                let inner = lock.read();
                for &k in &inner.indices[0].keys {
                    assert_eq!(sharded.shard_of_key(k), s);
                }
            }
            // Routed (index 0) and full-scan (index 1) probes both find
            // exactly the unsharded match multiset.
            let mut scratch = ProbeScratch::new();
            for index_id in [0usize, 1] {
                let probe_keys: Vec<i64> =
                    (0..777).map(|i| if index_id == 0 { i * 7 % 520 } else { i % 20 }).collect();
                let mut expect: Vec<(usize, u32)> = Vec::new();
                flat.probe_batch(index_id, &probe_keys, VERSION_ALL, &mut scratch, |i, _, vid| {
                    expect.push((i, vid));
                });
                let mut got: Vec<(usize, u32)> = Vec::new();
                sharded.probe_batch(index_id, &probe_keys, VERSION_ALL, &mut scratch, |i, _, vid| {
                    got.push((i, vid));
                });
                expect.sort_unstable();
                got.sort_unstable();
                assert_eq!(got, expect, "shards {shards} index {index_id}");
                if index_id == 0 {
                    let total: u32 = scratch.shard_key_counts().iter().sum();
                    assert_eq!(total as usize, probe_keys.len());
                }
                // Semi-join agreement too (first word of the OR mask).
                let mut flat_acc = vec![0u64; 1];
                let mut shard_acc = vec![0u64; 1];
                flat.semijoin_batch(index_id, &probe_keys, &mut scratch, |_, qs| {
                    flat_acc[0] |= qs[0];
                });
                sharded.semijoin_batch(index_id, &probe_keys, &mut scratch, |_, qs| {
                    shard_acc[0] |= qs[0];
                });
                assert_eq!(flat_acc, shard_acc, "shards {shards} index {index_id}");
            }
        }
    }

    #[test]
    fn shard_memory_sums_to_total_and_routed_projection_delegates() {
        let global = AtomicU32::new(0);
        let q = QuerySet::full(8);
        let n = 2048u32;
        let vids: Vec<u32> = (0..n).collect();
        let keys: Vec<i64> = (0..n as i64).map(|i| i * 31 % 1009).collect();
        let mut qc = QuerySetColumn::new(q.width());
        for _ in 0..n {
            qc.push(q.words());
        }
        for shards in [1usize, 2, 8] {
            let stem = Stem::with_shards(RelId(0), vec![ColId(0)], q.width(), 0, shards);
            stem.insert_vector(&vids, &qc, &[keys.clone()], &global);
            let per_shard = stem.shard_memory_bytes();
            assert_eq!(per_shard.len(), shards);
            assert_eq!(per_shard.iter().sum::<usize>(), stem.memory_bytes());
            // The routed projection with real keys never exceeds the
            // keys-unknown upper bound, and unsharded they coincide.
            let next: Vec<i64> = (0..512i64).map(|i| i * 77 % 1013).collect();
            let routed = stem.projected_insert_bytes_routed(next.len(), &next);
            let blind = stem.projected_insert_bytes(next.len());
            assert!(routed <= blind, "shards {shards}: routed {routed} > blind {blind}");
            if shards == 1 {
                assert_eq!(routed, blind);
            }
        }
    }

    #[test]
    fn oversized_single_shard_is_fully_charged() {
        // Skew every row onto one key → one shard absorbs the whole
        // insert. The routed projection must charge that shard for all n
        // rows, not n/S.
        let stem = Stem::with_shards(RelId(0), vec![ColId(0)], 2, 0, 8);
        let n = 4096usize;
        let hot = vec![77i64; n];
        let shard = stem.shard_of_key(77);
        let routed = stem.projected_insert_bytes_routed(n, &hot);
        let single = inner_projected_insert_bytes(&stem.shards[shard].read(), n);
        assert_eq!(routed, single);
        // And that is far more than an even-split estimate.
        let even: usize =
            stem.shards.iter().map(|s| inner_projected_insert_bytes(&s.read(), n / 8)).sum();
        assert!(routed > even, "skewed projection {routed} ≤ even-split {even}");
    }

    #[test]
    fn shard_routing_is_total_and_stable() {
        for &n_shards in &[1usize, 2, 3, 8, 64] {
            for k in -500i64..500 {
                let s = shard_for_key(k, n_shards);
                assert!(s < n_shards);
                assert_eq!(s, shard_for_key(k, n_shards), "routing must be deterministic");
            }
        }
    }
}
