//! Fault-isolation primitives: the session's atomic live-query set and a
//! deterministic fault injector for testing quarantine behaviour.
//!
//! RouLette's shared execution makes fault isolation unusually clean: a
//! tuple's query-set bits are independent, so evicting a query is a
//! *monotone* operation — clearing its bit everywhere it appears can only
//! remove that query's outputs, never change another query's. The engine
//! exploits this: a faulting query is removed from the [`LiveSet`], masked
//! out of subsequent episode vectors, and suppressed at output-flush time,
//! while every other query's results are bit-for-bit what they would have
//! been without the fault (history independence, §2.2).
//!
//! The [`FaultInjector`] drives the `tests/fault_injection.rs` harness: it
//! deterministically raises an error (or a panic, to exercise the
//! catch-unwind boundary) at a chosen execution site on a chosen occurrence,
//! attributed to a chosen query.

use roulette_core::{Error, QueryId, QuerySet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The session's shared set of non-quarantined queries.
///
/// Bits are set at admission and cleared (exactly once) at quarantine;
/// clearing is monotone, so readers may use relaxed snapshots — a stale
/// "live" read only delays suppression to the next masking point.
#[derive(Debug)]
pub struct LiveSet {
    words: Vec<AtomicU64>,
}

impl LiveSet {
    /// An all-dead set with room for `capacity` queries.
    pub fn new(capacity: usize) -> Self {
        let words = roulette_core::queryset::words_for(capacity.max(1));
        LiveSet { words: (0..words).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Marks `q` live (at admission).
    pub fn activate(&self, q: QueryId) {
        let (w, b) = (q.index() / 64, q.index() % 64);
        // ordering: Release pairs with the Acquire loads in `contains` /
        // `snapshot` — a reader that sees the bit also sees admission state.
        self.words[w].fetch_or(1 << b, Ordering::Release);
    }

    /// Marks `q` dead; returns `true` iff it was live (the caller that wins
    /// this race owns the quarantine side effects).
    pub fn deactivate(&self, q: QueryId) -> bool {
        let (w, b) = (q.index() / 64, q.index() % 64);
        // ordering: AcqRel — Acquire so the winner observes the writes the
        // activating thread published; Release so losers of this race see
        // the winner's claim before reading quarantine state.
        let prev = self.words[w].fetch_and(!(1u64 << b), Ordering::AcqRel);
        prev & (1 << b) != 0
    }

    /// Whether `q` is live.
    pub fn contains(&self, q: QueryId) -> bool {
        let (w, b) = (q.index() / 64, q.index() % 64);
        // ordering: Acquire pairs with `activate`'s Release fetch_or.
        (self.words[w].load(Ordering::Acquire) >> b) & 1 == 1
    }

    /// An owned snapshot of the current live set.
    pub fn snapshot(&self) -> QuerySet {
        let words: Vec<u64> =
            // ordering: Acquire pairs with `activate`'s Release fetch_or.
            self.words.iter().map(|w| w.load(Ordering::Acquire)).collect();
        QuerySet::from_words(&words)
    }
}

/// Execution sites where faults can be injected. The first five live
/// inside the episode loop; the `Wire*` sites live in the serving
/// frontend's connection handlers (torn request reads, slow result
/// consumers, mid-stream disconnects) so the whole server stack is
/// chaos-testable with the same deterministic machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// After a vector is handed out by ingestion, before any processing.
    Ingestion,
    /// Before the selection phase filters the vector.
    Filter,
    /// Before the vector is inserted into its relation's STeM.
    StemInsert,
    /// At a join-phase probe.
    StemProbe,
    /// At output routing.
    Route,
    /// Wire layer: the request line arrives truncated (torn read); the
    /// server must answer with a typed protocol violation, not hang.
    WireTornRead,
    /// Wire layer: the client drains its response slowly; exercises
    /// per-connection backpressure and deadline interaction.
    WireSlowClient,
    /// Wire layer: the connection drops mid-response-stream; the engine
    /// side must still drive the query to a terminal status.
    WireDisconnect,
}

impl FaultSite {
    /// Sites checked inside the episode loop.
    pub const ENGINE: &'static [FaultSite] = &[
        FaultSite::Ingestion,
        FaultSite::Filter,
        FaultSite::StemInsert,
        FaultSite::StemProbe,
        FaultSite::Route,
    ];

    /// Sites checked in the serving frontend's connection handlers.
    pub const WIRE: &'static [FaultSite] = &[
        FaultSite::WireTornRead,
        FaultSite::WireSlowClient,
        FaultSite::WireDisconnect,
    ];

    /// Every injectable site. Tests and the loadgen `--chaos` mode
    /// enumerate this slice so they cannot drift from the real set.
    pub const ALL: &'static [FaultSite] = &[
        FaultSite::Ingestion,
        FaultSite::Filter,
        FaultSite::StemInsert,
        FaultSite::StemProbe,
        FaultSite::Route,
        FaultSite::WireTornRead,
        FaultSite::WireSlowClient,
        FaultSite::WireDisconnect,
    ];

    /// The site's stable kebab-case name (the inverse of
    /// [`FaultSite::parse`]).
    pub fn name(&self) -> &'static str {
        match self {
            FaultSite::Ingestion => "ingestion",
            FaultSite::Filter => "filter",
            FaultSite::StemInsert => "stem-insert",
            FaultSite::StemProbe => "stem-probe",
            FaultSite::Route => "route",
            FaultSite::WireTornRead => "wire-torn-read",
            FaultSite::WireSlowClient => "wire-slow-client",
            FaultSite::WireDisconnect => "wire-disconnect",
        }
    }

    /// Resolves a site from its stable name.
    pub fn parse(name: &str) -> Option<FaultSite> {
        FaultSite::ALL.iter().copied().find(|s| s.name() == name)
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What an injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Raise a [`Error::QueryFault`] attributed to the target query.
    Error,
    /// Panic, exercising the engine's catch-unwind isolation boundary.
    Panic,
}

#[derive(Debug)]
struct FaultSpec {
    site: FaultSite,
    /// Target query; `None` targets the first query present at the site.
    query: Option<QueryId>,
    /// Number of eligible occurrences to let pass before firing.
    after: u64,
    kind: FaultKind,
    seen: AtomicU64,
    fired: AtomicBool,
}

/// SplitMix64 stream; self-contained so seeded fault plans never depend on
/// the workspace RNG's stream.
fn splitmix(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed;
    move || {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A deterministic fault injector.
///
/// Each configured fault fires exactly once: at the `(after + 1)`-th check
/// of its site where its target query is present. Checks at other sites, or
/// with the target absent, do not advance the occurrence counter, so a
/// fault's firing point is a deterministic function of the execution
/// schedule (single-worker runs are fully reproducible).
#[derive(Debug, Default)]
pub struct FaultInjector {
    specs: Vec<FaultSpec>,
}

impl FaultInjector {
    /// An injector with no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an error fault at `site`, attributed to `query` (or the first
    /// query present when `None`), firing after `after` eligible checks.
    pub fn fail_at(mut self, site: FaultSite, query: Option<QueryId>, after: u64) -> Self {
        self.specs.push(FaultSpec {
            site,
            query,
            after,
            kind: FaultKind::Error,
            seen: AtomicU64::new(0),
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Adds a panic fault (see [`FaultKind::Panic`]).
    pub fn panic_at(mut self, site: FaultSite, after: u64) -> Self {
        self.specs.push(FaultSpec {
            site,
            query: None,
            after,
            kind: FaultKind::Panic,
            seen: AtomicU64::new(0),
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Derives a small pseudo-random fault plan from `seed`: one error
    /// fault at a seed-chosen engine site/occurrence against a seed-chosen
    /// query. Same seed, same plan — the property harness sweeps seeds.
    pub fn seeded(seed: u64, n_queries: usize) -> Self {
        let mut next = splitmix(seed);
        let site = FaultSite::ENGINE
            .get((next() % FaultSite::ENGINE.len() as u64) as usize)
            .copied()
            .unwrap_or(FaultSite::Ingestion);
        let query = QueryId((next() % n_queries.max(1) as u64) as u32);
        let after = next() % 4;
        FaultInjector::new().fail_at(site, Some(query), after)
    }

    /// Derives a deterministic wire-layer chaos plan from `seed`: one
    /// error fault per [`FaultSite::WIRE`] site, each firing after a
    /// seed-chosen number of eligible checks (0–3). Every injected wire
    /// fault fires exactly once, so a chaos run's failure count is bounded
    /// by the plan, not the request volume.
    pub fn seeded_wire(seed: u64) -> Self {
        let mut next = splitmix(seed);
        let mut inj = FaultInjector::new();
        for &site in FaultSite::WIRE {
            inj = inj.fail_at(site, None, next() % 4);
        }
        inj
    }

    /// Checks for a fault at `site` among `present` queries. Returns the
    /// fault to apply for error faults; panics for panic faults.
    ///
    /// The caller is expected to quarantine the returned query.
    pub fn check(&self, site: FaultSite, present: &QuerySet) -> Option<(QueryId, Error)> {
        for spec in &self.specs {
            // ordering: Relaxed pre-check only skips work; the authoritative
            // claim is the AcqRel swap below.
            if spec.site != site || spec.fired.load(Ordering::Relaxed) {
                continue;
            }
            let target = match spec.query {
                Some(q) if present.contains(q) => q,
                Some(_) => continue,
                None => match present.first() {
                    Some(q) => q,
                    None => continue,
                },
            };
            // ordering: AcqRel so occurrence numbers totally order across
            // workers racing on the same fault spec.
            let occurrence = spec.seen.fetch_add(1, Ordering::AcqRel);
            if occurrence < spec.after {
                continue;
            }
            // ordering: AcqRel — the winner of this swap owns the firing and
            // its quarantine side effects; losers acquire the winner's claim.
            if spec.fired.swap(true, Ordering::AcqRel) {
                continue; // another worker claimed this firing
            }
            match spec.kind {
                FaultKind::Panic => panic!("injected panic at {site}"),
                FaultKind::Error => {
                    return Some((
                        target,
                        Error::QueryFault {
                            query: target,
                            message: format!("injected fault at {site}"),
                        },
                    ));
                }
            }
        }
        None
    }

    /// Whether every configured fault has fired.
    pub fn exhausted(&self) -> bool {
        // ordering: monitoring read; a stale `false` only delays shutdown
        // of the fault plan by one poll.
        self.specs.iter().all(|s| s.fired.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qs(ids: &[u32]) -> QuerySet {
        let mut s = QuerySet::empty(8);
        for &i in ids {
            s.insert(QueryId(i));
        }
        s
    }

    #[test]
    fn live_set_activate_deactivate() {
        let live = LiveSet::new(70);
        live.activate(QueryId(0));
        live.activate(QueryId(69));
        assert!(live.contains(QueryId(0)) && live.contains(QueryId(69)));
        assert!(!live.contains(QueryId(1)));
        assert!(live.deactivate(QueryId(69)));
        assert!(!live.deactivate(QueryId(69)), "second deactivate loses the race");
        let snap = live.snapshot();
        assert!(snap.contains(QueryId(0)) && !snap.contains(QueryId(69)));
    }

    #[test]
    fn fault_fires_once_at_configured_occurrence() {
        let inj = FaultInjector::new().fail_at(FaultSite::Filter, Some(QueryId(1)), 2);
        let present = qs(&[0, 1]);
        assert!(inj.check(FaultSite::Filter, &present).is_none());
        assert!(inj.check(FaultSite::StemInsert, &present).is_none(), "other site");
        assert!(inj.check(FaultSite::Filter, &present).is_none());
        let (q, e) = inj.check(FaultSite::Filter, &present).unwrap();
        assert_eq!(q, QueryId(1));
        assert_eq!(e.query(), Some(QueryId(1)));
        assert!(inj.check(FaultSite::Filter, &present).is_none(), "fires once");
        assert!(inj.exhausted());
    }

    #[test]
    fn absent_target_does_not_consume_occurrences() {
        let inj = FaultInjector::new().fail_at(FaultSite::Route, Some(QueryId(3)), 0);
        assert!(inj.check(FaultSite::Route, &qs(&[0, 1])).is_none());
        assert!(inj.check(FaultSite::Route, &qs(&[0, 1])).is_none());
        assert!(inj.check(FaultSite::Route, &qs(&[3])).is_some());
    }

    #[test]
    fn wildcard_target_picks_first_present() {
        let inj = FaultInjector::new().fail_at(FaultSite::Ingestion, None, 0);
        let (q, _) = inj.check(FaultSite::Ingestion, &qs(&[2, 5])).unwrap();
        assert_eq!(q, QueryId(2));
    }

    #[test]
    #[should_panic(expected = "injected panic")]
    fn panic_fault_panics() {
        let inj = FaultInjector::new().panic_at(FaultSite::StemProbe, 0);
        let _ = inj.check(FaultSite::StemProbe, &qs(&[0]));
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        for seed in 0..16 {
            let a = FaultInjector::seeded(seed, 4);
            let b = FaultInjector::seeded(seed, 4);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn site_slices_partition_all() {
        assert_eq!(
            FaultSite::ALL.len(),
            FaultSite::ENGINE.len() + FaultSite::WIRE.len()
        );
        for s in FaultSite::ENGINE {
            assert!(FaultSite::ALL.contains(s) && !FaultSite::WIRE.contains(s));
        }
        for s in FaultSite::WIRE {
            assert!(FaultSite::ALL.contains(s) && !FaultSite::ENGINE.contains(s));
        }
    }

    #[test]
    fn site_names_round_trip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &s in FaultSite::ALL {
            assert_eq!(FaultSite::parse(s.name()), Some(s));
            assert_eq!(s.to_string(), s.name());
            assert!(seen.insert(s.name()), "duplicate name {}", s.name());
        }
        assert_eq!(FaultSite::parse("no-such-site"), None);
    }

    #[test]
    fn seeded_wire_plans_are_deterministic_and_cover_all_wire_sites() {
        for seed in 0..16 {
            let a = FaultInjector::seeded_wire(seed);
            let b = FaultInjector::seeded_wire(seed);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
            // Each wire site fires exactly once, in plan order, regardless
            // of which queries are present at the wire.
            let present = qs(&[0]);
            let mut fired = Vec::new();
            for round in 0..8 {
                for &site in FaultSite::WIRE {
                    if a.check(site, &present).is_some() {
                        fired.push((site, round));
                    }
                }
            }
            let sites: Vec<FaultSite> = fired.iter().map(|&(s, _)| s).collect();
            assert_eq!(sites.len(), FaultSite::WIRE.len(), "seed {seed}: {fired:?}");
            for &site in FaultSite::WIRE {
                assert!(sites.contains(&site), "seed {seed} missing {site}");
            }
            assert!(a.exhausted());
            // Engine sites are untouched by a wire plan.
            assert!(a.check(FaultSite::Ingestion, &present).is_none());
        }
    }

    #[test]
    fn wire_faults_do_not_fire_at_engine_sites() {
        let inj = FaultInjector::seeded_wire(3);
        let present = qs(&[0, 1]);
        for &site in FaultSite::ENGINE {
            assert!(inj.check(site, &present).is_none());
        }
        assert!(!inj.exhausted());
    }
}
