//! The RouLette engine (§3).
//!
//! [`RouletteEngine`] is the public entry point: it executes batches of
//! SPJ queries over a catalog through episode-based adaptive processing.
//! [`Session`] exposes the engine's dynamic side — queries can be admitted
//! while processing is under way (online scheduling, §6.2's dynamic
//! workloads), sharing the circular scans and STeM state of ongoing
//! queries.

use crate::episode::{run_episode, EngineShared, FilterPair, SharedStats, TraceEntry};
use crate::fault::{FaultInjector, LiveSet};
use crate::filter::{group_queries, GroupedFilter, PlainFilter};
use crate::kernels::Kernels;
use crate::output::{Outputs, QueryResult};
use crate::profile::Profile;
use crate::pruning::rank_relations;
use crate::scratch::EpisodeScratch;
use crate::stem::Stem;
use parking_lot::Mutex;
use roulette_core::{
    ColId, CostModel, EngineConfig, Error, QueryId, QuerySet, RelId, RelSet, Result,
};
use roulette_policy::{ExecutionLog, GreedyPolicy, Policy, QLearningPolicy};
use roulette_query::{QueryBatch, SpjQuery};
use roulette_storage::{Catalog, IngestVector, Ingestion};
use roulette_telemetry::{EventKind, Recorder};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// Vectors a worker prefetches from the shared ingestion state per refill
/// of its morsel queue. Batching amortizes the ingestion latch (one
/// acquisition per `MORSEL` episodes instead of one per episode) while
/// keeping queues shallow enough that work stealing has something to take
/// and completion information stays fresh.
const MORSEL: usize = 4;

/// Aggregate execution statistics of one batch/session.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Episodes executed.
    pub episodes: u64,
    /// Intermediate join tuples (Σ probe outputs).
    pub join_tuples: u64,
    /// Tuples inserted into STeMs.
    pub inserted_tuples: u64,
    /// Tuples dropped by symmetric join pruning.
    pub pruned_tuples: u64,
    /// vID cells materialized by probe outputs.
    pub materialized_cells: u64,
    /// Nanoseconds in selection-phase filtering (incl. pruning).
    pub filter_ns: u64,
    /// Nanoseconds in STeM inserts.
    pub build_ns: u64,
    /// Nanoseconds in STeM probes.
    pub probe_ns: u64,
    /// Nanoseconds in output routing.
    pub route_ns: u64,
    /// Approximate resident STeM bytes (the in-memory state that bounds
    /// the processable dataset size, §3).
    pub stem_bytes: u64,
    /// Queries evicted from the shared plan (faults, panics, memory
    /// pressure).
    pub quarantined: u64,
    /// Episodes whose join phase was aborted and replanned with the greedy
    /// fallback by the watchdog.
    pub watchdog_trips: u64,
    /// Memory-pressure level under the budget ladder, as a raw value of
    /// [`PressureLevel`]: 0 = below 80% of the budget, 1 = pruning forced
    /// on (≥80%), 2 = admissions refused (≥90%), 3 = the last episode had
    /// to evict queries to fit the budget. Always 0 without a budget; use
    /// [`EngineStats::pressure_level`] for the typed view.
    pub memory_pressure: u8,
}

impl EngineStats {
    /// The typed memory-pressure ladder level (see [`PressureLevel`]).
    pub fn pressure_level(&self) -> PressureLevel {
        PressureLevel::from_raw(self.memory_pressure)
    }
}

/// The memory-budget degradation ladder's levels, in escalation order.
/// Levels 0–2 derive purely from STeM usage vs the budget
/// ([`pressure_from_usage`]); level 3 is set by an episode that had to
/// evict queries so its insert would fit, and persists until the next
/// episode re-derives the level from usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PressureLevel {
    /// Usage below 80% of the budget: no intervention.
    Nominal,
    /// Usage ≥ 80%: symmetric join pruning is forced on.
    ForcedPruning,
    /// Usage ≥ 90%: new admissions are refused.
    AdmissionsPaused,
    /// The projected insert overshot the budget: heaviest queries evicted.
    Evicting,
}

impl PressureLevel {
    /// Decodes the raw `u8` stored in [`EngineStats::memory_pressure`];
    /// out-of-range values clamp to [`PressureLevel::Evicting`].
    pub fn from_raw(v: u8) -> PressureLevel {
        match v {
            0 => PressureLevel::Nominal,
            1 => PressureLevel::ForcedPruning,
            2 => PressureLevel::AdmissionsPaused,
            _ => PressureLevel::Evicting,
        }
    }
}

/// The usage-derived rungs of the degradation ladder: 0 below 80% of
/// `budget`, 1 at ≥80% (pruning forced on), 2 at ≥90% (admissions paused).
/// Eviction (level 3) is not usage-derived — an episode reports it when it
/// must evict to fit — so this never returns it. Both the admission check
/// and the episode governor derive their level from this single function.
pub fn pressure_from_usage(used: usize, budget: usize) -> u8 {
    if used * 10 >= budget * 9 {
        2
    } else if used * 5 >= budget * 4 {
        1
    } else {
        0
    }
}

/// The result of executing a batch.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-query results, in admission order.
    pub per_query: Vec<QueryResult>,
    /// Engine statistics.
    pub stats: EngineStats,
    /// Fig. 16 trace points (empty unless tracing was enabled).
    pub trace: Vec<TraceEntry>,
}

/// The multi-query execution engine.
pub struct RouletteEngine<'a> {
    catalog: &'a Catalog,
    config: EngineConfig,
    recorder: Option<Arc<dyn Recorder>>,
}

impl<'a> RouletteEngine<'a> {
    /// Creates an engine over `catalog`.
    pub fn new(catalog: &'a Catalog, config: EngineConfig) -> Self {
        RouletteEngine { catalog, config, recorder: None }
    }

    /// Attaches a telemetry recorder; sessions opened afterwards report
    /// into it. With no recorder, instrumentation costs one branch per
    /// site.
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = Some(recorder);
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Executes `queries` as one batch with the default learned policy and
    /// returns per-query results.
    pub fn execute_batch(&self, queries: &[SpjQuery]) -> Result<BatchOutcome> {
        let policy = Box::new(QLearningPolicy::new(CostModel::default(), &self.config));
        self.execute_batch_with_policy(queries, policy)
    }

    /// Executes `queries` as one batch under a caller-supplied policy.
    pub fn execute_batch_with_policy(
        &self,
        queries: &[SpjQuery],
        policy: Box<dyn Policy>,
    ) -> Result<BatchOutcome> {
        let mut session = self.session_with_policy(queries.len().max(1), policy);
        for q in queries {
            session.admit(q.clone())?;
        }
        session.run();
        Ok(session.finish())
    }

    /// Opens a dynamic session that can admit up to `capacity` queries.
    pub fn session(&self, capacity: usize) -> Session<'a> {
        let policy = Box::new(QLearningPolicy::new(CostModel::default(), &self.config));
        self.session_with_policy(capacity, policy)
    }

    /// Opens a dynamic session with a caller-supplied policy.
    pub fn session_with_policy(&self, capacity: usize, policy: Box<dyn Policy>) -> Session<'a> {
        let capacity = capacity.max(1);
        Session {
            catalog: self.catalog,
            config: self.config.clone(),
            batch: QueryBatch::new(self.catalog.len(), capacity),
            ingestion: Mutex::new(Ingestion::new(
                &self
                    .catalog
                    .relations()
                    .map(|(_, r)| r.rows())
                    .collect::<Vec<_>>(),
                self.config.vector_size,
                capacity,
            )),
            stems: (0..self.catalog.len()).map(|_| None).collect(),
            work: (0..self.config.workers.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            scan_done: (0..self.catalog.len()).map(|_| AtomicBool::new(false)).collect(),
            scan_epoch: AtomicU64::new(0),
            filters: Vec::new(),
            filter_pred_counts: Vec::new(),
            sel_owners: Vec::new(),
            full_set: QuerySet::full(capacity),
            proj_rels: Vec::new(),
            projections: Vec::new(),
            outputs: Outputs::new(capacity, false),
            profile: Profile::new(),
            stats: SharedStats::default(),
            global_version: AtomicU32::new(1),
            policy: Mutex::new(policy),
            cost: CostModel::default(),
            pending_episodes: (0..self.catalog.len()).map(|_| AtomicU64::new(0)).collect(),
            trace: false,
            traces: Mutex::new(Vec::new()),
            live: LiveSet::new(capacity),
            fallback: Mutex::new(GreedyPolicy::with_defaults(self.config.seed)),
            injector: None,
            pressure: AtomicU8::new(0),
            closed: false,
            recorder: self.recorder.clone(),
            telemetry_done: (0..capacity).map(|_| AtomicBool::new(false)).collect(),
            scratch: Mutex::new(EpisodeScratch::new()),
        }
    }
}

/// A running engine instance with dynamic query admission.
pub struct Session<'a> {
    catalog: &'a Catalog,
    config: EngineConfig,
    batch: QueryBatch,
    ingestion: Mutex<Ingestion>,
    stems: Vec<Option<Stem>>,
    /// Per-worker morsel queues. A worker pops its own queue from the
    /// front (preserving ingestion order), refills it with up to [`MORSEL`]
    /// vectors under one ingestion latch when empty, and steals from the
    /// back of a sibling's queue when ingestion is drained — so a straggler
    /// stuck in a long episode no longer idles the pool behind it.
    /// Lock class `Session.work`, ordered after `Session.ingestion` (a
    /// refill pushes under both); never nested with another worker's queue.
    work: Vec<Mutex<VecDeque<IngestVector>>>,
    /// Lock-free mirror of `Ingestion::scan_complete`, synced under the
    /// ingestion latch wherever the schedule changes (refill, admission,
    /// quarantine). Lets [`complete_now`](Self::complete_now) derive the
    /// completeness set per episode without touching the ingestion latch.
    scan_done: Vec<AtomicBool>,
    /// Seqlock epoch over `scan_done`: odd while an admission is mutating
    /// the scan schedule. Readers retry when the epoch is odd or moved, so
    /// they never observe a half-applied admission. Quarantine's
    /// `unschedule` needs no bump: it can only retire readers, and a flag
    /// flipping false→true remains truthful at any read point (no reader
    /// of that scan remains, so no insert carrying an executing vector's
    /// query bits can still arrive).
    scan_epoch: AtomicU64,
    filters: Vec<FilterPair>,
    filter_pred_counts: Vec<usize>,
    sel_owners: Vec<QuerySet>,
    full_set: QuerySet,
    proj_rels: Vec<RelSet>,
    projections: Vec<Vec<(RelId, ColId)>>,
    outputs: Outputs,
    profile: Profile,
    stats: SharedStats,
    global_version: AtomicU32,
    policy: Mutex<Box<dyn Policy>>,
    cost: CostModel,
    /// Per-relation count of handed-out but not-yet-finished episodes.
    /// Pruning may only treat a relation's STeM as final when its scan is
    /// complete AND no episode is still inserting into it (a racing worker
    /// could otherwise publish matches after a semi-join already pruned).
    pending_episodes: Vec<AtomicU64>,
    trace: bool,
    traces: Mutex<Vec<TraceEntry>>,
    /// Non-quarantined queries; bits set at admission, cleared at eviction.
    live: LiveSet,
    /// Greedy fallback policy the episode watchdog replans with.
    fallback: Mutex<GreedyPolicy>,
    /// Deterministic fault injector (testing only).
    injector: Option<FaultInjector>,
    /// Memory-pressure level under the budget ladder (see `EngineStats`).
    pressure: AtomicU8,
    /// Whether the session refuses further admissions.
    closed: bool,
    /// Telemetry sink; `None` keeps every instrumentation site a single
    /// branch.
    recorder: Option<Arc<dyn Recorder>>,
    /// Per-query "terminal event emitted" flags, so each query produces at
    /// most one completion/quarantine marker in the telemetry stream.
    telemetry_done: Vec<AtomicBool>,
    /// The [`step`](Self::step)-driven execution path's episode arena.
    /// Worker threads each own a local arena instead; this one exists so
    /// single-stepping reuses buffers across calls too.
    scratch: Mutex<EpisodeScratch>,
}

impl<'a> Session<'a> {
    /// Enables collecting projected output rows (tests / small workloads).
    /// Must be called before any output is produced.
    pub fn collect_rows(&mut self) -> Result<()> {
        if self.stats.episodes.load(Ordering::Relaxed) != 0 {
            return Err(Error::InvalidQuery(
                "collect_rows must be enabled before execution starts".into(),
            ));
        }
        self.outputs = Outputs::new(self.batch.capacity(), true);
        Ok(())
    }

    /// Installs a deterministic fault injector (testing). Faults fire
    /// during subsequent episodes; see [`FaultInjector`].
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// Attaches a telemetry recorder to this session (overrides whatever
    /// the engine was configured with).
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = Some(recorder);
    }

    /// The installed fault injector, if any (lets tests assert all
    /// configured faults fired).
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Closes the session to further admissions; already-admitted queries
    /// run to completion. [`admit`](Self::admit) afterwards is an error.
    pub fn close(&mut self) {
        self.closed = true;
    }

    /// Evicts `q` from the shared plan: future vectors stop carrying its
    /// bit, its circular scans are descheduled, staged outputs stop being
    /// committed for it, and its result is marked
    /// [`Quarantined`](crate::output::CompletionStatus::Quarantined) with
    /// the attributed error. Idempotent — the first eviction wins; every
    /// other admitted query's results are unchanged (history independence).
    pub fn quarantine(&self, q: QueryId, err: Error) {
        if !self.live.deactivate(q) {
            return;
        }
        if let Some(rec) = &self.recorder {
            // The eviction is this query's terminal telemetry event; mark
            // it done so scan retirement never also reports a completion.
            let first = self
                .telemetry_done
                .get(q.index())
                // ordering: dedup flag only — at most one eviction event per
                // query; no data is published under this flag.
                .is_some_and(|f| !f.swap(true, Ordering::Relaxed));
            if first {
                // Deadline evictions are a latency-policy decision, not a
                // fault; emit the dedicated event so overload dashboards
                // can tell the two apart.
                let kind = if matches!(err, Error::DeadlineExceeded { .. }) {
                    EventKind::DeadlineExceeded { query: q.0, reason: err.to_string() }
                } else {
                    EventKind::Quarantine { query: q.0, reason: err.to_string() }
                };
                rec.record_event(self.stats.episodes.load(Ordering::Relaxed), kind);
            }
        }
        self.outputs.quarantine(q, err);
        {
            let mut ing = self.ingestion.lock();
            ing.unschedule(q);
            // Descheduling the query may have retired a scan's last
            // remaining reader; republish the completion flags.
            self.sync_scan_flags(&ing);
        }
        self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// The error a quarantined query was evicted with (None for healthy
    /// queries).
    pub fn query_error(&self, q: QueryId) -> Option<Error> {
        self.outputs.error(q)
    }

    /// Enables Fig. 16 cost tracing.
    pub fn enable_trace(&mut self) {
        self.trace = true;
    }

    /// Overrides the cost model used for learning rewards and traces.
    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.cost = cost;
    }

    /// Admits a query: schedules its circular scans, extends the global
    /// join/predicate structures, and (re)builds the affected filters and
    /// STeM indices. Processing may already be under way.
    pub fn admit(&mut self, q: SpjQuery) -> Result<QueryId> {
        if self.closed {
            return Err(Error::Capacity("session is closed to new admissions".into()));
        }
        if let Some(budget) = self.config.memory_budget_bytes {
            // Second rung of the degradation ladder: at ≥90% of the budget
            // the session stops taking on new work rather than letting a
            // new query push resident queries into eviction.
            let used: usize = self.stems.iter().flatten().map(|s| s.memory_bytes()).sum();
            if pressure_from_usage(used, budget) >= 2 {
                return Err(Error::ResourceExhausted(format!(
                    "STeM memory {used} of budget {budget} bytes; admissions paused"
                )));
            }
        }
        q.validate(self.catalog)?;
        let id = self.batch.add(q)?;
        self.live.activate(id);
        if let Some(rec) = &self.recorder {
            rec.record_event(
                self.stats.episodes.load(Ordering::Relaxed),
                EventKind::Admission { query: id.0 },
            );
        }
        let query = self.batch.query(id).clone();

        // STeMs + indices for the query's relations and join keys.
        for rel in query.relations.iter() {
            let mut key_cols: Vec<ColId> = Vec::new();
            for &eid in self.batch.edges_of(rel) {
                let edge = self.batch.edge(eid);
                let (this_side, _) = edge.oriented_from(rel).expect("edge is incident");
                if !key_cols.contains(&this_side.1) {
                    key_cols.push(this_side.1);
                }
            }
            let wps = self.full_set.width();
            // The relation's cardinality bounds its STeM population, so the
            // hash indices are sized for it up front instead of growing
            // through O(log n) rehashes during ingestion. Under a memory
            // budget the hint is capped so admission-time footprint stays a
            // sliver of the budget; the tables then grow by doubling under
            // the governor's watch, exactly as before pre-sizing existed.
            let rows = self.catalog.relation(rel).rows();
            let hint = match self.config.memory_budget_bytes {
                Some(budget) => rows.min(budget / 256),
                None => rows,
            };
            match &mut self.stems[rel.index()] {
                slot @ None => {
                    *slot = Some(Stem::with_shards(
                        rel,
                        key_cols,
                        wps,
                        hint,
                        self.config.stem_shards,
                    ))
                }
                Some(stem) => {
                    for col in key_cols {
                        stem.ensure_index(col, self.catalog.relation(rel).column(col));
                    }
                }
            }
        }

        // (Re)build filters for new or extended selection groups.
        let capacity = self.batch.capacity();
        for (gid, group) in self.batch.selection_groups().iter().enumerate() {
            let fresh = gid >= self.filters.len();
            if fresh || self.filter_pred_counts[gid] != group.preds.len() {
                let pair = FilterPair {
                    grouped: GroupedFilter::build(&group.preds, capacity),
                    plain: PlainFilter::new(&group.preds, capacity),
                };
                let owners = group_queries(&group.preds, capacity);
                if fresh {
                    self.filters.push(pair);
                    self.filter_pred_counts.push(group.preds.len());
                    self.sel_owners.push(owners);
                } else {
                    self.filters[gid] = pair;
                    self.filter_pred_counts[gid] = group.preds.len();
                    self.sel_owners[gid] = owners;
                }
            }
        }

        // Projection metadata.
        let mut prels = RelSet::EMPTY;
        for &(rel, _) in &query.projections {
            prels.insert(rel);
        }
        self.proj_rels.push(prels);
        self.projections.push(query.projections.clone());

        // Schedule scans; refresh the pruning-driven initiation ranks.
        {
            let mut ing = self.ingestion.lock();
            // ordering: SeqCst seqlock write — the odd epoch marks the
            // schedule mutation in flight so complete_now's readers retry
            // instead of observing a half-applied admission.
            self.scan_epoch.fetch_add(1, Ordering::SeqCst);
            ing.schedule(id, query.relations);
            if self.config.pruning {
                ing.set_ranks(&rank_relations(&self.batch, self.catalog));
            }
            self.sync_scan_flags(&ing);
            // ordering: SeqCst seqlock write — even epoch republishes the
            // flags; pairs with the epoch re-check in complete_now.
            self.scan_epoch.fetch_add(1, Ordering::SeqCst);
        }
        Ok(id)
    }

    fn shared_view<'s>(
        &'s self,
        quarantine: &'s (dyn Fn(QueryId, Error) + Sync),
    ) -> EngineShared<'s> {
        EngineShared {
            catalog: self.catalog,
            config: &self.config,
            batch: &self.batch,
            stems: &self.stems,
            filters: &self.filters,
            sel_owners: &self.sel_owners,
            full_set: &self.full_set,
            proj_rels: &self.proj_rels,
            projections: &self.projections,
            outputs: &self.outputs,
            profile: &self.profile,
            stats: &self.stats,
            global_version: &self.global_version,
            cost: &self.cost,
            live: &self.live,
            injector: self.injector.as_ref(),
            fallback: &self.fallback,
            quarantine,
            pressure: &self.pressure,
            recorder: self.recorder.as_deref(),
            kernels: Kernels::from_config(&self.config),
        }
    }

    /// Emits a completion event for every live query whose input has been
    /// fully consumed and that has not had a terminal event yet. Free with
    /// no recorder; otherwise a cheap scan over the admitted queries,
    /// called under the ingestion latch so activity and the done flags
    /// order consistently.
    fn flush_completions(&self, ing: &Ingestion) {
        let Some(rec) = &self.recorder else { return };
        let episode = self.stats.episodes.load(Ordering::Relaxed);
        for i in 0..self.batch.n_queries() {
            let q = QueryId(i as u32);
            if ing.query_active(q) || !self.live.contains(q) {
                continue;
            }
            let first = self
                .telemetry_done
                .get(i)
                // ordering: dedup flag only — at most one completion event
                // per query; no data is published under this flag.
                .is_some_and(|f| !f.swap(true, Ordering::Relaxed));
            if first {
                rec.record_event(episode, EventKind::Completion { query: q.0 });
            }
        }
    }

    /// Mirrors `Ingestion::scan_complete` into the lock-free `scan_done`
    /// flags. Must be called under the ingestion latch so the flags never
    /// run ahead of the schedule they summarize.
    fn sync_scan_flags(&self, ing: &Ingestion) {
        for (i, flag) in self.scan_done.iter().enumerate() {
            // ordering: SeqCst — complete_now reads the flag before the
            // pending counter; the seqlock's correctness argument needs
            // those reads to happen in that order across threads.
            flag.store(ing.scan_complete(RelId(i as u16)), Ordering::SeqCst);
        }
    }

    /// Hands `worker` its next episode vector: own queue first (front —
    /// ingestion order), then a [`MORSEL`]-sized refill from the shared
    /// ingestion state, then a steal from the back of a sibling's queue.
    /// `None` means ingestion is drained and every queue was observed
    /// empty — the run is out of work for this worker.
    fn next_task(&self, worker: usize) -> Option<IngestVector> {
        let own = self.work.get(worker)?;
        if let Some(iv) = own.lock().pop_front() {
            return Some(iv);
        }
        // Refill: batch up to MORSEL hand-outs under one ingestion latch.
        // The pending counters are bumped at grab time, under the latch,
        // so they order consistently with scan completion; completeness is
        // derived per episode by complete_now, not here.
        {
            let mut ing = self.ingestion.lock();
            let mut q = own.lock();
            while q.len() < MORSEL {
                let Some(iv) = ing.next() else { break };
                if let Some(pending) = self.pending_episodes.get(iv.rel.index()) {
                    // ordering: Release pairs with complete_now's load — a
                    // reader that sees pending == 0 also sees every hand-out.
                    pending.fetch_add(1, Ordering::Release);
                }
                q.push_back(iv);
            }
            drop(q);
            self.flush_completions(&ing);
            self.sync_scan_flags(&ing);
        }
        if let Some(iv) = own.lock().pop_front() {
            return Some(iv);
        }
        // Steal: ingestion is drained; take the newest vector off the back
        // of a sibling's queue so stragglers don't idle the pool. One
        // victim latch at a time, never nested with our own.
        let n = self.work.len();
        for off in 1..n {
            let victim = (worker + off) % n;
            let stolen = self.work.get(victim).and_then(|q| q.lock().pop_back());
            if let Some(iv) = stolen {
                if let Some(rec) = &self.recorder {
                    rec.record_steal(1);
                }
                return Some(iv);
            }
        }
        None
    }

    /// Derives the completeness set — relations whose scan is done AND
    /// whose handed-out episodes have all finished — fresh at episode
    /// start, without the ingestion latch. Pruning may treat such a STeM
    /// as final: no insert carrying any currently-executing vector's query
    /// bits can still arrive (later admissions introduce only new bits).
    ///
    /// Freshness matters under morsel batching: a vector's grab-time
    /// snapshot would still count its queue-mates as pending and miss
    /// pruning opportunities the single-vector loop used to see.
    fn complete_now(&self) -> RelSet {
        loop {
            // ordering: SeqCst seqlock read — pairs with admit's epoch
            // bumps; an odd epoch means a schedule mutation is in flight.
            let e1 = self.scan_epoch.load(Ordering::SeqCst);
            if e1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let mut complete = RelSet::EMPTY;
            let flags = self.scan_done.iter().zip(self.pending_episodes.iter());
            for (i, (done, pending)) in flags.enumerate() {
                // ordering: SeqCst — the done flag must be observed before
                // the pending counter: done(t1) ∧ pending==0(t2>t1) proves
                // every insert for the scanned-out relation has finished
                // and is visible (pending's Release sub pairs with this
                // load).
                if done.load(Ordering::SeqCst) && pending.load(Ordering::SeqCst) == 0 {
                    complete.insert(RelId(i as u16));
                }
            }
            // ordering: SeqCst seqlock re-check — an epoch moved by an
            // admission invalidates the scan; retry.
            let e2 = self.scan_epoch.load(Ordering::SeqCst);
            if e1 == e2 {
                return complete;
            }
        }
    }

    fn finish_episode(&self, rel: RelId) {
        // ordering: Release publishes the episode's STeM/output writes to
        // the load in complete_now's completeness check.
        self.pending_episodes[rel.index()].fetch_sub(1, Ordering::Release);
    }

    /// Runs one episode inside the panic-isolation boundary. A panic
    /// anywhere in the episode (a defect, or an injected panic fault) is
    /// contained here: the episode's staged outputs died with its sink
    /// (nothing partial was committed), and every live query the vector
    /// carried is quarantined with an internal error. Other queries — and
    /// other episodes — proceed normally.
    fn run_episode_guarded(
        &self,
        shared: &EngineShared<'_>,
        iv: &IngestVector,
        complete: RelSet,
        log: &mut ExecutionLog,
        scratch: &mut EpisodeScratch,
    ) -> Option<TraceEntry> {
        // The allocator-pressure ablation / differential-testing reference:
        // with reuse off, every episode runs on a fresh arena, reproducing
        // the seed's allocate-per-episode behaviour exactly.
        let mut fresh;
        let scratch = if self.config.scratch_reuse {
            scratch
        } else {
            fresh = EpisodeScratch::new();
            &mut fresh
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_episode(shared, iv, complete, &self.policy, log, scratch, self.trace)
        }));
        match outcome {
            Ok(trace) => trace,
            Err(payload) => {
                // Pooled buffers may have been mid-mutation when the panic
                // unwound; drop them rather than reuse suspect state.
                scratch.reset();
                let msg = panic_message(payload.as_ref());
                for q in iv.queries.intersection(&self.live.snapshot()).iter() {
                    self.quarantine(q, Error::Internal(format!("episode panicked: {msg}")));
                }
                None
            }
        }
    }

    fn worker_loop(&self, worker: usize) {
        let mut log = ExecutionLog::new();
        let mut scratch = EpisodeScratch::new();
        let quarantine = |q: QueryId, e: Error| self.quarantine(q, e);
        let shared = self.shared_view(&quarantine);
        while let Some(iv) = self.next_task(worker) {
            let complete = self.complete_now();
            let trace =
                self.run_episode_guarded(&shared, &iv, complete, &mut log, &mut scratch);
            self.finish_episode(iv.rel);
            if let Some(t) = trace {
                self.traces.lock().push(t);
            }
        }
    }

    /// Executes one episode; returns `false` when no input is pending.
    pub fn step(&mut self) -> bool {
        let Some(iv) = self.next_task(0) else { return false };
        let complete = self.complete_now();
        let mut log = ExecutionLog::new();
        let quarantine = |q: QueryId, e: Error| self.quarantine(q, e);
        let shared = self.shared_view(&quarantine);
        let mut scratch = self.scratch.lock();
        let trace = self.run_episode_guarded(&shared, &iv, complete, &mut log, &mut scratch);
        self.finish_episode(iv.rel);
        if let Some(t) = trace {
            self.traces.lock().push(t);
        }
        true
    }

    /// Runs episodes until all admitted queries' input is consumed, using
    /// `config.workers` worker threads.
    pub fn run(&mut self) {
        self.run_workers();
    }

    /// Shared-reference form of [`run`](Self::run), for callers that need
    /// to act on the session concurrently while it executes — e.g. a
    /// serving frontend's deadline sweeper calling
    /// [`quarantine`](Self::quarantine) from another thread.
    pub fn run_workers(&self) {
        if self.config.workers <= 1 {
            self.worker_loop(0);
            return;
        }
        let workers = self.config.workers.min(self.work.len());
        std::thread::scope(|scope| {
            for w in 0..workers {
                scope.spawn(move || self.worker_loop(w));
            }
        });
    }

    /// Runs `f` with exclusive access to the session's policy (e.g. to
    /// decode the learned plan after a run, §6.2's Stitch&Share–Sim).
    pub fn with_policy<R>(&self, f: impl FnOnce(&mut dyn Policy) -> R) -> R {
        let mut p = self.policy.lock();
        f(&mut **p)
    }

    /// The session's merged batch structures (edges, query-sets).
    pub fn batch(&self) -> &QueryBatch {
        &self.batch
    }

    /// Swaps the session's policy, returning the previous one (e.g. to
    /// carry a learned policy across sessions for warm-start studies).
    pub fn replace_policy(&mut self, policy: Box<dyn Policy>) -> Box<dyn Policy> {
        std::mem::replace(&mut *self.policy.lock(), policy)
    }

    /// Fraction of query `q`'s input already ingested (Fig. 14's admission
    /// pacing signal).
    pub fn progress(&self, q: QueryId) -> f64 {
        self.ingestion.lock().progress(q)
    }

    /// Whether query `q` still has unread input.
    pub fn query_active(&self, q: QueryId) -> bool {
        self.ingestion.lock().query_active(q)
    }

    /// Number of admitted queries.
    pub fn n_queries(&self) -> usize {
        self.batch.n_queries()
    }

    /// The query's terminal status, or `None` while it is still live with
    /// unread input. Serving frontends use this after a drain to assert no
    /// query leaked without reaching a terminal
    /// [`CompletionStatus`](crate::output::CompletionStatus).
    pub fn terminal_status(&self, q: QueryId) -> Option<crate::output::CompletionStatus> {
        let status = self.outputs.result(q).status;
        if status == crate::output::CompletionStatus::Quarantined {
            return Some(status);
        }
        if self.live.contains(q) && self.query_active(q) {
            return None;
        }
        Some(status)
    }

    /// Snapshot of one query's accumulated result.
    pub fn result(&self, q: QueryId) -> QueryResult {
        self.outputs.result(q)
    }

    /// Takes the collected rows of `q` (only when [`Self::collect_rows`]
    /// was enabled).
    pub fn take_collected(&self, q: QueryId) -> Vec<Vec<i64>> {
        self.outputs.take_collected(q)
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> EngineStats {
        let (filter_ns, build_ns, probe_ns, route_ns) = self.profile.breakdown();
        EngineStats {
            episodes: self.stats.episodes.load(Ordering::Relaxed),
            join_tuples: self.stats.join_tuples.load(Ordering::Relaxed),
            inserted_tuples: self.stats.inserted_tuples.load(Ordering::Relaxed),
            pruned_tuples: self.stats.pruned_tuples.load(Ordering::Relaxed),
            materialized_cells: self.stats.materialized_cells.load(Ordering::Relaxed),
            filter_ns,
            build_ns,
            probe_ns,
            route_ns,
            stem_bytes: self
                .stems
                .iter()
                .flatten()
                .map(|s| s.memory_bytes() as u64)
                .sum(),
            quarantined: self.stats.quarantined.load(Ordering::Relaxed),
            watchdog_trips: self.stats.watchdog_trips.load(Ordering::Relaxed),
            // ordering: monitoring snapshot; a stale ladder level is fine.
            memory_pressure: self.pressure.load(Ordering::Relaxed),
        }
    }

    /// Finalizes the session into a [`BatchOutcome`].
    pub fn finish(self) -> BatchOutcome {
        // Catch completions that landed after the last worker drained
        // `next_work` (e.g. step()-driven sessions).
        self.flush_completions(&self.ingestion.lock());
        let stats = self.stats();
        BatchOutcome {
            per_query: self.outputs.results(self.batch.n_queries()),
            stats,
            trace: self.traces.into_inner(),
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roulette_storage::RelationBuilder;

    /// fact(fk → dim.pk, v) with controllable matches.
    fn tiny_catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut f = RelationBuilder::new("fact");
        f.int64("fk", vec![0, 1, 2, 0, 1, 9, 9, 2]);
        f.int64("v", vec![0, 1, 2, 3, 4, 5, 6, 7]);
        c.add(f.build()).unwrap();
        let mut d = RelationBuilder::new("dim");
        d.int64("pk", vec![0, 1, 2, 3]);
        d.int64("w", vec![10, 11, 12, 13]);
        c.add(d.build()).unwrap();
        c
    }

    fn join_query(c: &Catalog) -> SpjQuery {
        SpjQuery::builder(c)
            .relation("fact")
            .relation("dim")
            .join(("fact", "fk"), ("dim", "pk"))
            .build()
            .unwrap()
    }

    #[test]
    fn single_join_counts_match_ground_truth() {
        let c = tiny_catalog();
        let engine = RouletteEngine::new(&c, EngineConfig::default().with_vector_size(3).unwrap());
        let out = engine.execute_batch(&[join_query(&c)]).unwrap();
        // fk values 0,1,2,0,1,2 match (6 rows); the two 9s don't.
        assert_eq!(out.per_query[0].rows, 6);
        assert!(out.stats.episodes > 0);
        assert!(out.stats.inserted_tuples > 0);
    }

    #[test]
    fn selection_filters_before_join() {
        let c = tiny_catalog();
        let q = SpjQuery::builder(&c)
            .relation("fact")
            .relation("dim")
            .join(("fact", "fk"), ("dim", "pk"))
            .range("fact", "v", 0, 2)
            .build()
            .unwrap();
        let engine = RouletteEngine::new(&c, EngineConfig::default().with_vector_size(4).unwrap());
        let out = engine.execute_batch(&[q]).unwrap();
        // Rows v ∈ {0,1,2}: fks 0,1,2 all match → 3.
        assert_eq!(out.per_query[0].rows, 3);
    }

    #[test]
    fn shared_batch_gets_per_query_results() {
        let c = tiny_catalog();
        let q_all = join_query(&c);
        let q_sel = SpjQuery::builder(&c)
            .relation("fact")
            .relation("dim")
            .join(("fact", "fk"), ("dim", "pk"))
            .range("dim", "w", 10, 10)
            .build()
            .unwrap();
        let engine = RouletteEngine::new(&c, EngineConfig::default().with_vector_size(3).unwrap());
        let out = engine.execute_batch(&[q_all, q_sel]).unwrap();
        assert_eq!(out.per_query[0].rows, 6);
        // dim.w == 10 → pk 0 → fact rows with fk 0: two.
        assert_eq!(out.per_query[1].rows, 2);
    }

    #[test]
    fn projections_are_routed() {
        let c = tiny_catalog();
        let q = SpjQuery::builder(&c)
            .relation("fact")
            .relation("dim")
            .join(("fact", "fk"), ("dim", "pk"))
            .range("fact", "v", 7, 7)
            .project("dim", "w")
            .project("fact", "v")
            .build()
            .unwrap();
        let engine = RouletteEngine::new(&c, EngineConfig::default());
        let mut session = engine.session(1);
        session.collect_rows().unwrap();
        session.admit(q).unwrap();
        session.run();
        let rows = session.take_collected(QueryId(0));
        assert_eq!(rows, vec![vec![12, 7]]);
    }

    #[test]
    fn plain_configuration_matches_optimized_results() {
        let c = tiny_catalog();
        let q = join_query(&c);
        let optimized = RouletteEngine::new(&c, EngineConfig::default().with_vector_size(3).unwrap())
            .execute_batch(std::slice::from_ref(&q))
            .unwrap();
        let plain = RouletteEngine::new(&c, EngineConfig::default().plain().with_vector_size(3).unwrap())
            .execute_batch(&[q])
            .unwrap();
        assert_eq!(optimized.per_query[0], plain.per_query[0]);
    }

    #[test]
    fn dynamic_admission_mid_run_completes_both_queries() {
        let c = tiny_catalog();
        let engine = RouletteEngine::new(&c, EngineConfig::default().with_vector_size(2).unwrap());
        let mut session = engine.session(2);
        let q0 = session.admit(join_query(&c)).unwrap();
        // Process a couple of episodes, then admit a second instance.
        assert!(session.step());
        assert!(session.step());
        let q1 = session.admit(join_query(&c)).unwrap();
        session.run();
        assert!(!session.query_active(q0));
        assert!(!session.query_active(q1));
        let out = session.finish();
        assert_eq!(out.per_query[0].rows, 6);
        assert_eq!(out.per_query[1].rows, 6);
        assert_eq!(out.per_query[0].checksum, out.per_query[1].checksum);
    }

    #[test]
    fn multi_worker_run_matches_single_worker() {
        let c = tiny_catalog();
        let q = join_query(&c);
        let single = RouletteEngine::new(&c, EngineConfig::default().with_vector_size(2).unwrap())
            .execute_batch(&[q.clone(), q.clone()])
            .unwrap();
        let multi = RouletteEngine::new(
            &c,
            EngineConfig::default().with_vector_size(2).unwrap().with_workers(4).unwrap(),
        )
        .execute_batch(&[q.clone(), q])
        .unwrap();
        assert_eq!(single.per_query, multi.per_query);
    }

    #[test]
    fn trace_collects_episode_costs() {
        let c = tiny_catalog();
        let engine = RouletteEngine::new(&c, EngineConfig::default().with_vector_size(2).unwrap());
        let mut session = engine.session(1);
        session.enable_trace();
        session.admit(join_query(&c)).unwrap();
        session.run();
        let out = session.finish();
        assert!(!out.trace.is_empty());
        assert!(out.trace.iter().any(|t| t.measured > 0.0));
    }

    #[test]
    fn empty_batch_completes_immediately() {
        let c = tiny_catalog();
        let engine = RouletteEngine::new(&c, EngineConfig::default());
        let out = engine.execute_batch(&[]).unwrap();
        assert!(out.per_query.is_empty());
        assert_eq!(out.stats.episodes, 0);
    }

    #[test]
    fn query_over_empty_relation_returns_zero_rows() {
        let mut c = Catalog::new();
        let mut f = RelationBuilder::new("fact");
        f.int64("fk", vec![]);
        c.add(f.build()).unwrap();
        let mut d = RelationBuilder::new("dim");
        d.int64("pk", vec![0, 1]);
        c.add(d.build()).unwrap();
        let q = SpjQuery::builder(&c)
            .relation("fact")
            .relation("dim")
            .join(("fact", "fk"), ("dim", "pk"))
            .build()
            .unwrap();
        let out = RouletteEngine::new(&c, EngineConfig::default())
            .execute_batch(&[q])
            .unwrap();
        assert_eq!(out.per_query[0].rows, 0);
    }

    #[test]
    fn predicate_matching_nothing_yields_empty_result() {
        let c = tiny_catalog();
        let q = SpjQuery::builder(&c)
            .relation("fact")
            .relation("dim")
            .join(("fact", "fk"), ("dim", "pk"))
            .range("fact", "v", 1000, 2000)
            .build()
            .unwrap();
        let out = RouletteEngine::new(&c, EngineConfig::default())
            .execute_batch(&[q])
            .unwrap();
        assert_eq!(out.per_query[0].rows, 0);
        assert_eq!(out.per_query[0].checksum, 0);
    }

    #[test]
    fn session_capacity_rejects_excess_admissions() {
        let c = tiny_catalog();
        let engine = RouletteEngine::new(&c, EngineConfig::default());
        let mut session = engine.session(1);
        session.admit(join_query(&c)).unwrap();
        assert!(session.admit(join_query(&c)).is_err());
    }

    #[test]
    fn stats_report_stem_footprint() {
        let c = tiny_catalog();
        let out = RouletteEngine::new(&c, EngineConfig::default())
            .execute_batch(&[join_query(&c)])
            .unwrap();
        assert!(out.stats.stem_bytes > 0);
    }

    #[test]
    fn single_relation_scan_only_query() {
        let c = tiny_catalog();
        let q = SpjQuery::builder(&c)
            .relation("fact")
            .range("fact", "v", 2, 5)
            .build()
            .unwrap();
        let out = RouletteEngine::new(&c, EngineConfig::default().with_vector_size(3).unwrap())
            .execute_batch(&[q])
            .unwrap();
        assert_eq!(out.per_query[0].rows, 4);
        assert_eq!(out.stats.join_tuples, 0);
    }

    #[test]
    fn tuple_counters_conserved_across_worker_counts() {
        // With pruning disabled, the tuple-flow counters are deterministic:
        // every selected tuple is inserted exactly once, and the symmetric
        // join produces each match exactly once regardless of episode
        // interleaving. The counters must therefore agree between a
        // 1-worker and a 4-worker run of the same seeded batch. (Pruned
        // counts are inherently timing-dependent — a slow scan prunes less
        // — so this invariant is only claimed with pruning off.)
        let c = tiny_catalog();
        let q = join_query(&c);
        let sel = SpjQuery::builder(&c)
            .relation("fact")
            .relation("dim")
            .join(("fact", "fk"), ("dim", "pk"))
            .range("fact", "v", 0, 4)
            .build()
            .unwrap();
        let run = |workers: usize| {
            let mut cfg = EngineConfig::default()
                .with_vector_size(2)
                .unwrap()
                .with_workers(workers)
                .unwrap()
                .with_seed(99);
            cfg.pruning = false;
            RouletteEngine::new(&c, cfg)
                .execute_batch(&[q.clone(), sel.clone()])
                .unwrap()
        };
        let single = run(1);
        let multi = run(4);
        assert_eq!(single.per_query, multi.per_query);
        assert_eq!(single.stats.inserted_tuples, multi.stats.inserted_tuples);
        assert_eq!(single.stats.join_tuples, multi.stats.join_tuples);
        assert_eq!(single.stats.pruned_tuples, 0);
        assert_eq!(multi.stats.pruned_tuples, 0);
        assert!(single.stats.inserted_tuples > 0);
        assert!(single.stats.join_tuples > 0);
    }

    #[test]
    fn pressure_ladder_maps_usage_to_levels() {
        // The documented thresholds: <80% nominal, ≥80% forced pruning,
        // ≥90% admissions paused. Eviction (3) is episode-reported, never
        // usage-derived.
        assert_eq!(pressure_from_usage(0, 100), 0);
        assert_eq!(pressure_from_usage(79, 100), 0);
        assert_eq!(pressure_from_usage(80, 100), 1);
        assert_eq!(pressure_from_usage(89, 100), 1);
        assert_eq!(pressure_from_usage(90, 100), 2);
        assert_eq!(pressure_from_usage(1000, 100), 2);
        assert_eq!(PressureLevel::from_raw(0), PressureLevel::Nominal);
        assert_eq!(PressureLevel::from_raw(1), PressureLevel::ForcedPruning);
        assert_eq!(PressureLevel::from_raw(2), PressureLevel::AdmissionsPaused);
        assert_eq!(PressureLevel::from_raw(3), PressureLevel::Evicting);
        assert_eq!(PressureLevel::from_raw(200), PressureLevel::Evicting);
        let stats = EngineStats { memory_pressure: 3, ..EngineStats::default() };
        assert_eq!(stats.pressure_level(), PressureLevel::Evicting);
        assert!(PressureLevel::Nominal < PressureLevel::Evicting);
    }

    #[test]
    fn recorder_sees_admission_and_completion_events() {
        use roulette_telemetry::Telemetry;
        let c = tiny_catalog();
        let mut engine =
            RouletteEngine::new(&c, EngineConfig::default().with_vector_size(3).unwrap());
        let telemetry = Telemetry::with_defaults();
        engine.set_recorder(telemetry.clone());
        let out = engine.execute_batch(&[join_query(&c)]).unwrap();
        assert_eq!(out.per_query[0].rows, 6);
        let events = telemetry.events().snapshot();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            kinds.iter().filter(|k| **k == "admission").count(),
            1,
            "{kinds:?}"
        );
        assert_eq!(
            kinds.iter().filter(|k| **k == "completion").count(),
            1,
            "{kinds:?}"
        );
        // Admission precedes completion in sequence order.
        let adm = events.iter().position(|e| e.kind.name() == "admission").unwrap();
        let cpl = events.iter().position(|e| e.kind.name() == "completion").unwrap();
        assert!(adm < cpl);
    }

    #[test]
    fn quarantine_emits_one_terminal_event() {
        use roulette_telemetry::{EventKind, Telemetry};
        let c = tiny_catalog();
        let mut engine = RouletteEngine::new(&c, EngineConfig::default());
        let telemetry = Telemetry::with_defaults();
        engine.set_recorder(telemetry.clone());
        let mut session = engine.session(1);
        let q = session.admit(join_query(&c)).unwrap();
        session.quarantine(q, Error::Internal("induced".into()));
        session.quarantine(q, Error::Internal("second time".into()));
        session.run();
        let out = session.finish();
        assert_eq!(out.stats.quarantined, 1);
        let events = telemetry.events().snapshot();
        let terminal: Vec<&EventKind> = events
            .iter()
            .map(|e| &e.kind)
            .filter(|k| matches!(k, EventKind::Quarantine { .. } | EventKind::Completion { .. }))
            .collect();
        assert_eq!(terminal.len(), 1, "{terminal:?}");
        assert!(matches!(terminal[0], EventKind::Quarantine { query: 0, .. }));
    }

    #[test]
    fn deadline_eviction_emits_dedicated_event_and_terminal_status() {
        use crate::output::CompletionStatus;
        use roulette_telemetry::{EventKind, Telemetry};
        let c = tiny_catalog();
        let mut engine = RouletteEngine::new(&c, EngineConfig::default());
        let telemetry = Telemetry::with_defaults();
        engine.set_recorder(telemetry.clone());
        let mut session = engine.session(2);
        let q0 = session.admit(join_query(&c)).unwrap();
        let q1 = session.admit(join_query(&c)).unwrap();
        // While live with unread input, there is no terminal status yet.
        assert_eq!(session.terminal_status(q0), None);
        session.quarantine(
            q0,
            Error::DeadlineExceeded { query: q0, message: "10 ms".into() },
        );
        assert_eq!(session.terminal_status(q0), Some(CompletionStatus::Quarantined));
        session.run_workers();
        assert!(matches!(
            session.query_error(q0),
            Some(Error::DeadlineExceeded { .. })
        ));
        assert_eq!(session.terminal_status(q1), Some(CompletionStatus::Complete));
        let out = session.finish();
        assert_eq!(out.per_query[1].rows, 6);
        assert_eq!(out.per_query[0].status, CompletionStatus::Quarantined);
        let events = telemetry.events().snapshot();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            kinds.iter().filter(|k| **k == "deadline-exceeded").count(),
            1,
            "{kinds:?}"
        );
        // The deadline eviction is terminal: no quarantine or completion
        // event is also emitted for q0.
        assert!(events.iter().all(|e| !matches!(
            e.kind,
            EventKind::Quarantine { query: 0, .. } | EventKind::Completion { query: 0 }
        )));
    }

    #[test]
    fn pruning_reduces_insertions() {
        // Many fact rows dangle (fk=9): with dim ranked first and pruning
        // on, those rows are dropped before insertion.
        let c = tiny_catalog();
        let q = join_query(&c);
        let with = RouletteEngine::new(&c, EngineConfig::default().with_vector_size(2).unwrap())
            .execute_batch(std::slice::from_ref(&q))
            .unwrap();
        let mut cfg = EngineConfig::default().with_vector_size(2).unwrap();
        cfg.pruning = false;
        let without = RouletteEngine::new(&c, cfg).execute_batch(&[q]).unwrap();
        assert_eq!(with.per_query, without.per_query);
        assert!(with.stats.pruned_tuples > 0);
        assert!(with.stats.inserted_tuples < without.stats.inserted_tuples);
    }
}
