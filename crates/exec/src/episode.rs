//! Episode execution (§3's executor, steps 1–5 of Figure 6).
//!
//! Each episode processes one ingested vector end-to-end: (i) the
//! selection phase filters query-sets through grouped filters in the
//! eddy's chosen order; (ii) symmetric join pruning semi-joins the vector
//! against fully-ingested neighboring STeMs; (iii) the survivors are
//! inserted into the scanned relation's STeM (making the join symmetric)
//! under a fresh global version; (iv) the join-phase plan probes the other
//! STeMs, routing divergence branches and, at null decisions, multicasting
//! SPJ results to the per-query sinks; (v) the execution log is fed back
//! to the learned policy.

use crate::fault::{FaultInjector, FaultSite, LiveSet};
use crate::kernels::Kernels;
use crate::output::{row_hash, Outputs};
use crate::planner::{
    assign_projections, plan_join_phase, plan_selection_phase, JoinNode, ProbeNode,
};
use crate::profile::{Category, Profile};
use crate::scratch::EpisodeScratch;
use crate::spaces::{JoinSpace, SelectionSpace};
use crate::stem::Stem;
use crate::vector::DataVector;
use roulette_core::{
    queryset::and_into, ColId, EngineConfig, Error, QueryId, QuerySet, RelId, RelSet,
};
use roulette_policy::{ExecutionLog, GreedyPolicy, Policy, Scope};
use roulette_query::QueryBatch;
use roulette_storage::{Catalog, IngestVector};
use roulette_telemetry::{EpisodeSample, EventKind, Recorder};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Grouped + plain evaluation strategies for one selection group.
#[derive(Debug, Clone)]
pub struct FilterPair {
    /// Range-based lookup table (§5.1).
    pub grouped: crate::filter::GroupedFilter,
    /// Per-query fallback (ablation baseline).
    pub plain: crate::filter::PlainFilter,
}

/// Engine-wide counters shared across workers.
#[derive(Debug, Default)]
pub struct SharedStats {
    /// Episodes executed.
    pub episodes: AtomicU64,
    /// Intermediate join tuples (Σ probe outputs) — §6.2's cost metric.
    pub join_tuples: AtomicU64,
    /// Tuples inserted into STeMs.
    pub inserted_tuples: AtomicU64,
    /// Tuples dropped by symmetric join pruning.
    pub pruned_tuples: AtomicU64,
    /// Intermediate vID cells materialized by probe outputs (adaptive-
    /// projection ablation metric).
    pub materialized_cells: AtomicU64,
    /// Queries evicted from the shared plan (faults, memory pressure).
    pub quarantined: AtomicU64,
    /// Episodes whose join phase was aborted and replanned by the watchdog.
    pub watchdog_trips: AtomicU64,
}

/// One Fig. 16 trace point: the episode's measured cost vs the policy's
/// pre-execution estimate of the best achievable cost.
#[derive(Debug, Clone, Copy)]
pub struct TraceEntry {
    /// Episode sequence number.
    pub episode: u64,
    /// Measured episode cost under the engine's cost model.
    pub measured: f64,
    /// Policy estimate (|best Q| × insert cardinality).
    pub estimated: f64,
}

/// Immutable state shared by all workers during a run.
pub struct EngineShared<'a> {
    /// Host storage.
    pub catalog: &'a Catalog,
    /// Engine configuration.
    pub config: &'a EngineConfig,
    /// The scheduled batch.
    pub batch: &'a QueryBatch,
    /// Per-relation STeMs (None for unscanned relations).
    pub stems: &'a [Option<Stem>],
    /// Per-selection-group filters (aligned with `batch.selection_groups`).
    pub filters: &'a [FilterPair],
    /// Per-selection-group predicate owners.
    pub sel_owners: &'a [QuerySet],
    /// The capacity-wide full query-set.
    pub full_set: &'a QuerySet,
    /// Per-query projected relations.
    pub proj_rels: &'a [RelSet],
    /// Per-query projection columns.
    pub projections: &'a [Vec<(RelId, ColId)>],
    /// Output sinks.
    pub outputs: &'a Outputs,
    /// Time breakdown.
    pub profile: &'a Profile,
    /// Shared counters.
    pub stats: &'a SharedStats,
    /// The batch-versioning counter.
    pub global_version: &'a AtomicU32,
    /// Cost model (for traces).
    pub cost: &'a roulette_core::CostModel,
    /// Live (non-quarantined) queries; episodes mask their vectors against
    /// it at start and their outputs against it at flush.
    pub live: &'a LiveSet,
    /// Deterministic fault injector (tests only; `None` in production).
    pub injector: Option<&'a FaultInjector>,
    /// Greedy fallback policy the watchdog replans with. Kept warm with the
    /// same observations as the learned policy (when a watchdog is armed).
    pub fallback: &'a parking_lot::Mutex<GreedyPolicy>,
    /// Session quarantine hook: evicts a query from the shared plan and
    /// records the attributed error.
    pub quarantine: &'a (dyn Fn(QueryId, Error) + Sync),
    /// Memory-pressure level under the budget ladder: 0 below 80% of
    /// budget, 1 at ≥80% (pruning forced on), 2 at ≥90% (admissions
    /// refused), 3 while evicting to fit an insert.
    pub pressure: &'a AtomicU8,
    /// Telemetry sink; `None` keeps every instrumentation site a single
    /// branch.
    pub recorder: Option<&'a dyn Recorder>,
    /// Data-parallel kernel dispatcher for the vector hot loops
    /// (DESIGN.md §14); mode resolved once from the config.
    pub kernels: Kernels,
}

/// One query's staged output: row count, checksum, and (when collecting)
/// the projected rows in a flat value store — `data` holds the rows'
/// values back-to-back and `offsets[i]` is the end of row `i` — so staging
/// a row never allocates once the buffers are warm.
#[derive(Debug)]
struct SinkEntry {
    q: QueryId,
    rows: u64,
    checksum: u64,
    data: Vec<i64>,
    offsets: Vec<u32>,
}

impl SinkEntry {
    #[inline]
    fn add_row(&mut self, values: &[i64], collecting: bool) {
        self.rows += 1;
        self.checksum = self.checksum.wrapping_add(row_hash(values));
        if collecting {
            self.data.extend_from_slice(values);
            self.offsets.push(self.data.len() as u32);
        }
    }
}

/// Episode-local staging of routed outputs.
///
/// The join phase routes into this sink instead of the shared [`Outputs`];
/// the episode commits it exactly once at the end, masked by the live set.
/// This makes episode output atomic: a quarantined query never publishes
/// partial rows, a watchdog-aborted join phase is discarded wholesale, and
/// a panic unwinding through the episode drops the sink before anything
/// reaches a consumer. Retired entries are parked in a spare pool, so a
/// pooled sink routes allocation-free in steady state.
#[derive(Debug, Default)]
pub struct EpisodeSink {
    collecting: bool,
    acc: Vec<SinkEntry>,
    spare: Vec<SinkEntry>,
}

impl EpisodeSink {
    /// An empty sink; `collecting` mirrors [`Outputs::collecting`].
    pub fn new(collecting: bool) -> Self {
        EpisodeSink { collecting, ..EpisodeSink::default() }
    }

    fn entry(&mut self, q: QueryId) -> &mut SinkEntry {
        // Linear scan: an episode touches few distinct queries.
        match self.acc.iter().position(|e| e.q == q) {
            Some(i) => &mut self.acc[i],
            None => {
                let mut e = self.spare.pop().unwrap_or_else(|| SinkEntry {
                    q,
                    rows: 0,
                    checksum: 0,
                    data: Vec::new(),
                    offsets: Vec::new(),
                });
                e.q = q;
                self.acc.push(e);
                self.acc.last_mut().unwrap()
            }
        }
    }

    fn push(&mut self, q: QueryId, values: &[i64]) {
        let collecting = self.collecting;
        self.entry(q).add_row(values, collecting);
    }

    /// Discards everything staged so far (watchdog abort), parking the
    /// entries for reuse.
    pub fn reset(&mut self) {
        let EpisodeSink { acc, spare, .. } = self;
        for mut e in acc.drain(..) {
            e.rows = 0;
            e.checksum = 0;
            e.data.clear();
            e.offsets.clear();
            spare.push(e);
        }
    }

    /// Commits staged outputs for queries still live at flush time.
    pub fn flush(&mut self, outputs: &Outputs, live: &LiveSet) {
        let EpisodeSink { acc, spare, .. } = self;
        for mut e in acc.drain(..) {
            if e.rows > 0 && live.contains(e.q) {
                outputs.push_batch(e.q, e.rows, e.checksum);
                if !e.offsets.is_empty() {
                    outputs.extend_collected_flat(e.q, &e.data, &e.offsets);
                }
            }
            e.rows = 0;
            e.checksum = 0;
            e.data.clear();
            e.offsets.clear();
            spare.push(e);
        }
    }
}

/// Watchdog over one episode's join phase: trips once the phase exceeds its
/// tuple or wall-clock budget, after which the episode discards the phase's
/// staged outputs and log and replans with the greedy fallback policy.
struct JoinGuard {
    tuples_left: Option<u64>,
    deadline: Option<Instant>,
    tripped: bool,
}

impl JoinGuard {
    fn from_config(config: &EngineConfig) -> Self {
        JoinGuard {
            tuples_left: config.episode_tuple_budget,
            deadline: config
                .episode_time_budget_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
            tripped: false,
        }
    }

    fn unbounded() -> Self {
        JoinGuard { tuples_left: None, deadline: None, tripped: false }
    }

    /// Charges `n` produced tuples; returns whether the guard is tripped.
    fn charge(&mut self, n: u64) -> bool {
        if !self.tripped {
            if let Some(left) = &mut self.tuples_left {
                if *left < n {
                    self.tripped = true;
                } else {
                    *left -= n;
                }
            }
        }
        if !self.tripped {
            if let Some(deadline) = self.deadline {
                self.tripped = Instant::now() >= deadline;
            }
        }
        self.tripped
    }
}

/// Clears `q`'s bit from every tuple of `vec`, dropping tuples whose
/// query-set empties. Query-bit independence makes this result-safe for the
/// surviving queries. One broadcast-subtract kernel call plus a mask-driven
/// compaction.
// lint: hot-loop
fn scrub_query(vec: &mut DataVector, q: QueryId, scratch: &mut EpisodeScratch, kernels: Kernels) {
    let width = vec.qsets.words_per_set();
    let EpisodeScratch { mask, keep, .. } = scratch;
    mask.clear();
    mask.resize(width, 0);
    if let Some(w) = mask.get_mut(q.index() / 64) {
        *w = 1u64 << (q.index() % 64);
    }
    kernels.qset_subtract_broadcast(&mut vec.qsets, mask, keep);
    vec.retain_mask(keep, kernels);
}

/// The memory governor's eviction choice: the candidate with the largest
/// per-query STeM footprint share, `Σ_{r ∈ q.relations} bytes(r) / live
/// sharers of r`. Ties resolve to the lowest id (iteration order), keeping
/// eviction deterministic.
fn heaviest_query(shared: &EngineShared<'_>, candidates: &QuerySet) -> Option<QueryId> {
    let live = shared.live.snapshot();
    let mut best: Option<(f64, QueryId)> = None;
    for q in candidates.iter() {
        let mut score = 0.0;
        for r in shared.batch.query(q).relations.iter() {
            let Some(stem) = shared.stems[r.index()].as_ref() else { continue };
            let sharers = shared.batch.rel_queries(r).intersection(&live).len().max(1);
            score += stem.memory_bytes() as f64 / sharers as f64;
        }
        if best.is_none_or(|(s, _)| score > s) {
            best = Some((score, q));
        }
    }
    best.map(|(_, q)| q)
}

/// Publishes a memory-pressure level and, when it changed and a recorder
/// is attached, emits the ladder-transition event. Workers race on the
/// swap; telemetry sees each transition at least once per actual change.
fn record_pressure(shared: &EngineShared<'_>, level: u8) {
    // ordering: the ladder level is advisory — workers acting on a stale
    // level only prune/pause one episode late, which is safe.
    let prev = shared.pressure.swap(level, Ordering::Relaxed);
    if prev != level {
        if let Some(rec) = shared.recorder {
            rec.record_event(
                shared.stats.episodes.load(Ordering::Relaxed),
                EventKind::MemoryPressure { from: prev, to: level },
            );
        }
    }
}

/// Runs one episode. `complete` is the set of relations whose scans have
/// finished (pruning eligibility), sampled under the ingestion lock.
/// `scratch` is the worker's pooled arena — every per-episode buffer is
/// drawn from it and returned, so a warm arena runs the episode without
/// allocating. Returns a Fig. 16 trace point when `trace` is set.
pub fn run_episode(
    shared: &EngineShared<'_>,
    iv: &IngestVector,
    complete: RelSet,
    policy: &parking_lot::Mutex<Box<dyn roulette_policy::Policy>>,
    log: &mut ExecutionLog,
    scratch: &mut EpisodeScratch,
    trace: bool,
) -> Option<TraceEntry> {
    log.clear();
    let rel = iv.rel;
    let batch = shared.batch;
    // Episode wall-clock is only measured when someone will consume it.
    let t0_episode = if shared.recorder.is_some() { Some(Instant::now()) } else { None };
    let scanned = (iv.end - iv.start) as u64;

    // --- Quarantine masking + ingestion fault site -----------------------
    // Vectors are annotated at schedule time; queries quarantined since then
    // are masked out here, so an evicted query stops consuming shared work
    // within one episode.
    let mut queries = iv.queries.intersection(&shared.live.snapshot());
    if let Some(inj) = shared.injector {
        if let Some((q, e)) = inj.check(FaultSite::Ingestion, &queries) {
            (shared.quarantine)(q, e);
            queries.remove(q);
        }
    }
    if queries.is_empty() {
        let episode = shared.stats.episodes.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = shared.recorder {
            rec.record_episode(&EpisodeSample {
                episode,
                latency_ns: t0_episode.map_or(0, |t| t.elapsed().as_nanos() as u64),
                scanned,
                capacity: shared.config.vector_size as u64,
                selected: 0,
                inserted: 0,
            });
        }
        return None;
    }

    let jspace = JoinSpace::new(batch);
    let sspace = SelectionSpace::new(batch, rel, shared.sel_owners, shared.full_set);

    // --- Planning (policy latch held across the episode's decisions) ----
    let (sel_order, mut join_plan, estimate) = {
        let mut p = policy.lock();
        let sel_order = plan_selection_phase(&sspace, &mut **p, rel, &queries);
        let plan = plan_join_phase(batch, &jspace, &mut **p, rel, &queries);
        let est = if trace {
            -p.estimate(Scope::JOIN, RelSet::singleton(rel).0, &queries, &jspace)
        } else {
            0.0
        };
        (sel_order, plan, est)
    };
    assign_projections(
        &mut join_plan,
        &|q: QueryId| shared.proj_rels[q.index()],
        shared.config.adaptive_projections,
    );

    let mut vec = scratch.take_vector(queries.width());
    let scan_col = scratch.take_col();
    vec.refill_scan(rel, iv.start, iv.end, &queries, scan_col);

    // --- Selection phase -------------------------------------------------
    // lint: hot-loop
    let t0 = Instant::now();
    if let Some(inj) = shared.injector {
        if let Some((q, e)) = inj.check(FaultSite::Filter, &queries) {
            (shared.quarantine)(q, e);
            queries.remove(q);
            scrub_query(&mut vec, q, scratch, shared.kernels);
        }
    }
    let mut lineage = 0u64;
    let relation = shared.catalog.relation(rel);
    let groups = batch.selections_of(rel);
    for &op in &sel_order {
        if vec.is_empty() {
            break;
        }
        let gid = groups[op as usize] as usize;
        let group = &batch.selection_groups()[gid];
        let filter = &shared.filters[gid];
        let vids = vec.vids_of(rel).expect("scan column present");
        relation.column(group.col).gather(vids, &mut scratch.values);
        let n_in = vec.len();
        // Whole-column kernel evaluation: segment lookup + qset AND + packed
        // survivor mask in one pass, then mask-driven compaction.
        if shared.config.grouped_filters {
            shared.kernels.filter_grouped(
                &filter.grouped,
                &scratch.values,
                &mut vec.qsets,
                &mut scratch.keep,
            );
        } else {
            shared.kernels.filter_plain(
                &filter.plain,
                &scratch.values,
                &mut scratch.mask,
                &mut vec.qsets,
                &mut scratch.keep,
            );
        }
        vec.retain_mask(&scratch.keep, shared.kernels);
        log.push_reused(
            Scope::selection(rel),
            lineage,
            &queries,
            op,
            n_in as u64,
            vec.len() as u64,
            None,
        );
        lineage |= 1 << op;
        if vec.is_empty() {
            break;
        }
    }
    let selected = vec.len() as u64;

    // --- Symmetric join pruning ------------------------------------------
    // Pruning is forced on at memory-pressure level ≥ 1: it is result-safe
    // (drops only tuples that can never produce output) and shrinks STeM
    // growth, the first rung of the degradation ladder.
    let pruning = shared.config.pruning
        || (shared.config.memory_budget_bytes.is_some()
            // ordering: advisory ladder level; reading it one episode
            // stale only delays pruning by one vector.
            && shared.pressure.load(Ordering::Relaxed) >= 1);
    if pruning && !vec.is_empty() {
        prune_vector(shared, rel, complete, &mut vec, scratch);
    }
    shared.profile.add(Category::Filter, t0.elapsed().as_nanos() as u64);

    if let Some(inj) = shared.injector {
        if let Some((q, e)) = inj.check(FaultSite::StemInsert, &queries) {
            (shared.quarantine)(q, e);
            queries.remove(q);
            scrub_query(&mut vec, q, scratch, shared.kernels);
        }
    }

    // --- Memory-budget governance ----------------------------------------
    if let Some(budget) = shared.config.memory_budget_bytes {
        let used: usize = shared.stems.iter().flatten().map(|s| s.memory_bytes()).sum();
        let level = crate::engine::pressure_from_usage(used, budget);
        record_pressure(shared, level);
        if let Some(stem) = shared.stems[rel.index()].as_ref() {
            // Final rung: gate the insert itself. Evict the heaviest
            // queries until the projected footprint fits the budget; an
            // emptied vector skips insert and join entirely, so resident
            // STeM bytes never overshoot by more than one vector's growth.
            // On routed (sharded) STeMs the projection follows the actual
            // routing keys and sums per-shard growth, so a skewed vector
            // that lands whole in one shard is fully charged and still
            // trips the ladder; the keys are re-gathered after every
            // eviction because scrubbing shrinks the vector.
            loop {
                if vec.is_empty() {
                    break;
                }
                let routing = stem.key_cols().first().copied().zip(vec.vids_of(rel));
                let projected = match routing {
                    Some((c0, vids)) if stem.is_routed() => {
                        relation.column(c0).gather(vids, &mut scratch.values);
                        stem.projected_insert_bytes_routed(vec.len(), &scratch.values)
                    }
                    _ => stem.projected_insert_bytes(vec.len()),
                };
                if used + projected <= budget {
                    break;
                }
                let Some(victim) = heaviest_query(shared, &queries) else { break };
                // Eviction is its own (transient) ladder level; the next
                // episode re-derives the level from post-eviction usage.
                record_pressure(shared, 3);
                (shared.quarantine)(
                    victim,
                    Error::QueryFault {
                        query: victim,
                        message: format!(
                            "evicted under memory pressure (budget {budget} bytes)"
                        ),
                    },
                );
                queries.remove(victim);
                scrub_query(&mut vec, victim, scratch, shared.kernels);
            }
        }
    }

    // --- Insert (build side of the symmetric join) ------------------------
    // The sink is taken out of the arena for the episode's duration (the
    // join phase needs it and the arena borrowed apart) and restored after
    // the flush; a panic unwinding through the episode drops it, staged
    // outputs and all.
    let mut measured_insert = 0u64;
    let mut sink = std::mem::take(&mut scratch.sink);
    sink.collecting = shared.outputs.collecting();
    if !vec.is_empty() {
        if let Some(stem) = shared.stems[rel.index()].as_ref() {
            let t_build = Instant::now();
            let vids = vec.vids_of(rel).expect("scan column");
            let nkeys = stem.key_cols().len();
            if scratch.insert_keys.len() < nkeys {
                scratch.insert_keys.resize_with(nkeys, Vec::new);
            }
            for (k, &c) in scratch.insert_keys.iter_mut().zip(stem.key_cols()) {
                relation.column(c).gather(vids, k);
            }
            // Routed (sharded) STeMs get one insert critical section — and
            // one fresh global version — per shard the vector touches, and
            // each sub-chunk is probed with *its own* version; stem.rs's
            // module docs prove exactly-once under that pairing. Unrouted
            // STeMs keep the legacy single insert + single join, so S=1
            // runs are byte-identical to the pre-sharding engine.
            let mut chunks: Vec<(DataVector, u32)> = Vec::new();
            let mut version = 0u32;
            if stem.is_routed() {
                let insert_keys = std::mem::take(&mut scratch.insert_keys);
                let mut shard_ids = std::mem::take(&mut scratch.shard_ids);
                let mut sub_keys = std::mem::take(&mut scratch.shard_keys);
                let mut shard_rows = [0u32; crate::stem::MAX_STEM_SHARDS];
                shard_ids.clear();
                for &k in insert_keys.first().map(Vec::as_slice).unwrap_or(&[]) {
                    let s = stem.shard_of_key(k);
                    if let Some(rows) = shard_rows.get_mut(s) {
                        *rows += 1;
                    }
                    shard_ids.push(s as u8);
                }
                if sub_keys.len() < nkeys {
                    sub_keys.resize_with(nkeys, Vec::new);
                }
                for (s, &rows) in shard_rows.iter().enumerate().take(stem.n_shards()) {
                    if rows == 0 {
                        continue;
                    }
                    let mut chunk = scratch.take_vector(vec.qsets.words_per_set());
                    let mut col = scratch.take_col();
                    for sk in sub_keys.iter_mut() {
                        sk.clear();
                    }
                    for (i, (&sid, &vid)) in shard_ids.iter().zip(vids.iter()).enumerate() {
                        if sid as usize != s {
                            continue;
                        }
                        col.push(vid);
                        chunk.qsets.push_row_from(&vec.qsets, i);
                        for (sk, keys) in sub_keys.iter_mut().zip(insert_keys.iter()) {
                            sk.extend(keys.get(i).copied());
                        }
                    }
                    let v = stem.insert_shard(
                        s,
                        &col,
                        &chunk.qsets,
                        sub_keys.get(..nkeys).unwrap_or(&[]),
                        shared.global_version,
                    );
                    if let Some(rec) = shared.recorder {
                        rec.record_shard_insert(s, col.len() as u64);
                    }
                    chunk.push_column(rel, col);
                    chunks.push((chunk, v));
                }
                scratch.insert_keys = insert_keys;
                scratch.shard_ids = shard_ids;
                scratch.shard_keys = sub_keys;
            } else {
                version = stem.insert_vector(
                    vids,
                    &vec.qsets,
                    scratch.insert_keys.get(..nkeys).unwrap_or(&[]),
                    shared.global_version,
                );
                if stem.n_shards() > 1 {
                    if let Some(rec) = shared.recorder {
                        rec.record_shard_insert(0, vec.len() as u64);
                    }
                }
            }
            shared.profile.add(Category::Build, t_build.elapsed().as_nanos() as u64);
            shared.stats.inserted_tuples.fetch_add(vec.len() as u64, Ordering::Relaxed);
            measured_insert = vec.len() as u64;

            // --- Join phase ------------------------------------------------
            let log_mark = log.len();
            let mut guard = JoinGuard::from_config(shared.config);
            if chunks.is_empty() {
                exec_join(shared, &join_plan, &vec, version, log, &mut sink, &mut guard, scratch);
            } else {
                for (chunk, v) in &chunks {
                    exec_join(shared, &join_plan, chunk, *v, log, &mut sink, &mut guard, scratch);
                    if guard.tripped {
                        break;
                    }
                }
            }
            if guard.tripped {
                // Watchdog: the learned plan blew its budget. Discard the
                // phase's staged outputs and log, replan with the greedy
                // fallback, and re-run unbudgeted. The inserts kept their
                // versions, so the re-run sees the exact same STeM state
                // and produces the same result set.
                shared.stats.watchdog_trips.fetch_add(1, Ordering::Relaxed);
                if let Some(rec) = shared.recorder {
                    let ep = shared.stats.episodes.load(Ordering::Relaxed);
                    rec.record_event(ep, EventKind::WatchdogTrip { relation: rel.0 });
                    rec.record_event(ep, EventKind::FallbackReplan { relation: rel.0 });
                }
                sink.reset();
                log.truncate(log_mark);
                let mut fb_plan = {
                    let mut fb = shared.fallback.lock();
                    plan_join_phase(batch, &jspace, &mut *fb, rel, &queries)
                };
                assign_projections(
                    &mut fb_plan,
                    &|q: QueryId| shared.proj_rels[q.index()],
                    shared.config.adaptive_projections,
                );
                let mut unbounded = JoinGuard::unbounded();
                if chunks.is_empty() {
                    exec_join(
                        shared, &fb_plan, &vec, version, log, &mut sink, &mut unbounded, scratch,
                    );
                } else {
                    for (chunk, v) in &chunks {
                        exec_join(
                            shared, &fb_plan, chunk, *v, log, &mut sink, &mut unbounded, scratch,
                        );
                    }
                }
            }
            for (chunk, _) in chunks {
                scratch.release_vector(chunk);
            }
        }
    }
    // Atomic commit point for the episode's outputs, masked by the queries
    // still live now.
    sink.flush(shared.outputs, shared.live);
    scratch.sink = sink;
    scratch.release_vector(vec);

    // --- Learning ----------------------------------------------------------
    let episode = shared.stats.episodes.fetch_add(1, Ordering::Relaxed);
    let join_out: u64 = log
        .entries()
        .iter()
        .filter(|e| e.scope == Scope::JOIN)
        .map(|e| e.n_out)
        .sum();
    shared.stats.join_tuples.fetch_add(join_out, Ordering::Relaxed);
    {
        let mut p = policy.lock();
        // Reverse order: children before parents, so bootstrapped values
        // propagate one level per episode at worst, usually further.
        for entry in log.entries().iter().rev() {
            if entry.scope == Scope::JOIN {
                p.observe(entry, &jspace);
            } else {
                p.observe(entry, &sspace);
            }
        }
    }
    if shared.config.episode_tuple_budget.is_some()
        || shared.config.episode_time_budget_ms.is_some()
    {
        // Keep the watchdog's fallback warm on the same observations, so a
        // replan after a trip has real selectivity estimates to work with.
        let mut fb = shared.fallback.lock();
        for entry in log.entries().iter().rev() {
            if entry.scope == Scope::JOIN {
                fb.observe(entry, &jspace);
            } else {
                fb.observe(entry, &sspace);
            }
        }
    }

    // --- Telemetry ---------------------------------------------------------
    if let Some(rec) = shared.recorder {
        let (hits, misses) = scratch.take_reuse_counters();
        rec.record_scratch(hits, misses);
        rec.record_episode(&EpisodeSample {
            episode,
            latency_ns: t0_episode.map_or(0, |t| t.elapsed().as_nanos() as u64),
            scanned,
            capacity: shared.config.vector_size as u64,
            selected,
            inserted: measured_insert,
        });
        let every = shared.config.telemetry.policy_probe_every;
        if every > 0 && episode.is_multiple_of(every) {
            if let Some(probe) = policy.lock().probe() {
                rec.record_policy_probe(episode, &probe);
            }
        }
    }

    if trace {
        // Join-phase cost only, so the trace is comparable to the policy's
        // join-plan estimate.
        let measured: f64 = log
            .entries()
            .iter()
            .filter(|e| e.scope == Scope::JOIN)
            .map(|e| shared.cost.cost(roulette_core::OpKind::Join, e.n_in, e.n_out))
            .sum();
        Some(TraceEntry { episode, measured, estimated: estimate * measured_insert as f64 })
    } else {
        None
    }
}

/// Semi-joins `vec` against every fully-ingested joinable STeM (§5.2):
/// for queries containing the edge, a tuple keeps its bit only if a match
/// carries it; emptied tuples are dropped before insertion.
// lint: hot-loop
fn prune_vector(
    shared: &EngineShared<'_>,
    rel: RelId,
    complete: RelSet,
    vec: &mut DataVector,
    scratch: &mut EpisodeScratch,
) {
    let batch = shared.batch;
    let relation = shared.catalog.relation(rel);
    let width = vec.qsets.words_per_set();
    for &eid in batch.edges_of(rel) {
        if vec.is_empty() {
            return;
        }
        let edge = batch.edge(eid);
        let Some((this_side, other_side)) = edge.oriented_from(rel) else { continue };
        if !complete.contains(other_side.0) {
            continue;
        }
        let Some(stem) = shared.stems[other_side.0.index()].as_ref() else { continue };
        let Some(index_id) = stem.index_of(other_side.1) else { continue };
        let edge_q = batch.edge_queries(eid);
        let vids = vec.vids_of(rel).expect("scan column");
        relation.column(this_side.1).gather(vids, &mut scratch.values);
        let n_in = vec.len();
        // allowed(i) = (∪ matching entry query-sets) ∪ ¬Q_edge — queries
        // without this edge are unaffected by the semi-join. Seed every
        // row's mask with ¬Q_edge, then let the batched two-phase
        // semi-join OR the matching entry sets in.
        scratch.row_masks.clear();
        for _ in 0..n_in {
            scratch.row_masks.extend(edge_q.words().iter().map(|&w| !w));
        }
        {
            let EpisodeScratch { values, probe, row_masks, .. } = scratch;
            stem.semijoin_batch(index_id, values, probe, |i, entry_q| {
                let row = &mut row_masks[i * width..(i + 1) * width];
                for (a, &w) in row.iter_mut().zip(entry_q) {
                    *a |= w;
                }
            });
        }
        // One bulk AND over the whole row range replaces the per-row
        // `and_row` loop; the survivor count falls out of the keep mask.
        shared.kernels.qset_and(&mut vec.qsets, &scratch.row_masks, &mut scratch.keep);
        let dropped = (n_in - scratch.keep.count()) as u64;
        shared.stats.pruned_tuples.fetch_add(dropped, Ordering::Relaxed);
        vec.retain_mask(&scratch.keep, shared.kernels);
    }
}

/// Upper bound on an intermediate vector's tuple count: larger probe
/// outputs are processed in chunks, bounding the pending-vector footprint
/// (§3) — without this, a bad exploratory order on an expanding join chain
/// can hold gigabytes of transient tuples across the recursion.
const MAX_PENDING_VECTOR: usize = 1 << 16;

/// Executes the join-phase plan for `vec` (probe sub-plans first, then
/// divergence sub-plans, as in §3's executor walk-through).
// lint: hot-loop
#[allow(clippy::too_many_arguments)]
fn exec_join(
    shared: &EngineShared<'_>,
    node: &JoinNode,
    vec: &DataVector,
    version: u32,
    log: &mut ExecutionLog,
    sink: &mut EpisodeSink,
    guard: &mut JoinGuard,
    scratch: &mut EpisodeScratch,
) {
    if vec.is_empty() || guard.tripped {
        return;
    }
    if vec.len() > MAX_PENDING_VECTOR {
        let mut start = 0;
        while start < vec.len() {
            let end = (start + MAX_PENDING_VECTOR).min(vec.len());
            let mut chunk = scratch.take_vector(vec.qsets.words_per_set());
            vec.copy_range_into(start, end, &mut chunk, scratch.col_pool_mut());
            exec_join(shared, node, &chunk, version, log, sink, guard, scratch);
            scratch.release_vector(chunk);
            if guard.tripped {
                return;
            }
            start = end;
        }
        return;
    }
    match node {
        JoinNode::Output { queries } => route(shared, vec, queries, sink, scratch),
        JoinNode::Probe(p) => {
            let (main_vec, div_vec) = exec_probe(shared, p, vec, version, log, guard, scratch);
            if !guard.tripped {
                exec_join(shared, &p.main, &main_vec, version, log, sink, guard, scratch);
                if let (Some(div_plan), Some(dv)) = (&p.div, &div_vec) {
                    exec_join(shared, div_plan, dv, version, log, sink, guard, scratch);
                }
            }
            scratch.release_vector(main_vec);
            if let Some(dv) = div_vec {
                scratch.release_vector(dv);
            }
        }
    }
}

/// One probe step, batch-oriented: the probe rows intersecting the main
/// branch are compacted first (saving their intersected query-sets), their
/// keys gathered in one pass, and the STeM probed through the two-phase
/// [`probe_batch`](crate::stem::Stem::probe_batch) — hash and
/// bucket-head lookups run over the whole batch before any chain is
/// walked, so the head fetches are independent loads the hardware can
/// overlap instead of per-row dependent misses. On unsharded STeMs the
/// match visit order is identical to per-key probing, so outputs are
/// byte-identical; sharded probes visit shard-grouped (a result-safe
/// permutation, since the sink accumulates order-insensitively).
// lint: hot-loop
fn exec_probe(
    shared: &EngineShared<'_>,
    p: &ProbeNode,
    vec: &DataVector,
    version: u32,
    log: &mut ExecutionLog,
    guard: &mut JoinGuard,
    scratch: &mut EpisodeScratch,
) -> (DataVector, Option<DataVector>) {
    let t0 = Instant::now();
    if let Some(inj) = shared.injector {
        // Quarantine only: the in-flight vector keeps its bits (scrubbing
        // mid-join is wasted work), and the flush-time live mask suppresses
        // the dead query's outputs.
        if let Some((q, e)) = inj.check(FaultSite::StemProbe, &p.queries) {
            (shared.quarantine)(q, e);
        }
    }
    let stem = shared.stems[p.target_rel.index()]
        .as_ref()
        .expect("probed relation has a STeM");
    let index_id = stem.index_of(p.target_col).expect("probe key is indexed");
    let width = vec.qsets.words_per_set();
    let probe_vids = vec.vids_of(p.probe_rel).expect("probe column present");
    let cols = vec.columns();

    // Carried source columns for each branch.
    scratch.carry_main.clear();
    scratch.carry_main.extend(
        cols.iter()
            .enumerate()
            .filter(|(_, (r, _))| p.keep_main.contains(*r))
            .map(|(i, _)| i),
    );
    let keep_target = p.keep_main.contains(p.target_rel);
    scratch.carry_div.clear();
    if p.div_queries.is_some() {
        scratch.carry_div.extend(
            cols.iter()
                .enumerate()
                .filter(|(_, (r, _))| p.keep_div.contains(*r))
                .map(|(i, _)| i),
        );
    }

    // Output builders, drawn from the arena. `main_bufs`/`div_bufs` only
    // ever hold empty buffers between probes: assembly drains the ones a
    // probe used into the output vector, which returns them to the column
    // pool when the vector is released.
    let mut main_out = scratch.take_vector(width);
    let mut div_out = p.div_queries.as_ref().map(|_| scratch.take_vector(width));
    while scratch.main_bufs.len() < scratch.carry_main.len() {
        let buf = scratch.take_col();
        scratch.main_bufs.push(buf);
    }
    while scratch.div_bufs.len() < scratch.carry_div.len() {
        let buf = scratch.take_col();
        scratch.div_bufs.push(buf);
    }
    let mut target_buf = scratch.take_col();

    // Phase 1: compact the rows whose query-set intersects the main
    // branch, saving each survivor's intersected mask and probe vID.
    let main_words = p.main_queries.words();
    scratch.mask.clear();
    scratch.mask.resize(width, 0);
    scratch.active_rows.clear();
    scratch.active_vids.clear();
    scratch.row_masks.clear();
    for (i, &pv) in probe_vids.iter().enumerate().take(vec.len()) {
        if and_into(&mut scratch.mask, vec.qsets.row(i), main_words) {
            scratch.active_rows.push(i as u32);
            scratch.active_vids.push(pv);
            scratch.row_masks.extend_from_slice(&scratch.mask);
        }
    }

    // Phase 2: gather the keys of the compacted rows in one pass.
    shared
        .catalog
        .relation(p.probe_rel)
        .column(p.probe_col)
        .gather(&scratch.active_vids, &mut scratch.probe_keys);

    // Phase 3: batched two-phase probe over the compacted keys, one shard
    // read latch at a time (single latch on unsharded STeMs).
    {
        let EpisodeScratch { probe, probe_keys, row_masks, active_rows, main_bufs, carry_main, .. } =
            scratch;
        stem.probe_batch(index_id, probe_keys, version, probe, |j, entry_q, entry_vid| {
            if main_out.qsets.push_and(&row_masks[j * width..(j + 1) * width], entry_q) {
                let i = active_rows[j] as usize;
                for (buf, &src) in main_bufs.iter_mut().zip(carry_main.iter()) {
                    buf.push(cols[src].1[i]);
                }
                if keep_target {
                    target_buf.push(entry_vid);
                }
            }
        });
    }

    // Divergence branch: a straight selection over the full vector.
    if let (Some(dv), Some(div_q)) = (&mut div_out, &p.div_queries) {
        let div_words = div_q.words();
        for i in 0..vec.len() {
            if dv.qsets.push_and(vec.qsets.row(i), div_words) {
                for (buf, &src) in scratch.div_bufs.iter_mut().zip(scratch.carry_div.iter()) {
                    buf.push(cols[src].1[i]);
                }
            }
        }
    }

    // Assemble output vectors.
    let n_main = scratch.carry_main.len();
    for (buf, &src) in scratch.main_bufs.drain(..n_main).zip(scratch.carry_main.iter()) {
        main_out.push_column(cols[src].0, buf);
    }
    if keep_target {
        main_out.push_column(p.target_rel, target_buf);
    } else {
        scratch.release_col(target_buf);
    }
    let div_vec = div_out.map(|mut dv| {
        let n_div = scratch.carry_div.len();
        for (buf, &src) in scratch.div_bufs.drain(..n_div).zip(scratch.carry_div.iter()) {
            dv.push_column(cols[src].0, buf);
        }
        dv
    });

    shared
        .stats
        .materialized_cells
        .fetch_add(main_out.footprint_cells() as u64, Ordering::Relaxed);
    shared.profile.add(Category::Probe, t0.elapsed().as_nanos() as u64);

    if let Some(rec) = shared.recorder {
        rec.record_probe_batch(vec.len() as u64);
        if stem.n_shards() > 1 {
            for (s, &keys) in scratch.probe.shard_key_counts().iter().enumerate() {
                if keys > 0 {
                    rec.record_shard_probe(s, keys as u64);
                }
            }
        }
    }

    log.push_reused(
        Scope::JOIN,
        p.lineage.0,
        &p.queries,
        p.edge,
        vec.len() as u64,
        main_out.len() as u64,
        div_vec.as_ref().map(|d| d.len() as u64),
    );
    guard.charge(main_out.len() as u64);

    (main_out, div_vec)
}

/// Routes an output vector to its queries' sinks. The locality-conscious
/// router (§5.1) works query-at-a-time in two passes — count, then gather —
/// issuing one sink-entry lookup per query per vector and writing projected
/// rows straight into the entry's flat store; the direct router multicasts
/// tuple-by-tuple.
// lint: hot-loop
fn route(
    shared: &EngineShared<'_>,
    vec: &DataVector,
    queries: &QuerySet,
    sink: &mut EpisodeSink,
    scratch: &mut EpisodeScratch,
) {
    let t0 = Instant::now();
    if let Some(inj) = shared.injector {
        if let Some((q, e)) = inj.check(FaultSite::Route, queries) {
            (shared.quarantine)(q, e);
        }
    }
    let collecting = sink.collecting;
    if shared.config.locality_router {
        // One CSR partition pass over the qset words replaces the old
        // count-then-test sweeps per query.
        let EpisodeScratch { part, route_vals, row, .. } = scratch;
        shared.kernels.partition(&vec.qsets, queries, part);
        for q in queries.iter() {
            let rows = part.rows_of(q.index());
            if rows.is_empty() {
                continue;
            }
            // Projection lookups (vID column find, catalog column) are
            // hoisted out of the row loop: gather each projected column
            // for all of this query's rows, column-major into route_vals.
            let projs =
                shared.projections.get(q.index()).map(|p| p.as_slice()).unwrap_or(&[]);
            route_vals.clear();
            for &(rel, col) in projs {
                let vids = vec
                    .vids_of(rel)
                    .expect("projection column survived adaptive projections");
                let column = shared.catalog.relation(rel).column(col);
                for &ri in rows {
                    let vid = vids.get(ri as usize).copied().unwrap_or(0);
                    route_vals.push(column.value(vid as usize));
                }
            }
            // Reassemble row-major into the query's sink entry, resolved
            // once per query. Emission order (queries ascending, rows
            // ascending) matches the old per-query scan exactly.
            let e = sink.entry(q);
            for k in 0..rows.len() {
                row.clear();
                for cvals in route_vals.chunks_exact(rows.len()) {
                    row.push(cvals.get(k).copied().unwrap_or(0));
                }
                e.add_row(row, collecting);
            }
        }
    } else {
        // Direct multicast: iterate set bits straight off the row words
        // (no per-tuple set materialization — the ablation compares
        // routing strategies, not allocator traffic).
        for i in 0..vec.len() {
            let row = vec.qsets.row(i);
            for (w, &word) in row.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let q = QueryId((w * 64 + b) as u32);
                    project_row(shared, vec, q, i, &mut scratch.row);
                    sink.push(q, &scratch.row);
                }
            }
        }
    }
    shared.profile.add(Category::Route, t0.elapsed().as_nanos() as u64);
}

// lint: hot-loop
#[inline]
fn project_row(
    shared: &EngineShared<'_>,
    vec: &DataVector,
    q: QueryId,
    row: usize,
    out: &mut Vec<i64>,
) {
    out.clear();
    for &(rel, col) in &shared.projections[q.index()] {
        let vids = vec
            .vids_of(rel)
            .expect("projection column survived adaptive projections");
        out.push(shared.catalog.relation(rel).column(col).value(vids[row] as usize));
    }
}
