//! Scalar reference kernels: row-at-a-time bodies that mirror the
//! pre-kernel engine loops. The wide and simd paths are pinned
//! byte-identical to these by `tests/kernel_equiv.rs`.

use roulette_core::{QuerySet, QuerySetColumn, RowMask};

use super::Partition;
use crate::filter::{GroupedFilter, PlainFilter};

/// Per-row grouped-filter evaluation: one binary search + one `and_row`
/// per tuple, exactly the old selection-phase loop.
// lint: hot-loop
pub(super) fn filter_grouped(
    filter: &GroupedFilter,
    values: &[i64],
    qsets: &mut QuerySetColumn,
    keep: &mut RowMask,
) {
    keep.clear_resize(qsets.len());
    for (i, &v) in values.iter().enumerate() {
        if qsets.and_row(i, filter.mask_for(v)) {
            keep.set(i);
        }
    }
}

/// Per-row plain-filter evaluation (per-query ablation): every predicate
/// is tested for every tuple. Shared by all kernel modes.
// lint: hot-loop
pub(super) fn filter_plain(
    filter: &PlainFilter,
    values: &[i64],
    mask_buf: &mut Vec<u64>,
    qsets: &mut QuerySetColumn,
    keep: &mut RowMask,
) {
    keep.clear_resize(qsets.len());
    mask_buf.clear();
    mask_buf.resize(filter.words(), 0);
    for (i, &v) in values.iter().enumerate() {
        filter.mask_into(v, mask_buf);
        if qsets.and_row(i, mask_buf) {
            keep.set(i);
        }
    }
}

/// Element-at-a-time survivor compaction over a `u32` column.
// lint: hot-loop
pub(super) fn compact_u32(col: &mut Vec<u32>, keep: &RowMask) {
    debug_assert_eq!(col.len(), keep.len());
    let mut out = 0usize;
    let data = col.as_mut_slice();
    keep.for_each_set(|i| {
        if out != i {
            data.copy_within(i..i + 1, out);
        }
        out += 1;
    });
    col.truncate(out);
}

/// Two-pass per-query routing partition: for each routed query, one count
/// sweep and one extraction sweep over the qset column — the shape of the
/// old locality-router loop.
// lint: hot-loop
pub(super) fn partition(
    qsets: &QuerySetColumn,
    queries: &QuerySet,
    part: &mut Partition,
) -> u64 {
    let wps = qsets.words_per_set();
    part.reset_counts(wps * 64);
    let raw = qsets.raw();
    for q in queries.iter() {
        let (wi, b) = (q.index() / 64, q.index() % 64);
        let mut cnt: u32 = 0;
        for row in raw.chunks_exact(wps) {
            cnt += row.get(wi).map_or(0, |&w| (w >> b) & 1) as u32;
        }
        if let Some(c) = part.counts_mut().get_mut(q.index()) {
            *c = cnt;
        }
    }
    let total = part.build_offsets();
    let (cursors, rows) = part.scatter_mut();
    for q in queries.iter() {
        let (wi, b) = (q.index() / 64, q.index() % 64);
        let Some(cur) = cursors.get_mut(q.index()) else { continue };
        for (i, row) in raw.chunks_exact(wps).enumerate() {
            if row.get(wi).is_some_and(|&w| (w >> b) & 1 == 1) {
                if let Some(slot) = rows.get_mut(*cur as usize) {
                    *slot = i as u32;
                }
                *cur += 1;
            }
        }
    }
    total
}
