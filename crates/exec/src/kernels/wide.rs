//! Unrolled multi-lane `u64` kernels: the portable fast path.
//!
//! Lane model (DESIGN.md §14): survivor bits are assembled 64 rows per
//! `u64` word; grouped-filter lookups go through the filter's bucket jump
//! table (a fixed-point multiply plus a 0–2 entry refinement, no full
//! binary search) and pipeline across independent rows; row widths
//! of 1, 2, and 4 words are monomorphized so the word loop fully unrolls;
//! compaction moves *runs* of surviving rows with `copy_within` instead of
//! testing one row at a time; the routing partition is a single CSR
//! counting/scatter pass driven by word-wise bit iteration. Tail rows (and
//! tail queries) fall through to scalar epilogues computing the exact same
//! function, so results are byte-identical to the scalar reference.

use roulette_core::{QuerySet, QuerySetColumn, RowMask};

use super::Partition;
use crate::filter::GroupedFilter;

/// Grouped-filter evaluation over a whole value column: jump-table segment
/// lookup (`GroupedFilter::seg_of` — one fixed-point multiply plus a 0–2
/// entry refinement instead of a full binary search), with the qset AND
/// and survivor bits batched 64 rows per keep word. Consecutive rows'
/// lookups carry no data dependency, so they pipeline across iterations.
// lint: hot-loop
pub(super) fn filter_grouped(
    filter: &GroupedFilter,
    values: &[i64],
    qsets: &mut QuerySetColumn,
    keep: &mut RowMask,
) {
    let n = qsets.len();
    keep.clear_resize(n);
    let (_, masks, words) = filter.table();
    let wps = qsets.words_per_set();
    debug_assert_eq!(words, wps);
    if wps == 1 {
        filter_grouped_w1(filter, masks, values, qsets.raw_mut(), keep.words_mut());
    } else {
        // Multi-word rows (>64 queries in the batch): the reference loop's
        // `and_row` body is already the fastest shape here — block keep
        // assembly only pays off when a whole row fits one word.
        super::scalar::filter_grouped(filter, values, qsets, keep);
    }
}

/// Width-1 body: the common case (≤64 queries). One keep word is
/// assembled per 64-row block and stored once, instead of a read-modify-
/// write per row.
// lint: hot-loop
fn filter_grouped_w1(
    filter: &GroupedFilter,
    masks: &[u64],
    values: &[i64],
    data: &mut [u64],
    kws: &mut [u64],
) {
    for ((vblk, dblk), kw) in
        values.chunks(64).zip(data.chunks_mut(64)).zip(kws.iter_mut())
    {
        let mut k = 0u64;
        for (lane, (&v, d)) in vblk.iter().zip(dblk).enumerate() {
            let seg = filter.seg_of(v);
            *d &= masks.get(seg).copied().unwrap_or(0);
            k |= u64::from(*d != 0) << lane;
        }
        *kw = k;
    }
}

/// Bulk per-row AND with survivor bits assembled 64 rows per keep word.
// lint: hot-loop
pub(super) fn qset_and(qsets: &mut QuerySetColumn, masks: &[u64], keep: &mut RowMask) {
    let wps = qsets.words_per_set();
    let n = qsets.len();
    debug_assert_eq!(masks.len(), n * wps);
    keep.clear_resize(n);
    let data = qsets.raw_mut();
    match wps {
        1 => and_w1(data, masks, keep.words_mut()),
        2 => and_wn::<2>(data, masks, keep),
        4 => and_wn::<4>(data, masks, keep),
        _ => and_generic(data, masks, wps, keep),
    }
}

/// Width-1 AND: 64-row blocks, one keep word assembled per block.
// lint: hot-loop
fn and_w1(data: &mut [u64], masks: &[u64], kws: &mut [u64]) {
    for ((drows, mrows), kw) in
        data.chunks_mut(64).zip(masks.chunks(64)).zip(kws.iter_mut())
    {
        let mut k = 0u64;
        for (lane, (d, &m)) in drows.iter_mut().zip(mrows).enumerate() {
            *d &= m;
            k |= u64::from(*d != 0) << lane;
        }
        *kw = k;
    }
}

/// Monomorphized AND for width `W`: `chunks_exact(W)` lets the word loop
/// fully unroll.
// lint: hot-loop
fn and_wn<const W: usize>(data: &mut [u64], masks: &[u64], keep: &mut RowMask) {
    for (i, (row, mask)) in
        data.chunks_exact_mut(W).zip(masks.chunks_exact(W)).enumerate()
    {
        let mut any = 0u64;
        for (d, &m) in row.iter_mut().zip(mask) {
            *d &= m;
            any |= *d;
        }
        if any != 0 {
            keep.set(i);
        }
    }
}

/// Fallback AND for arbitrary widths.
// lint: hot-loop
fn and_generic(data: &mut [u64], masks: &[u64], wps: usize, keep: &mut RowMask) {
    for (i, (row, mask)) in
        data.chunks_exact_mut(wps).zip(masks.chunks_exact(wps)).enumerate()
    {
        let mut any = 0u64;
        for (d, &m) in row.iter_mut().zip(mask) {
            *d &= m;
            any |= *d;
        }
        if any != 0 {
            keep.set(i);
        }
    }
}

/// Broadcast AND (one shared mask); width-1 gets the 64-row block body.
// lint: hot-loop
pub(super) fn qset_and_broadcast(qsets: &mut QuerySetColumn, mask: &[u64], keep: &mut RowMask) {
    let wps = qsets.words_per_set();
    keep.clear_resize(qsets.len());
    let data = qsets.raw_mut();
    if wps == 1 {
        let m = mask.first().copied().unwrap_or(0);
        for (drows, kw) in data.chunks_mut(64).zip(keep.words_mut()) {
            let mut k = 0u64;
            for (lane, d) in drows.iter_mut().enumerate() {
                *d &= m;
                k |= u64::from(*d != 0) << lane;
            }
            *kw = k;
        }
    } else {
        for (i, row) in data.chunks_exact_mut(wps).enumerate() {
            let mut any = 0u64;
            for (d, &m) in row.iter_mut().zip(mask) {
                *d &= m;
                any |= *d;
            }
            if any != 0 {
                keep.set(i);
            }
        }
    }
}

/// Broadcast subtract (`row &= !mask`, the query scrub).
// lint: hot-loop
pub(super) fn qset_subtract_broadcast(
    qsets: &mut QuerySetColumn,
    mask: &[u64],
    keep: &mut RowMask,
) {
    let wps = qsets.words_per_set();
    keep.clear_resize(qsets.len());
    let data = qsets.raw_mut();
    if wps == 1 {
        let m = !mask.first().copied().unwrap_or(0);
        for (drows, kw) in data.chunks_mut(64).zip(keep.words_mut()) {
            let mut k = 0u64;
            for (lane, d) in drows.iter_mut().enumerate() {
                *d &= m;
                k |= u64::from(*d != 0) << lane;
            }
            *kw = k;
        }
    } else {
        for (i, row) in data.chunks_exact_mut(wps).enumerate() {
            let mut any = 0u64;
            for (d, &m) in row.iter_mut().zip(mask) {
                *d &= !m;
                any |= *d;
            }
            if any != 0 {
                keep.set(i);
            }
        }
    }
}

/// Bulk per-row OR.
// lint: hot-loop
pub(super) fn qset_or(qsets: &mut QuerySetColumn, masks: &[u64]) {
    let wps = qsets.words_per_set();
    debug_assert_eq!(masks.len(), qsets.raw().len());
    for (row, mask) in qsets.raw_mut().chunks_exact_mut(wps).zip(masks.chunks_exact(wps)) {
        for (d, &m) in row.iter_mut().zip(mask) {
            *d |= m;
        }
    }
}

/// Run-based `u32` compaction: surviving rows are moved in maximal
/// contiguous runs found by `trailing_zeros`/`trailing_ones`, so dense
/// keep masks cost one `copy_within` per run instead of one per row.
// lint: hot-loop
pub(super) fn compact_u32(col: &mut Vec<u32>, keep: &RowMask) {
    debug_assert_eq!(col.len(), keep.len());
    let mut out = 0usize;
    let data = col.as_mut_slice();
    for (wi, &kw) in keep.words().iter().enumerate() {
        let base = wi * 64;
        let mut w = kw;
        loop {
            if w == 0 {
                break;
            }
            let start = w.trailing_zeros() as usize;
            let run = (w >> start).trailing_ones() as usize;
            let src = base + start;
            if out != src {
                data.copy_within(src..src + run, out);
            }
            out += run;
            if start + run >= 64 {
                break;
            }
            // start + run < 64 here, so the shift cannot overflow.
            w &= !(((1u64 << run) - 1) << start);
        }
    }
    col.truncate(out);
}

/// Run-based query-set-column compaction (same run scan, rows are
/// `words_per_set` words wide).
// lint: hot-loop
pub(super) fn compact_qsets(qsets: &mut QuerySetColumn, keep: &RowMask) {
    debug_assert_eq!(qsets.len(), keep.len());
    let wps = qsets.words_per_set();
    let mut out = 0usize;
    {
        let data = qsets.raw_mut();
        for (wi, &kw) in keep.words().iter().enumerate() {
            let base = wi * 64;
            let mut w = kw;
            loop {
                if w == 0 {
                    break;
                }
                let start = w.trailing_zeros() as usize;
                let run = (w >> start).trailing_ones() as usize;
                let src = base + start;
                if out != src {
                    data.copy_within(src * wps..(src + run) * wps, out * wps);
                }
                out += run;
                if start + run >= 64 {
                    break;
                }
                // start + run < 64 here, so the shift cannot overflow.
                w &= !(((1u64 << run) - 1) << start);
            }
        }
    }
    qsets.truncate(out);
}

/// Single-pass CSR routing partition: one word-wise counting sweep over
/// the qset column (set bits found with `trailing_zeros`), a prefix-sum,
/// and one scatter sweep — instead of two sweeps per routed query.
// lint: hot-loop
pub(super) fn partition(
    qsets: &QuerySetColumn,
    queries: &QuerySet,
    part: &mut Partition,
) -> u64 {
    let wps = qsets.words_per_set();
    part.reset_counts(wps * 64);
    let raw = qsets.raw();
    let qwords = queries.words();
    {
        let counts = part.counts_mut();
        for row in raw.chunks_exact(wps) {
            for (wi, (&rw, &qw)) in row.iter().zip(qwords).enumerate() {
                let mut bits = rw & qw;
                while bits != 0 {
                    let q = wi * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if let Some(c) = counts.get_mut(q) {
                        *c += 1;
                    }
                }
            }
        }
    }
    let total = part.build_offsets();
    let (cursors, rows) = part.scatter_mut();
    for (i, row) in raw.chunks_exact(wps).enumerate() {
        for (wi, (&rw, &qw)) in row.iter().zip(qwords).enumerate() {
            let mut bits = rw & qw;
            while bits != 0 {
                let q = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if let Some(cur) = cursors.get_mut(q) {
                    if let Some(slot) = rows.get_mut(*cur as usize) {
                        *slot = i as u32;
                    }
                    *cur += 1;
                }
            }
        }
    }
    total
}
