//! `std::arch` AVX2 kernels (`--features simd`).
//!
//! Only compiled behind the `simd` feature — enabling it drops the exec
//! crate's `#![forbid(unsafe_code)]` to a `cfg_attr` (DESIGN.md §14); the
//! `unsafe` surface is confined to this module and every block carries a
//! SAFETY justification. The dispatcher only selects this mode after
//! `is_x86_feature_detected!("avx2")` at [`Kernels::best`] time, so the
//! `#[target_feature(enable = "avx2")]` functions are always called on a
//! host that supports them.
//!
//! The bodies process four `u64` words per 256-bit op; tails (row counts
//! not a multiple of the register width) fall through to the wide path's
//! scalar epilogue, computing the same function — results stay
//! byte-identical (`tests/kernel_equiv.rs` sweeps this mode too).
//!
//! [`Kernels::best`]: super::Kernels::best

#![allow(unsafe_code)]

use roulette_core::{QuerySetColumn, RowMask};

use super::wide;

/// Bulk per-row AND, AVX2 body for the hot widths (1 and 4 words per
/// row); other widths use the portable wide path.
// lint: hot-loop
pub(super) fn qset_and(qsets: &mut QuerySetColumn, masks: &[u64], keep: &mut RowMask) {
    let wps = qsets.words_per_set();
    let n = qsets.len();
    debug_assert_eq!(masks.len(), n * wps);
    match wps {
        1 => {
            keep.clear_resize(n);
            // SAFETY: the dispatcher only routes here after
            // `is_x86_feature_detected!("avx2")` returned true (see
            // `Kernels::best`), so the target-feature contract holds.
            unsafe { and_w1_avx2(qsets.raw_mut(), masks, keep.words_mut()) }
        }
        4 => {
            keep.clear_resize(n);
            // SAFETY: as above — AVX2 presence was verified at dispatcher
            // construction time.
            unsafe { and_w4_avx2(qsets.raw_mut(), masks, keep) }
        }
        _ => wide::qset_and(qsets, masks, keep),
    }
}

/// Width-1 AND: four rows per 256-bit op, survivor bits extracted with a
/// compare-to-zero + movemask and or-ed into the packed keep words. Rows
/// beyond the last full quad take the scalar epilogue.
///
/// # Safety
/// Callers must ensure the host supports AVX2.
// lint: hot-loop
// SAFETY: declared unsafe for `target_feature`; callers verify AVX2 first.
#[target_feature(enable = "avx2")]
unsafe fn and_w1_avx2(data: &mut [u64], masks: &[u64], kws: &mut [u64]) {
    use std::arch::x86_64::{
        __m256i, _mm256_and_si256, _mm256_castsi256_pd, _mm256_cmpeq_epi64,
        _mm256_loadu_si256, _mm256_movemask_pd, _mm256_setzero_si256, _mm256_storeu_si256,
    };
    let n = data.len().min(masks.len());
    let quads = n / 4;
    let dp = data.as_mut_ptr();
    let mp = masks.as_ptr();
    for blk in 0..quads {
        let at = blk * 4;
        // SAFETY: `at + 3 < quads * 4 <= n`, and `n` is bounded by both
        // slice lengths, so the 32-byte unaligned loads/stores stay in
        // bounds of `data` and `masks`.
        unsafe {
            let d = _mm256_loadu_si256(dp.add(at) as *const __m256i);
            let m = _mm256_loadu_si256(mp.add(at) as *const __m256i);
            let r = _mm256_and_si256(d, m);
            _mm256_storeu_si256(dp.add(at) as *mut __m256i, r);
            let z = _mm256_cmpeq_epi64(r, _mm256_setzero_si256());
            // 4 lane bits, 1 = lane became zero; invert for "survives".
            let zero_lanes = _mm256_movemask_pd(_mm256_castsi256_pd(z)) as u64;
            let bits4 = !zero_lanes & 0xF;
            // `at % 4 == 0`, so the quad never straddles a keep word.
            if let Some(kw) = kws.get_mut(at / 64) {
                *kw |= bits4 << (at % 64);
            }
        }
    }
    // Scalar epilogue over the tail rows — same function, bit-identical.
    let tail = quads * 4;
    for (i, (d, &m)) in (tail..).zip(data.iter_mut().zip(masks).skip(tail)) {
        *d &= m;
        if *d != 0 {
            if let Some(kw) = kws.get_mut(i / 64) {
                *kw |= 1u64 << (i % 64);
            }
        }
    }
}

/// Width-4 AND: one row per 256-bit op, survivor test via `vptest`.
///
/// # Safety
/// Callers must ensure the host supports AVX2.
// lint: hot-loop
// SAFETY: declared unsafe for `target_feature`; callers verify AVX2 first.
#[target_feature(enable = "avx2")]
unsafe fn and_w4_avx2(data: &mut [u64], masks: &[u64], keep: &mut RowMask) {
    use std::arch::x86_64::{
        __m256i, _mm256_and_si256, _mm256_loadu_si256, _mm256_storeu_si256,
        _mm256_testz_si256,
    };
    let rows = data.len().min(masks.len()) / 4;
    let dp = data.as_mut_ptr();
    let mp = masks.as_ptr();
    for i in 0..rows {
        let at = i * 4;
        // SAFETY: `at + 3 < rows * 4`, which is bounded by both slice
        // lengths, so the 32-byte unaligned accesses stay in bounds.
        unsafe {
            let d = _mm256_loadu_si256(dp.add(at) as *const __m256i);
            let m = _mm256_loadu_si256(mp.add(at) as *const __m256i);
            let r = _mm256_and_si256(d, m);
            _mm256_storeu_si256(dp.add(at) as *mut __m256i, r);
            if _mm256_testz_si256(r, r) == 0 {
                keep.set(i);
            }
        }
    }
}
