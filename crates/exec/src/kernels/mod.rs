//! Data-parallel kernels for the vector hot loops (DESIGN.md §14).
//!
//! The Data-Query model stores per-tuple query membership as contiguous
//! `u64` bitset words precisely so the per-vector operators can run wide
//! and branch-free. This module is that execution substrate: the four
//! loops that dominate episode cost — filter-mask evaluation, bulk
//! query-set intersection, survivor compaction, and the routing partition
//! — each exist in two (optionally three) interchangeable forms:
//!
//! * **scalar** (`scalar`) — row-at-a-time reference implementations
//!   that mirror the pre-kernel engine code. Selected with
//!   [`EngineConfig::with_wide_kernels`]`(false)`; the `kernel_equiv`
//!   differential suite pins the wide paths byte-identical to these.
//! * **wide** (`wide`) — unrolled multi-lane `u64` implementations:
//!   survivor bits are assembled 64 rows per word, grouped-filter lookups
//!   resolve through a bucket jump table instead of a per-value binary
//!   search, compaction moves runs of surviving rows with `copy_within`,
//!   and the routing partition is a single CSR-style counting pass over
//!   the qset words.
//! * **simd** (`simd`, `--features simd`) — `std::arch` AVX2 bodies for
//!   the widest-impact kernels, selected by runtime feature detection and
//!   falling back to `wide` otherwise.
//!
//! Every kernel writes bit-exact results regardless of mode: lane order
//! never changes the value written to a given output position, and tail
//! rows (row counts or query counts not a multiple of the lane width) take
//! a scalar epilogue over the same operations. See `tests/kernel_equiv.rs`.

use roulette_core::{EngineConfig, QuerySet, QuerySetColumn, RowMask};

use crate::filter::{GroupedFilter, PlainFilter};

pub(crate) mod scalar;
#[cfg(feature = "simd")]
pub(crate) mod simd;
pub(crate) mod wide;

/// Which implementation family a [`Kernels`] dispatcher selects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelMode {
    /// Row-at-a-time reference path (byte-identical ground truth).
    Scalar,
    /// Unrolled multi-lane `u64` fast path (portable, no `unsafe`).
    Wide,
    /// `std::arch` AVX2 fast path with runtime detection.
    #[cfg(feature = "simd")]
    Simd,
}

/// Dispatcher for the data-parallel kernel layer.
///
/// `Copy` and stateless: the engine stores one in its shared view and the
/// episode loop calls through it. Construction picks the best mode the
/// build and the host support, unless the config pins the scalar path.
#[derive(Clone, Copy, Debug)]
pub struct Kernels {
    mode: KernelMode,
}

impl Kernels {
    /// Selects the mode from the engine config: the scalar reference path
    /// when `wide_kernels` is off, otherwise the best available fast path.
    pub fn from_config(config: &EngineConfig) -> Self {
        if config.wide_kernels {
            Self::best()
        } else {
            Self::scalar()
        }
    }

    /// The scalar reference path.
    pub fn scalar() -> Self {
        Kernels { mode: KernelMode::Scalar }
    }

    /// The fastest mode this build and host support: AVX2 when compiled
    /// with `--features simd` and detected at runtime, else the portable
    /// wide path.
    pub fn best() -> Self {
        #[cfg(feature = "simd")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return Kernels { mode: KernelMode::Simd };
            }
        }
        Kernels { mode: KernelMode::Wide }
    }

    /// A dispatcher pinned to `mode` (differential tests and benches).
    pub fn with_mode(mode: KernelMode) -> Self {
        Kernels { mode }
    }

    /// Every mode available in this build on this host, scalar first —
    /// the axis the differential suite and micro benches sweep.
    pub fn all_modes() -> Vec<Kernels> {
        #[cfg_attr(not(feature = "simd"), allow(unused_mut))]
        let mut v = vec![Self::scalar(), Kernels { mode: KernelMode::Wide }];
        #[cfg(feature = "simd")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                v.push(Kernels { mode: KernelMode::Simd });
            }
        }
        v
    }

    /// The selected mode.
    pub fn mode(&self) -> KernelMode {
        self.mode
    }

    /// Stable label for bench output.
    pub fn mode_name(&self) -> &'static str {
        match self.mode {
            KernelMode::Scalar => "scalar",
            KernelMode::Wide => "wide",
            #[cfg(feature = "simd")]
            KernelMode::Simd => "simd",
        }
    }

    /// Filter-mask kernel, grouped form: evaluates the range lookup table
    /// over the whole value column, intersects each row's query-set with
    /// its segment mask in place, and records survivors in `keep`.
    ///
    /// Replaces the per-row `mask_for` + `and_row` selection loop.
    #[inline]
    pub fn filter_grouped(
        &self,
        filter: &GroupedFilter,
        values: &[i64],
        qsets: &mut QuerySetColumn,
        keep: &mut RowMask,
    ) {
        debug_assert_eq!(values.len(), qsets.len());
        match self.mode {
            KernelMode::Scalar => scalar::filter_grouped(filter, values, qsets, keep),
            KernelMode::Wide => wide::filter_grouped(filter, values, qsets, keep),
            #[cfg(feature = "simd")]
            KernelMode::Simd => wide::filter_grouped(filter, values, qsets, keep),
        }
    }

    /// Filter-mask kernel, plain (per-query ablation) form. Predicate
    /// evaluation is inherently per-predicate here, so every mode shares
    /// one body; the batched survivor bookkeeping still applies.
    #[inline]
    pub fn filter_plain(
        &self,
        filter: &PlainFilter,
        values: &[i64],
        mask_buf: &mut Vec<u64>,
        qsets: &mut QuerySetColumn,
        keep: &mut RowMask,
    ) {
        debug_assert_eq!(values.len(), qsets.len());
        scalar::filter_plain(filter, values, mask_buf, qsets, keep);
    }

    /// Bulk query-set intersection: `row_i &= mask_i` for per-row masks
    /// concatenated in `masks`; survivors recorded in `keep`.
    #[inline]
    pub fn qset_and(&self, qsets: &mut QuerySetColumn, masks: &[u64], keep: &mut RowMask) {
        match self.mode {
            KernelMode::Scalar => qsets.and_rows(masks, keep),
            KernelMode::Wide => wide::qset_and(qsets, masks, keep),
            #[cfg(feature = "simd")]
            KernelMode::Simd => simd::qset_and(qsets, masks, keep),
        }
    }

    /// Bulk query-set intersection with one shared mask.
    #[inline]
    pub fn qset_and_broadcast(
        &self,
        qsets: &mut QuerySetColumn,
        mask: &[u64],
        keep: &mut RowMask,
    ) {
        match self.mode {
            KernelMode::Scalar => qsets.and_rows_broadcast(mask, keep),
            KernelMode::Wide => wide::qset_and_broadcast(qsets, mask, keep),
            #[cfg(feature = "simd")]
            KernelMode::Simd => wide::qset_and_broadcast(qsets, mask, keep),
        }
    }

    /// Bulk query-set union with per-row masks (no survivor mask: union
    /// never empties a row).
    #[inline]
    pub fn qset_or(&self, qsets: &mut QuerySetColumn, masks: &[u64]) {
        match self.mode {
            KernelMode::Scalar => qsets.or_rows(masks),
            KernelMode::Wide => wide::qset_or(qsets, masks),
            #[cfg(feature = "simd")]
            KernelMode::Simd => wide::qset_or(qsets, masks),
        }
    }

    /// Bulk query scrub: `row &= !mask` with one shared mask; survivors
    /// recorded in `keep`.
    #[inline]
    pub fn qset_subtract_broadcast(
        &self,
        qsets: &mut QuerySetColumn,
        mask: &[u64],
        keep: &mut RowMask,
    ) {
        match self.mode {
            KernelMode::Scalar => qsets.subtract_rows_broadcast(mask, keep),
            KernelMode::Wide => wide::qset_subtract_broadcast(qsets, mask, keep),
            #[cfg(feature = "simd")]
            KernelMode::Simd => wide::qset_subtract_broadcast(qsets, mask, keep),
        }
    }

    /// Survivor compaction over one `u32` value column.
    #[inline]
    pub fn compact_u32(&self, col: &mut Vec<u32>, keep: &RowMask) {
        match self.mode {
            KernelMode::Scalar => scalar::compact_u32(col, keep),
            KernelMode::Wide => wide::compact_u32(col, keep),
            #[cfg(feature = "simd")]
            KernelMode::Simd => wide::compact_u32(col, keep),
        }
    }

    /// Survivor compaction over a query-set column.
    #[inline]
    pub fn compact_qsets(&self, qsets: &mut QuerySetColumn, keep: &RowMask) {
        match self.mode {
            KernelMode::Scalar => qsets.retain_mask(keep),
            KernelMode::Wide => wide::compact_qsets(qsets, keep),
            #[cfg(feature = "simd")]
            KernelMode::Simd => wide::compact_qsets(qsets, keep),
        }
    }

    /// Routing partition: for every query in `queries`, extracts the rows
    /// whose query-set contains it, into `part`'s CSR layout. Returns the
    /// total number of `(query, row)` pairs.
    ///
    /// Row order within each query is ascending in both modes, matching
    /// the order the old per-query scan loop emitted.
    #[inline]
    pub fn partition(
        &self,
        qsets: &QuerySetColumn,
        queries: &QuerySet,
        part: &mut Partition,
    ) -> u64 {
        match self.mode {
            KernelMode::Scalar => scalar::partition(qsets, queries, part),
            KernelMode::Wide => wide::partition(qsets, queries, part),
            #[cfg(feature = "simd")]
            KernelMode::Simd => wide::partition(qsets, queries, part),
        }
    }
}

/// Reusable CSR-layout output of the routing partition kernel: for query
/// `q`, `rows[offsets[q] .. offsets[q] + counts[q]]` are the surviving row
/// indices in ascending order. Lives in the episode scratch arena so the
/// buffers are recycled across episodes.
#[derive(Clone, Debug, Default)]
pub struct Partition {
    /// Per-query survivor counts, indexed by query id (capacity-sized).
    counts: Vec<u32>,
    /// Per-query exclusive prefix offsets into `rows`.
    offsets: Vec<u32>,
    /// Scatter cursors (scratch for the single-pass wide partition).
    cursors: Vec<u32>,
    /// Row indices, grouped by query.
    rows: Vec<u32>,
}

impl Partition {
    /// An empty partition (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The surviving row indices for query id `q`, ascending. Empty when
    /// the query had no survivors (or is out of range).
    #[inline]
    pub fn rows_of(&self, q: usize) -> &[u32] {
        let start = self.offsets.get(q).copied().unwrap_or(0) as usize;
        let n = self.counts.get(q).copied().unwrap_or(0) as usize;
        self.rows.get(start..start + n).unwrap_or(&[])
    }

    /// Survivor count for query id `q`.
    #[inline]
    pub fn count_of(&self, q: usize) -> usize {
        self.counts.get(q).copied().unwrap_or(0) as usize
    }

    /// Resets the count table to `capacity` query slots, zeroed.
    pub(crate) fn reset_counts(&mut self, capacity: usize) {
        self.counts.clear();
        self.counts.resize(capacity, 0);
    }

    pub(crate) fn counts_mut(&mut self) -> &mut [u32] {
        &mut self.counts
    }

    /// Builds `offsets` as the exclusive prefix sum of `counts` and sizes
    /// `rows` for the total; returns the total. Also primes `cursors` with
    /// a copy of the offsets for scatter passes.
    pub(crate) fn build_offsets(&mut self) -> u64 {
        self.offsets.clear();
        let mut acc: u32 = 0;
        for &c in &self.counts {
            self.offsets.push(acc);
            acc += c;
        }
        self.cursors.clear();
        self.cursors.extend_from_slice(&self.offsets);
        self.rows.clear();
        self.rows.resize(acc as usize, 0);
        u64::from(acc)
    }

    /// Splits the scatter state: `(cursors, rows)` mutably at once.
    pub(crate) fn scatter_mut(&mut self) -> (&mut [u32], &mut [u32]) {
        (&mut self.cursors, &mut self.rows)
    }
}
