//! The episode scratch arena — pooled working state for the hot path.
//!
//! Every per-episode buffer the executor needs (selection value/keep
//! buffers, predicate masks, probe key/match staging, carry-column
//! builders, the routing row buffer, whole intermediate [`DataVector`]s
//! and the staged output sink) lives here and is recycled with
//! `clear()`-not-`drop()` semantics: after the first few episodes warm the
//! pools, steady-state episodes run allocation-free. One arena is owned
//! per worker (and one by the session for `step()`-driven execution);
//! nothing in it is shared, so there is no synchronization.
//!
//! Batch versioning is what makes this safe: an episode's buffers are dead
//! the moment its insert/probe critical sections end (no STeM retains a
//! reference into them — entries are copied in under the write latch), so
//! recycling a buffer can never alias state a concurrent episode still
//! reads. See DESIGN.md §10.

use crate::episode::EpisodeSink;
use crate::kernels::Partition;
use crate::stem::ProbeScratch;
use crate::vector::DataVector;
use roulette_core::RowMask;

/// Reusable per-episode working state (see module docs). Acquire one per
/// worker and pass it to every episode; `reset` only on the panic path.
#[derive(Debug, Default)]
pub struct EpisodeScratch {
    /// Gathered attribute values (selection, pruning, probe keys).
    pub(crate) values: Vec<i64>,
    /// Packed row-survival bitmap produced by the filter/prune/scrub
    /// kernels and consumed by `DataVector::retain_mask`.
    pub(crate) keep: RowMask,
    /// Query-set word mask (plain-filter masks, pruning `allowed` sets,
    /// per-row main-branch intersections).
    pub(crate) mask: Vec<u64>,
    /// Per-index insert key columns (outer Vec tracks the widest STeM
    /// seen; inner buffers are reused by `Column::gather`).
    pub(crate) insert_keys: Vec<Vec<i64>>,
    /// Two-phase probe staging (hashes + bucket heads + shard partition).
    pub(crate) probe: ProbeScratch,
    /// Owning shard of each insert row (sharded-STeM build phase).
    pub(crate) shard_ids: Vec<u8>,
    /// Per-index key columns of the sub-chunk being built for one shard.
    pub(crate) shard_keys: Vec<Vec<i64>>,
    /// Concatenated main-branch query-set masks of the active probe rows.
    pub(crate) row_masks: Vec<u64>,
    /// Probe-vector row index of each active probe row.
    pub(crate) active_rows: Vec<u32>,
    /// Probe-relation vIDs of the active probe rows (gather input).
    pub(crate) active_vids: Vec<u32>,
    /// Gathered probe keys of the active probe rows.
    pub(crate) probe_keys: Vec<i64>,
    /// Column indices carried to the main branch.
    pub(crate) carry_main: Vec<usize>,
    /// Column indices carried to the divergence branch.
    pub(crate) carry_div: Vec<usize>,
    /// Main-branch carry-column builders (drained into the output vector
    /// each probe; outer Vec keeps its capacity).
    pub(crate) main_bufs: Vec<Vec<u32>>,
    /// Divergence-branch carry-column builders.
    pub(crate) div_bufs: Vec<Vec<u32>>,
    /// Projected row staging for routing.
    pub(crate) row: Vec<i64>,
    /// CSR routing partition (per-query survivor rows) from the
    /// `partition` kernel.
    pub(crate) part: Partition,
    /// Projection values gathered column-major for routing emission.
    pub(crate) route_vals: Vec<i64>,
    /// The episode-local staged-output sink (taken for the episode's
    /// duration, restored at commit).
    pub(crate) sink: EpisodeSink,
    /// Parked intermediate vectors (emptied, columns harvested).
    vec_pool: Vec<DataVector>,
    /// Parked vID column buffers.
    col_pool: Vec<Vec<u32>>,
    hits: u64,
    misses: u64,
}

impl EpisodeScratch {
    /// An empty arena; pools warm up over the first episodes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires an empty [`DataVector`] with `words_per_set`-wide
    /// query-sets, recycled from the pool when possible.
    pub(crate) fn take_vector(&mut self, words_per_set: usize) -> DataVector {
        match self.vec_pool.pop() {
            Some(mut v) => {
                self.hits += 1;
                v.set_words_per_set(words_per_set);
                v
            }
            None => {
                self.misses += 1;
                DataVector::new(words_per_set)
            }
        }
    }

    /// Parks a vector: its column buffers are harvested into the column
    /// pool and the emptied shell joins the vector pool.
    pub(crate) fn release_vector(&mut self, mut v: DataVector) {
        v.recycle(&mut self.col_pool);
        self.vec_pool.push(v);
    }

    /// Acquires an empty vID column buffer.
    pub(crate) fn take_col(&mut self) -> Vec<u32> {
        match self.col_pool.pop() {
            Some(buf) => {
                self.hits += 1;
                buf
            }
            None => {
                self.misses += 1;
                Vec::new()
            }
        }
    }

    /// Parks a column buffer.
    pub(crate) fn release_col(&mut self, mut buf: Vec<u32>) {
        buf.clear();
        self.col_pool.push(buf);
    }

    /// Mutable access to the column pool (for [`DataVector`] helpers that
    /// draw/park buffers themselves).
    pub(crate) fn col_pool_mut(&mut self) -> &mut Vec<Vec<u32>> {
        &mut self.col_pool
    }

    /// Drains the reuse counters accumulated since the last call: buffer
    /// acquisitions served from a pool (`hits`) vs. freshly allocated
    /// (`misses`). Reported per episode to the telemetry recorder.
    pub(crate) fn take_reuse_counters(&mut self) -> (u64, u64) {
        (std::mem::take(&mut self.hits), std::mem::take(&mut self.misses))
    }

    /// Drops everything back to a pristine arena. Only used after a panic
    /// unwound through an episode, when pooled state may be mid-mutation;
    /// correctness beats reuse on that path.
    pub fn reset(&mut self) {
        *self = EpisodeScratch::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_pool_round_trips_without_reallocating() {
        let mut s = EpisodeScratch::new();
        let mut v = s.take_vector(2);
        v.refill_scan(roulette_core::RelId(0), 0, 100, &roulette_core::QuerySet::full(80), s.take_col());
        assert_eq!(v.len(), 100);
        s.release_vector(v);
        // Second acquisition reuses the shell and can change width.
        let v2 = s.take_vector(1);
        assert_eq!(v2.qsets.words_per_set(), 1);
        assert!(v2.is_empty());
        let (hits, misses) = s.take_reuse_counters();
        assert_eq!(hits, 1); // the pooled vector
        assert_eq!(misses, 2); // first vector + first column
        assert_eq!(s.take_reuse_counters(), (0, 0));
    }

    #[test]
    fn released_columns_feed_later_takes() {
        let mut s = EpisodeScratch::new();
        let mut c = s.take_col();
        c.extend_from_slice(&[1, 2, 3]);
        s.release_col(c);
        let c2 = s.take_col();
        assert!(c2.is_empty());
        assert!(c2.capacity() >= 3);
    }

    #[test]
    fn reset_restores_pristine_state() {
        let mut s = EpisodeScratch::new();
        let v = s.take_vector(1);
        s.release_vector(v);
        s.values.push(7);
        s.reset();
        assert!(s.values.is_empty());
        assert_eq!(s.take_reuse_counters(), (0, 0));
        // Pool emptied: next take allocates.
        let _ = s.take_vector(1);
        assert_eq!(s.take_reuse_counters(), (0, 1));
    }
}
