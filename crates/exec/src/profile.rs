//! Execution-time breakdown counters (Figs. 17–18's Filter/Build/Probe/
//! Route profile).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Cost categories in the paper's breakdown figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Selection-phase filtering (grouped filters + pruning semi-joins).
    Filter,
    /// STeM inserts (symmetric-join build side).
    Build,
    /// STeM probes.
    Probe,
    /// Output routing.
    Route,
}

/// Thread-safe accumulated nanoseconds per category.
#[derive(Debug, Default)]
pub struct Profile {
    filter_ns: AtomicU64,
    build_ns: AtomicU64,
    probe_ns: AtomicU64,
    route_ns: AtomicU64,
}

impl Profile {
    /// Zeroed profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `ns` to `cat`.
    #[inline]
    pub fn add(&self, cat: Category, ns: u64) {
        self.counter(cat).fetch_add(ns, Ordering::Relaxed);
    }

    /// Times `f` and charges it to `cat`.
    #[inline]
    pub fn time<T>(&self, cat: Category, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.add(cat, t0.elapsed().as_nanos() as u64);
        out
    }

    /// Accumulated nanoseconds for `cat`.
    pub fn get(&self, cat: Category) -> u64 {
        // ordering: profiling snapshot; tearing across categories is fine.
        self.counter(cat).load(Ordering::Relaxed)
    }

    /// `(filter, build, probe, route)` nanoseconds.
    pub fn breakdown(&self) -> (u64, u64, u64, u64) {
        (
            self.get(Category::Filter),
            self.get(Category::Build),
            self.get(Category::Probe),
            self.get(Category::Route),
        )
    }

    fn counter(&self, cat: Category) -> &AtomicU64 {
        match cat {
            Category::Filter => &self.filter_ns,
            Category::Build => &self.build_ns,
            Category::Probe => &self.probe_ns,
            Category::Route => &self.route_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let p = Profile::new();
        p.add(Category::Probe, 100);
        p.add(Category::Probe, 50);
        p.add(Category::Route, 7);
        assert_eq!(p.get(Category::Probe), 150);
        assert_eq!(p.breakdown(), (0, 0, 150, 7));
    }

    #[test]
    fn time_charges_elapsed() {
        let p = Profile::new();
        let v = p.time(Category::Filter, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(p.get(Category::Filter) >= 1_000_000);
    }
}
