//! Symmetric join pruning and scan-order ranking (§5.2).
//!
//! Symmetric joins materialize every relation; pruning cuts that cost by
//! dropping, before insertion, tuples that can no longer contribute output
//! for any of their queries. A tuple of `R` is checked by semi-joins
//! against *fully-ingested* joinable STeMs: for each query containing the
//! edge `R ⋈ S` (with `S` complete), the tuple keeps that query's bit only
//! if some `S` entry with a matching key carries it. Tuples whose
//! query-sets empty out are dropped.
//!
//! Because pruning needs fully-ingested relations, RouLette controls scan
//! *initiation order* with a ranking heuristic: small relations that sit on
//! the build side everywhere go first, large (prunable) relations last.

use roulette_core::RelId;
use roulette_query::QueryBatch;
use roulette_storage::Catalog;

/// Computes per-relation scan-initiation ranks for a batch (lower rank
/// scans earlier). Implements the §5.2 heuristic: starting from rank 0,
/// repeatedly (i) mark unranked relations that are no larger than every
/// joinable unranked relation, (ii) assign them the current rank. If a
/// round marks nothing (size ties in a cycle), the smallest unranked
/// relation is marked to guarantee progress. Unscanned relations get rank
/// `usize::MAX` and never gate anything.
pub fn rank_relations(batch: &QueryBatch, catalog: &Catalog) -> Vec<usize> {
    let n = catalog.len();
    let mut ranks = vec![usize::MAX; n];
    let scanned = batch.scanned_relations();
    let mut unranked: Vec<RelId> = scanned.iter().collect();

    // Adjacency via the batch's distinct edges.
    let joinable = |a: RelId, b: RelId| -> bool {
        batch.edges().iter().any(|e| {
            let (x, y) = e.rels();
            (x == a && y == b) || (x == b && y == a)
        })
    };

    let mut rank = 0usize;
    while !unranked.is_empty() {
        let mut marked: Vec<RelId> = unranked
            .iter()
            .copied()
            .filter(|&r| {
                unranked.iter().all(|&other| {
                    other == r
                        || !joinable(r, other)
                        || catalog.relation(r).rows() <= catalog.relation(other).rows()
                })
            })
            .collect();
        if marked.is_empty() {
            // Tie cycle: force the globally smallest to keep making progress.
            let smallest = *unranked
                .iter()
                .min_by_key(|&&r| catalog.relation(r).rows())
                .expect("unranked non-empty");
            marked.push(smallest);
        }
        for r in &marked {
            ranks[r.index()] = rank;
        }
        unranked.retain(|r| !marked.contains(r));
        rank += 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use roulette_query::SpjQuery;
    use roulette_storage::RelationBuilder;

    fn catalog_with_sizes(sizes: &[(&str, usize)]) -> Catalog {
        let mut c = Catalog::new();
        for &(name, rows) in sizes {
            let mut b = RelationBuilder::new(name);
            b.int64("k", (0..rows as i64).collect());
            c.add(b.build()).unwrap();
        }
        c
    }

    #[test]
    fn dimensions_rank_before_facts() {
        // fact(1000) joins d1(10) and d2(50); d2 joins d3(5).
        let c = catalog_with_sizes(&[("fact", 1000), ("d1", 10), ("d2", 50), ("d3", 5)]);
        let q = SpjQuery::builder(&c)
            .relation("fact").relation("d1").relation("d2").relation("d3")
            .join(("fact", "k"), ("d1", "k"))
            .join(("fact", "k"), ("d2", "k"))
            .join(("d2", "k"), ("d3", "k"))
            .build()
            .unwrap();
        let batch = QueryBatch::from_queries(c.len(), &[q]).unwrap();
        let ranks = rank_relations(&batch, &c);
        let id = |n: &str| c.relation_id(n).unwrap().index();
        // Every dimension must be ranked before the fact.
        assert!(ranks[id("d1")] < ranks[id("fact")]);
        assert!(ranks[id("d2")] < ranks[id("fact")]);
        assert!(ranks[id("d3")] < ranks[id("fact")]);
        // d3 (smaller) is not blocked by d2.
        assert!(ranks[id("d3")] <= ranks[id("d2")]);
    }

    #[test]
    fn non_adjacent_relations_do_not_gate_each_other() {
        // Two disjoint queries: big1⋈small1, big2⋈small2. The small ones
        // rank first in parallel.
        let c = catalog_with_sizes(&[("big1", 100), ("small1", 5), ("big2", 100), ("small2", 5)]);
        let q1 = SpjQuery::builder(&c)
            .relation("big1").relation("small1")
            .join(("big1", "k"), ("small1", "k"))
            .build()
            .unwrap();
        let q2 = SpjQuery::builder(&c)
            .relation("big2").relation("small2")
            .join(("big2", "k"), ("small2", "k"))
            .build()
            .unwrap();
        let batch = QueryBatch::from_queries(c.len(), &[q1, q2]).unwrap();
        let ranks = rank_relations(&batch, &c);
        let id = |n: &str| c.relation_id(n).unwrap().index();
        assert_eq!(ranks[id("small1")], ranks[id("small2")]);
        assert_eq!(ranks[id("big1")], ranks[id("big2")]);
    }

    #[test]
    fn unscanned_relations_get_max_rank() {
        let c = catalog_with_sizes(&[("a", 10), ("b", 10), ("unused", 10)]);
        let q = SpjQuery::builder(&c)
            .relation("a").relation("b")
            .join(("a", "k"), ("b", "k"))
            .build()
            .unwrap();
        let batch = QueryBatch::from_queries(c.len(), &[q]).unwrap();
        let ranks = rank_relations(&batch, &c);
        assert_eq!(ranks[c.relation_id("unused").unwrap().index()], usize::MAX);
    }

    #[test]
    fn equal_size_chain_terminates() {
        let c = catalog_with_sizes(&[("x", 10), ("y", 10), ("z", 10)]);
        let q = SpjQuery::builder(&c)
            .relation("x").relation("y").relation("z")
            .join(("x", "k"), ("y", "k"))
            .join(("y", "k"), ("z", "k"))
            .build()
            .unwrap();
        let batch = QueryBatch::from_queries(c.len(), &[q]).unwrap();
        let ranks = rank_relations(&batch, &c);
        // All ranked (progress guaranteed even with ties).
        assert!(ranks.iter().take(3).all(|&r| r != usize::MAX));
    }
}
