//! Host-side consumer operators.
//!
//! RouLette executes SPJ *sub-queries*; the host DBMS's executor consumes
//! their results through RouLette sources and applies the rest of the plan
//! — grouping, aggregation, ordering (the Γ and sort operators of
//! Figure 6). This module provides those consumers over collected result
//! rows so examples and applications can express complete analytical
//! queries.

use std::collections::HashMap;

/// An aggregate over one projected column position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// `COUNT(*)` (the column index is ignored).
    Count,
    /// `SUM(col)`.
    Sum(usize),
    /// `MIN(col)`.
    Min(usize),
    /// `MAX(col)`.
    Max(usize),
}

impl Aggregate {
    fn init(&self) -> i64 {
        match self {
            Aggregate::Count => 0,
            Aggregate::Sum(_) => 0,
            Aggregate::Min(_) => i64::MAX,
            Aggregate::Max(_) => i64::MIN,
        }
    }

    fn fold(&self, acc: i64, row: &[i64]) -> i64 {
        match self {
            Aggregate::Count => acc + 1,
            Aggregate::Sum(c) => acc.wrapping_add(row[*c]),
            Aggregate::Min(c) => acc.min(row[*c]),
            Aggregate::Max(c) => acc.max(row[*c]),
        }
    }
}

/// `GROUP BY key_cols` with one or more aggregates, like the Γ consumer in
/// Figure 6. Returns `[key values…, aggregate values…]` rows in
/// unspecified order (feed through [`order_by`] for the figure's sorted
/// output).
pub fn group_by(rows: &[Vec<i64>], key_cols: &[usize], aggs: &[Aggregate]) -> Vec<Vec<i64>> {
    let mut groups: HashMap<Vec<i64>, Vec<i64>> = HashMap::new();
    for row in rows {
        let key: Vec<i64> = key_cols.iter().map(|&c| row[c]).collect();
        let accs = groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|a| a.init()).collect());
        for (acc, agg) in accs.iter_mut().zip(aggs) {
            *acc = agg.fold(*acc, row);
        }
    }
    groups
        .into_iter()
        .map(|(mut key, accs)| {
            key.extend(accs);
            key
        })
        .collect()
}

/// `ORDER BY cols` (ascending); the sort consumer the optimizer adds when
/// a delegated sub-query's parent needs an interesting order (§3 — RouLette
/// itself does not preserve orders).
pub fn order_by(mut rows: Vec<Vec<i64>>, cols: &[usize]) -> Vec<Vec<i64>> {
    rows.sort_by(|a, b| {
        for &c in cols {
            match a[c].cmp(&b[c]) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<i64>> {
        vec![
            vec![1, 10, 5],
            vec![2, 20, 1],
            vec![1, 30, 7],
            vec![2, 40, 3],
            vec![1, 50, 2],
        ]
    }

    #[test]
    fn group_by_sum_and_count() {
        let out = order_by(
            group_by(&rows(), &[0], &[Aggregate::Sum(1), Aggregate::Count]),
            &[0],
        );
        assert_eq!(out, vec![vec![1, 90, 3], vec![2, 60, 2]]);
    }

    #[test]
    fn group_by_min_max() {
        let out = order_by(
            group_by(&rows(), &[0], &[Aggregate::Min(2), Aggregate::Max(2)]),
            &[0],
        );
        assert_eq!(out, vec![vec![1, 2, 7], vec![2, 1, 3]]);
    }

    #[test]
    fn global_aggregate_with_empty_key() {
        let out = group_by(&rows(), &[], &[Aggregate::Count, Aggregate::Sum(1)]);
        assert_eq!(out, vec![vec![5, 150]]);
    }

    #[test]
    fn order_by_multiple_columns() {
        let rows = vec![vec![2, 1], vec![1, 9], vec![2, 0], vec![1, 3]];
        let out = order_by(rows, &[0, 1]);
        assert_eq!(out, vec![vec![1, 3], vec![1, 9], vec![2, 0], vec![2, 1]]);
    }

    #[test]
    fn empty_input() {
        assert!(group_by(&[], &[0], &[Aggregate::Count]).is_empty());
        assert!(order_by(Vec::new(), &[0]).is_empty());
    }
}
