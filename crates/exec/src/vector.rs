//! Intermediate data vectors.
//!
//! The prototype uses columnar data with late materialization (§3): a
//! vector carries one virtual-ID (vID) column per base relation present in
//! its lineage, plus the tuples' query-sets. Operators gather attribute
//! mini-columns from base storage on demand. Adaptive projections (§5.2)
//! drop vID columns that no downstream operator needs.

use roulette_core::{QuerySet, QuerySetColumn, RelId, RowMask};

use crate::kernels::Kernels;

/// A batch of Data-Query-model tuples in vID form.
#[derive(Debug, Clone)]
pub struct DataVector {
    /// One `(relation, vID column)` pair per lineage relation still
    /// carried. Order is insertion order (probe order).
    cols: Vec<(RelId, Vec<u32>)>,
    /// Per-tuple query-sets, aligned with the vID columns.
    pub qsets: QuerySetColumn,
}

impl DataVector {
    /// An empty vector whose query-sets are `words_per_set` words wide.
    pub fn new(words_per_set: usize) -> Self {
        DataVector { cols: Vec::new(), qsets: QuerySetColumn::new(words_per_set) }
    }

    /// Builds a base-scan vector: rows `start..end` of `rel`, all annotated
    /// with `queries`.
    pub fn from_scan(rel: RelId, start: usize, end: usize, queries: &QuerySet) -> Self {
        let n = end - start;
        let mut qsets = QuerySetColumn::with_capacity(queries.width(), n);
        let mut vids = Vec::with_capacity(n);
        for row in start..end {
            vids.push(row as u32);
            qsets.push(queries.words());
        }
        DataVector { cols: vec![(rel, vids)], qsets }
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.qsets.len()
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.qsets.is_empty()
    }

    /// The carried `(relation, vID column)` pairs.
    #[inline]
    pub fn columns(&self) -> &[(RelId, Vec<u32>)] {
        &self.cols
    }

    /// The vID column of `rel`, if still carried.
    pub fn vids_of(&self, rel: RelId) -> Option<&[u32]> {
        self.cols.iter().find(|(r, _)| *r == rel).map(|(_, v)| v.as_slice())
    }

    /// Appends a vID column (used when constructing probe outputs).
    pub fn push_column(&mut self, rel: RelId, vids: Vec<u32>) {
        debug_assert!(self.vids_of(rel).is_none(), "duplicate column for {rel}");
        debug_assert!(vids.len() == self.len() || self.cols.is_empty());
        self.cols.push((rel, vids));
    }

    /// Drops every vID column whose relation is not in `keep` — the
    /// adaptive-projection primitive.
    pub fn project(&mut self, keep: impl Fn(RelId) -> bool) {
        self.cols.retain(|(r, _)| keep(*r));
    }

    /// Keeps only tuples where `keep[i]`, compacting all columns.
    pub fn retain(&mut self, keep: &[bool]) {
        debug_assert_eq!(keep.len(), self.len());
        for (_, vids) in &mut self.cols {
            let mut out = 0;
            for (i, &k) in keep.iter().enumerate() {
                if k {
                    vids[out] = vids[i];
                    out += 1;
                }
            }
            vids.truncate(out);
        }
        self.qsets.retain_rows(keep);
    }

    /// Keeps only tuples whose bit is set in `keep`, compacting every vID
    /// column and the query-set column through the selected compaction
    /// kernel — the mask-driven replacement for [`retain`](Self::retain)
    /// on the episode hot path.
    // lint: hot-loop
    pub fn retain_mask(&mut self, keep: &RowMask, kernels: Kernels) {
        debug_assert_eq!(keep.len(), self.len());
        for (_, vids) in &mut self.cols {
            kernels.compact_u32(vids, keep);
        }
        kernels.compact_qsets(&mut self.qsets, keep);
    }

    /// Clears tuples but keeps column structure and allocations.
    pub fn clear_rows(&mut self) {
        for (_, vids) in &mut self.cols {
            vids.clear();
        }
        self.qsets.clear();
    }

    /// Empties the vector, handing its vID column buffers (cleared,
    /// capacity kept) back to `col_pool`. Together with
    /// [`set_words_per_set`](Self::set_words_per_set) this is the
    /// scratch-arena recycling protocol: no buffer is dropped, only parked.
    pub fn recycle(&mut self, col_pool: &mut Vec<Vec<u32>>) {
        for (_, mut vids) in self.cols.drain(..) {
            vids.clear();
            col_pool.push(vids);
        }
        self.qsets.clear();
    }

    /// Re-widths an *empty* vector's query-set column (pooled vectors are
    /// width-agnostic between uses).
    pub fn set_words_per_set(&mut self, words_per_set: usize) {
        debug_assert!(self.is_empty() && self.cols.is_empty());
        self.qsets.reset(words_per_set);
    }

    /// Fills an *empty* vector with the base-scan rows `start..end` of
    /// `rel`, all annotated with `queries`, using `vids` as the (recycled)
    /// column buffer — the pooled counterpart of [`from_scan`](Self::from_scan).
    pub fn refill_scan(
        &mut self,
        rel: RelId,
        start: usize,
        end: usize,
        queries: &QuerySet,
        mut vids: Vec<u32>,
    ) {
        debug_assert!(self.is_empty() && self.cols.is_empty());
        debug_assert_eq!(self.qsets.words_per_set(), queries.width());
        vids.clear();
        vids.extend(start as u32..end as u32);
        self.qsets.push_repeat(queries.words(), end - start);
        self.cols.push((rel, vids));
    }

    /// Copies tuples `[start, end)` into `out` (an empty vector of the same
    /// query-set width), drawing column buffers from `col_pool` — the
    /// pooled counterpart of [`slice`](Self::slice) for pending-vector
    /// chunking.
    pub fn copy_range_into(
        &self,
        start: usize,
        end: usize,
        out: &mut DataVector,
        col_pool: &mut Vec<Vec<u32>>,
    ) {
        debug_assert!(start <= end && end <= self.len());
        debug_assert!(out.is_empty() && out.cols.is_empty());
        debug_assert_eq!(out.qsets.words_per_set(), self.qsets.words_per_set());
        for (rel, vids) in &self.cols {
            let mut buf = col_pool.pop().unwrap_or_default();
            buf.clear();
            buf.extend_from_slice(&vids[start..end]);
            out.cols.push((*rel, buf));
        }
        let wps = self.qsets.words_per_set();
        out.qsets.push_rows(&self.qsets.raw()[start * wps..end * wps]);
    }

    /// Copies tuples `[start, end)` into a new vector with the same
    /// columns (pending-vector chunking).
    pub fn slice(&self, start: usize, end: usize) -> DataVector {
        debug_assert!(start <= end && end <= self.len());
        let mut qsets =
            roulette_core::QuerySetColumn::with_capacity(self.qsets.words_per_set(), end - start);
        for i in start..end {
            qsets.push(self.qsets.row(i));
        }
        DataVector {
            cols: self
                .cols
                .iter()
                .map(|(rel, vids)| (*rel, vids[start..end].to_vec()))
                .collect(),
            qsets,
        }
    }

    /// Total vID cells carried (a footprint metric for the adaptive-
    /// projection ablation).
    pub fn footprint_cells(&self) -> usize {
        self.cols.iter().map(|(_, v)| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_scan_builds_aligned_columns() {
        let qs = QuerySet::full(3);
        let v = DataVector::from_scan(RelId(2), 10, 14, &qs);
        assert_eq!(v.len(), 4);
        assert_eq!(v.vids_of(RelId(2)).unwrap(), &[10, 11, 12, 13]);
        assert!(v.vids_of(RelId(0)).is_none());
        for i in 0..4 {
            assert_eq!(v.qsets.get(i).len(), 3);
        }
    }

    #[test]
    fn retain_compacts_all_columns() {
        let qs = QuerySet::full(1);
        let mut v = DataVector::from_scan(RelId(0), 0, 4, &qs);
        v.push_column(RelId(1), vec![9, 8, 7, 6]);
        v.retain(&[true, false, false, true]);
        assert_eq!(v.len(), 2);
        assert_eq!(v.vids_of(RelId(0)).unwrap(), &[0, 3]);
        assert_eq!(v.vids_of(RelId(1)).unwrap(), &[9, 6]);
    }

    #[test]
    fn project_drops_columns() {
        let qs = QuerySet::full(1);
        let mut v = DataVector::from_scan(RelId(0), 0, 2, &qs);
        v.push_column(RelId(1), vec![5, 5]);
        assert_eq!(v.footprint_cells(), 4);
        v.project(|r| r == RelId(1));
        assert!(v.vids_of(RelId(0)).is_none());
        assert!(v.vids_of(RelId(1)).is_some());
        assert_eq!(v.footprint_cells(), 2);
        // Row data survives projection.
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn slice_copies_rows_and_columns() {
        let qs = QuerySet::full(2);
        let mut v = DataVector::from_scan(RelId(0), 0, 6, &qs);
        v.push_column(RelId(1), vec![10, 11, 12, 13, 14, 15]);
        let s = v.slice(2, 5);
        assert_eq!(s.len(), 3);
        assert_eq!(s.vids_of(RelId(0)).unwrap(), &[2, 3, 4]);
        assert_eq!(s.vids_of(RelId(1)).unwrap(), &[12, 13, 14]);
        assert_eq!(s.qsets.row(0), v.qsets.row(2));
        let empty = v.slice(3, 3);
        assert!(empty.is_empty());
    }

    #[test]
    fn empty_scan_vector() {
        let qs = QuerySet::full(1);
        let v = DataVector::from_scan(RelId(0), 5, 5, &qs);
        assert!(v.is_empty());
    }
}
