//! [`PlanSpace`] implementations for the two episode phases (§3, §4.1).
//!
//! * [`JoinSpace`] — operators are the batch's distinct join edges, the
//!   lineage is a relation bitset, candidates follow Definition 5 over the
//!   join dependency graph, and divergence is driven by each edge's `Q_o`.
//! * [`SelectionSpace`] — operators are one relation's selection groups,
//!   the lineage is an applied-operator bitset, and `Q_o` is the full
//!   query set (a selection evaluates a TRUE predicate for queries without
//!   one, so ordering decisions never diverge); groups whose predicate
//!   owners don't intersect the vector's queries are no-ops and excluded
//!   from the candidate set.

use roulette_core::{OpKind, QuerySet, RelId, RelSet};
use roulette_policy::{Lineage, OpId, PlanSpace};
use roulette_query::QueryBatch;

/// Join-phase plan space over a batch's distinct edges.
pub struct JoinSpace<'a> {
    batch: &'a QueryBatch,
}

impl<'a> JoinSpace<'a> {
    /// Wraps a batch.
    pub fn new(batch: &'a QueryBatch) -> Self {
        JoinSpace { batch }
    }
}

impl PlanSpace for JoinSpace<'_> {
    fn candidates(&self, lineage: Lineage, queries: &QuerySet, out: &mut Vec<OpId>) {
        self.batch.join_candidates(RelSet(lineage), queries, out);
    }

    fn op_queries(&self, op: OpId) -> &QuerySet {
        self.batch.edge_queries(op)
    }

    fn op_kind(&self, _op: OpId) -> OpKind {
        OpKind::Join
    }

    fn apply(&self, lineage: Lineage, op: OpId) -> Lineage {
        let (a, b) = self.batch.edge(op).rels();
        RelSet(lineage).with(a).with(b).0
    }
}

/// Selection-phase plan space for one relation.
pub struct SelectionSpace<'a> {
    /// Predicate owners per local group (aligned with
    /// `batch.selections_of(rel)`).
    owners: Vec<&'a QuerySet>,
    /// The all-queries set (`Q_o` of every selection operator).
    full: &'a QuerySet,
}

impl<'a> SelectionSpace<'a> {
    /// Builds the space for `rel`. `sel_owners` maps *global* selection
    /// group ids to their predicate-owner query-sets; `full` is the
    /// batch-capacity full set.
    pub fn new(
        batch: &'a QueryBatch,
        rel: RelId,
        sel_owners: &'a [QuerySet],
        full: &'a QuerySet,
    ) -> Self {
        let owners =
            batch.selections_of(rel).iter().map(|&g| &sel_owners[g as usize]).collect();
        SelectionSpace { owners, full }
    }

    /// Number of selection operators for the relation.
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// Whether the relation has no selection groups.
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }
}

impl PlanSpace for SelectionSpace<'_> {
    fn candidates(&self, lineage: Lineage, queries: &QuerySet, out: &mut Vec<OpId>) {
        out.clear();
        for (i, owners) in self.owners.iter().enumerate() {
            if lineage & (1 << i) == 0 && owners.intersects(queries) {
                out.push(i as OpId);
            }
        }
    }

    fn op_queries(&self, _op: OpId) -> &QuerySet {
        self.full
    }

    fn op_kind(&self, _op: OpId) -> OpKind {
        OpKind::Selection
    }

    fn apply(&self, lineage: Lineage, op: OpId) -> Lineage {
        lineage | (1 << op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roulette_core::QueryId;
    use roulette_query::SpjQuery;
    use roulette_storage::{Catalog, RelationBuilder};

    fn setup() -> (Catalog, QueryBatch) {
        let mut c = Catalog::new();
        for name in ["r", "s", "t"] {
            let mut b = RelationBuilder::new(name);
            b.int64("k", vec![0, 1]);
            b.int64("v", vec![0, 1]);
            c.add(b.build()).unwrap();
        }
        let q0 = SpjQuery::builder(&c)
            .relation("r").relation("s")
            .join(("r", "k"), ("s", "k"))
            .range("r", "v", 0, 0)
            .build()
            .unwrap();
        let q1 = SpjQuery::builder(&c)
            .relation("r").relation("s").relation("t")
            .join(("r", "k"), ("s", "k"))
            .join(("s", "k"), ("t", "k"))
            .range("r", "k", 0, 1)
            .build()
            .unwrap();
        let batch = QueryBatch::from_queries(c.len(), &[q0, q1]).unwrap();
        (c, batch)
    }

    #[test]
    fn join_space_candidates_and_apply() {
        let (c, batch) = setup();
        let space = JoinSpace::new(&batch);
        let r = c.relation_id("r").unwrap();
        let mut out = Vec::new();
        space.candidates(RelSet::singleton(r).0, &QuerySet::full(2), &mut out);
        assert_eq!(out.len(), 1); // only R⋈S from {R}
        let next = space.apply(RelSet::singleton(r).0, out[0]);
        assert_eq!(RelSet(next).len(), 2);
        assert_eq!(space.op_kind(out[0]), OpKind::Join);
        // From {R,S}, S⋈T appears but only intersects Q1.
        space.candidates(next, &QuerySet::singleton(QueryId(0), 2), &mut out);
        assert!(out.is_empty());
        space.candidates(next, &QuerySet::full(2), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn selection_space_skips_irrelevant_groups() {
        let (c, batch) = setup();
        let full = QuerySet::full(2);
        let owners: Vec<QuerySet> = batch
            .selection_groups()
            .iter()
            .map(|g| {
                let mut qs = QuerySet::empty(2);
                for &(q, _, _) in &g.preds {
                    qs.insert(q);
                }
                qs
            })
            .collect();
        let r = c.relation_id("r").unwrap();
        let space = SelectionSpace::new(&batch, r, &owners, &full);
        assert_eq!(space.len(), 2); // r.v (q0) and r.k (q1)
        let mut out = Vec::new();
        space.candidates(0, &full, &mut out);
        assert_eq!(out.len(), 2);
        // With only Q0 active, the r.k group (owned by Q1) is a no-op.
        space.candidates(0, &QuerySet::singleton(QueryId(0), 2), &mut out);
        assert_eq!(out.len(), 1);
        // Applied groups drop out.
        space.candidates(0b1, &full, &mut out);
        assert_eq!(out, vec![1]);
        // Selections never diverge: Q_o is the full set.
        assert_eq!(space.op_queries(0), &full);
        assert_eq!(space.op_kind(0), OpKind::Selection);
    }
}
