//! Multi-step optimization — the eddy's planning logic (§4.1, Algorithm 1).
//!
//! At each episode's start, the eddy builds the episode's two plans by a
//! sequence of policy decisions. Starting from the plan's input virtual
//! vector, each decision picks a candidate operator; *sharing* keeps one
//! output sub-expression, *divergence* splits the vector into
//! `(L ∪ {o}, Q ∩ Q_o)` and `(L, Q − Q_o)` with a routing selection on the
//! second branch; a null decision (no candidates) emits a router to the
//! query-set's RouLette sources.
//!
//! A second bottom-up pass assigns *adaptive projections* (§5.2): each
//! probe records the minimal set of vID columns its output vectors must
//! carry, derived from downstream probe keys and the output projections.

use crate::spaces::{JoinSpace, SelectionSpace};
use roulette_core::{ColId, QuerySet, RelId, RelSet};
use roulette_policy::{OpId, PlanSpace, Policy, Scope};
use roulette_query::{EdgeId, QueryBatch};

/// A probe step of the join-phase plan.
#[derive(Debug)]
pub struct ProbeNode {
    /// The applied join edge.
    pub edge: EdgeId,
    /// Input lineage `L`.
    pub lineage: RelSet,
    /// Input query-set `Q`.
    pub queries: QuerySet,
    /// `Q ∩ Q_o` — queries continuing through the probe.
    pub main_queries: QuerySet,
    /// `Q − Q_o` — queries routed around the probe, when non-empty.
    pub div_queries: Option<QuerySet>,
    /// Lineage-side relation whose key drives the probe.
    pub probe_rel: RelId,
    /// Key column on the probe side.
    pub probe_col: ColId,
    /// Probed (target) relation.
    pub target_rel: RelId,
    /// Key column on the target side (a STeM index of `target_rel`).
    pub target_col: ColId,
    /// vID columns the main output vector carries (adaptive projection).
    pub keep_main: RelSet,
    /// vID columns the divergence vector carries.
    pub keep_div: RelSet,
    /// Plan for the probe output.
    pub main: JoinNode,
    /// Plan for the divergence branch.
    pub div: Option<JoinNode>,
}

/// A join-phase plan node.
#[derive(Debug)]
pub enum JoinNode {
    /// STeM probe (with optional divergence routing selection).
    Probe(Box<ProbeNode>),
    /// Router to the query-set's RouLette sources (null decision).
    Output {
        /// The routed queries.
        queries: QuerySet,
    },
}

impl JoinNode {
    /// Renders the plan as an indented tree (EXPLAIN-style), resolving
    /// names through the catalog.
    pub fn explain(&self, catalog: &roulette_storage::Catalog) -> String {
        let mut out = String::new();
        self.explain_into(catalog, 0, &mut out);
        out
    }

    fn explain_into(&self, catalog: &roulette_storage::Catalog, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match self {
            JoinNode::Output { queries } => {
                let _ = writeln!(out, "{pad}Router → {queries:?}");
            }
            JoinNode::Probe(p) => {
                let probe = catalog.relation(p.probe_rel);
                let target = catalog.relation(p.target_rel);
                let _ = writeln!(
                    out,
                    "{pad}Probe STeM({}) on {}.{} = {}.{}  Q={:?}{}",
                    target.name(),
                    probe.name(),
                    probe.column_name(p.probe_col),
                    target.name(),
                    target.column_name(p.target_col),
                    p.main_queries,
                    if p.div_queries.is_some() { "  [diverges]" } else { "" },
                );
                p.main.explain_into(catalog, depth + 1, out);
                if let (Some(d), Some(dq)) = (&p.div, &p.div_queries) {
                    let _ = writeln!(out, "{pad}RoutingSelection → {dq:?}");
                    d.explain_into(catalog, depth + 1, out);
                }
            }
        }
    }

    /// Number of probe nodes in the plan (diagnostics).
    pub fn probe_count(&self) -> usize {
        match self {
            JoinNode::Output { .. } => 0,
            JoinNode::Probe(p) => {
                1 + p.main.probe_count() + p.div.as_ref().map_or(0, |d| d.probe_count())
            }
        }
    }
}

/// Builds the episode's join-phase plan for a vector of `root` tuples
/// carrying `queries` (Algorithm 1 with the learned policy making
/// Definition 6's decisions).
pub fn plan_join_phase(
    batch: &QueryBatch,
    space: &JoinSpace<'_>,
    policy: &mut dyn Policy,
    root: RelId,
    queries: &QuerySet,
) -> JoinNode {
    build_join(batch, space, policy, RelSet::singleton(root), queries.clone())
}

fn build_join(
    batch: &QueryBatch,
    space: &JoinSpace<'_>,
    policy: &mut dyn Policy,
    lineage: RelSet,
    queries: QuerySet,
) -> JoinNode {
    let mut candidates: Vec<OpId> = Vec::new();
    batch.join_candidates(lineage, &queries, &mut candidates);
    if candidates.is_empty() {
        return JoinNode::Output { queries };
    }
    let op = policy.choose(Scope::JOIN, lineage.0, &queries, &candidates, space);
    let edge = batch.edge(op);
    let edge_q = batch.edge_queries(op);
    let (a, _) = edge.rels();
    let (probe_side, target_side) = if lineage.contains(a) {
        (edge.left, edge.right)
    } else {
        (edge.right, edge.left)
    };

    let main_queries = queries.intersection(edge_q);
    let div_q = queries.difference(edge_q);
    let next_lineage = lineage.with(target_side.0);

    let main = build_join(batch, space, policy, next_lineage, main_queries.clone());
    let (div_queries, div) = if div_q.is_empty() {
        (None, None)
    } else {
        let child = build_join(batch, space, policy, lineage, div_q.clone());
        (Some(div_q), Some(child))
    };

    JoinNode::Probe(Box::new(ProbeNode {
        edge: op,
        lineage,
        queries,
        main_queries,
        div_queries,
        probe_rel: probe_side.0,
        probe_col: probe_side.1,
        target_rel: target_side.0,
        target_col: target_side.1,
        keep_main: RelSet::EMPTY, // assigned by `assign_projections`
        keep_div: RelSet::EMPTY,
        main,
        div,
    }))
}

/// Bottom-up adaptive-projection pass: computes, per probe, the minimal
/// vID columns its outputs must carry. `proj_rels(q)` is the set of
/// relations query `q` projects. When `enabled` is false every lineage
/// column is kept (the "Plain" ablation configuration). Returns the
/// columns the plan's *input* vector must carry.
pub fn assign_projections(
    node: &mut JoinNode,
    proj_rels: &impl Fn(roulette_core::QueryId) -> RelSet,
    enabled: bool,
) -> RelSet {
    match node {
        JoinNode::Output { queries } => {
            let mut needed = RelSet::EMPTY;
            for q in queries.iter() {
                needed = needed.union(proj_rels(q));
            }
            needed
        }
        JoinNode::Probe(p) => {
            let n_main = assign_projections(&mut p.main, proj_rels, enabled);
            let n_div = match &mut p.div {
                Some(d) => assign_projections(d, proj_rels, enabled),
                None => RelSet::EMPTY,
            };
            if enabled {
                p.keep_main = n_main;
                p.keep_div = n_div;
                n_main.minus(RelSet::singleton(p.target_rel))
                    .union(n_div)
                    .union(RelSet::singleton(p.probe_rel))
            } else {
                let all_main = p.lineage.with(p.target_rel);
                p.keep_main = all_main;
                p.keep_div = p.lineage;
                p.lineage
            }
        }
    }
}

/// Builds the episode's selection-phase plan: an operator order over the
/// relation's applicable selection groups.
pub fn plan_selection_phase(
    space: &SelectionSpace<'_>,
    policy: &mut dyn Policy,
    rel: RelId,
    queries: &QuerySet,
) -> Vec<OpId> {
    let scope = Scope::selection(rel);
    let mut order = Vec::with_capacity(space.len());
    let mut lineage = 0u64;
    let mut candidates: Vec<OpId> = Vec::new();
    loop {
        space.candidates(lineage, queries, &mut candidates);
        if candidates.is_empty() {
            return order;
        }
        let op = policy.choose(scope, lineage, queries, &candidates, space);
        order.push(op);
        lineage |= 1 << op;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roulette_core::QueryId;
    use roulette_policy::RandomPolicy;
    use roulette_query::SpjQuery;
    use roulette_storage::{Catalog, RelationBuilder};

    /// Figure 1/2's setup: Q1 = R⋈S⋈T⋈U (R-S, R-T, S-U),
    /// Q2 = R⋈S⋈U⋈V (R-S, S-U, S-V).
    fn fig2() -> (Catalog, QueryBatch) {
        let mut c = Catalog::new();
        for name in ["r", "s", "t", "u", "v"] {
            let mut b = RelationBuilder::new(name);
            for col in ["a", "b", "c", "d"] {
                b.int64(col, vec![0, 1]);
            }
            c.add(b.build()).unwrap();
        }
        let q1 = SpjQuery::builder(&c)
            .relation("r").relation("s").relation("t").relation("u")
            .join(("r", "a"), ("s", "a"))
            .join(("r", "b"), ("t", "b"))
            .join(("s", "c"), ("u", "c"))
            .build()
            .unwrap();
        let q2 = SpjQuery::builder(&c)
            .relation("r").relation("s").relation("u").relation("v")
            .join(("r", "a"), ("s", "a"))
            .join(("s", "c"), ("u", "c"))
            .join(("s", "d"), ("v", "d"))
            .build()
            .unwrap();
        let b = QueryBatch::from_queries(c.len(), &[q1, q2]).unwrap();
        (c, b)
    }

    /// Every query must be routed to output exactly once (Algorithm 1's
    /// correctness property), regardless of the policy's decisions.
    fn count_outputs(node: &JoinNode, per_query: &mut [usize]) {
        match node {
            JoinNode::Output { queries } => {
                for q in queries.iter() {
                    per_query[q.index()] += 1;
                }
            }
            JoinNode::Probe(p) => {
                count_outputs(&p.main, per_query);
                if let Some(d) = &p.div {
                    count_outputs(d, per_query);
                }
            }
        }
    }

    #[test]
    fn every_query_reaches_exactly_one_output() {
        let (c, batch) = fig2();
        let space = JoinSpace::new(&batch);
        let r = c.relation_id("r").unwrap();
        let all = QuerySet::full(2);
        for seed in 0..30 {
            let mut policy = RandomPolicy::new(seed);
            let plan = plan_join_phase(&batch, &space, &mut policy, r, &all);
            let mut per_query = [0usize; 2];
            count_outputs(&plan, &mut per_query);
            assert_eq!(per_query, [1, 1], "seed {seed}");
        }
    }

    #[test]
    fn plans_from_every_scan_root_are_complete() {
        let (c, batch) = fig2();
        let space = JoinSpace::new(&batch);
        let all = QuerySet::full(2);
        for name in ["r", "s", "u"] {
            let root = c.relation_id(name).unwrap();
            let mut policy = RandomPolicy::new(7);
            let plan = plan_join_phase(&batch, &space, &mut policy, root, &all);
            let mut per_query = [0usize; 2];
            count_outputs(&plan, &mut per_query);
            assert_eq!(per_query, [1, 1], "root {name}");
        }
        // T is scanned only by Q1.
        let t = c.relation_id("t").unwrap();
        let mut policy = RandomPolicy::new(7);
        let q1_only = QuerySet::singleton(QueryId(0), 2);
        let plan = plan_join_phase(&batch, &space, &mut policy, t, &q1_only);
        let mut per_query = [0usize; 2];
        count_outputs(&plan, &mut per_query);
        assert_eq!(per_query, [1, 0]);
    }

    #[test]
    fn divergence_splits_query_sets_disjointly() {
        fn check(node: &JoinNode) {
            if let JoinNode::Probe(p) = node {
                if let Some(div_q) = &p.div_queries {
                    assert!(!p.main_queries.intersects(div_q));
                    let mut union = p.main_queries.clone();
                    union.union_with(div_q);
                    assert_eq!(union, p.queries);
                }
                check(&p.main);
                if let Some(d) = &p.div {
                    check(d);
                }
            }
        }
        let (c, batch) = fig2();
        let space = JoinSpace::new(&batch);
        let r = c.relation_id("r").unwrap();
        for seed in 0..10 {
            let mut policy = RandomPolicy::new(seed);
            let plan = plan_join_phase(&batch, &space, &mut policy, r, &QuerySet::full(2));
            check(&plan);
        }
    }

    #[test]
    fn projection_pass_keeps_probe_keys_and_projected_rels() {
        let (c, batch) = fig2();
        let space = JoinSpace::new(&batch);
        let r = c.relation_id("r").unwrap();
        let mut policy = RandomPolicy::new(3);
        let mut plan = plan_join_phase(&batch, &space, &mut policy, r, &QuerySet::full(2));
        // COUNT(*) queries: nothing projected.
        let input_needed =
            assign_projections(&mut plan, &|_q| RelSet::EMPTY, true);
        assert!(input_needed.is_subset_of(RelSet::singleton(r)));
        fn check(node: &JoinNode) {
            if let JoinNode::Probe(p) = node {
                // Whatever the main child probes from must be kept.
                if let JoinNode::Probe(m) = &p.main {
                    assert!(
                        p.keep_main.contains(m.probe_rel),
                        "dropped a column still needed as probe key"
                    );
                }
                check(&p.main);
                if let Some(d) = &p.div {
                    check(d);
                }
            }
        }
        check(&plan);
    }

    #[test]
    fn disabled_projections_keep_everything() {
        let (c, batch) = fig2();
        let space = JoinSpace::new(&batch);
        let r = c.relation_id("r").unwrap();
        let mut policy = RandomPolicy::new(3);
        let mut plan = plan_join_phase(&batch, &space, &mut policy, r, &QuerySet::full(2));
        assign_projections(&mut plan, &|_q| RelSet::EMPTY, false);
        if let JoinNode::Probe(p) = &plan {
            assert_eq!(p.keep_main, p.lineage.with(p.target_rel));
        } else {
            panic!("expected probe at root");
        }
    }

    #[test]
    fn explain_renders_probes_and_routers() {
        let (c, batch) = fig2();
        let space = JoinSpace::new(&batch);
        let r = c.relation_id("r").unwrap();
        let mut policy = RandomPolicy::new(1);
        let plan = plan_join_phase(&batch, &space, &mut policy, r, &QuerySet::full(2));
        let text = plan.explain(&c);
        assert!(text.contains("Probe STeM("));
        assert!(text.contains("Router →"));
        // Both queries' routers appear.
        assert!(text.contains("Q0") && text.contains("Q1"));
    }

    #[test]
    fn selection_plan_orders_all_applicable_groups() {
        let mut c = Catalog::new();
        let mut b = RelationBuilder::new("r");
        b.int64("x", vec![0]);
        b.int64("y", vec![0]);
        c.add(b.build()).unwrap();
        let q0 = SpjQuery::builder(&c).relation("r").range("r", "x", 0, 5).build().unwrap();
        let q1 = SpjQuery::builder(&c).relation("r").range("r", "y", 0, 5).build().unwrap();
        let batch = QueryBatch::from_queries(1, &[q0, q1]).unwrap();
        let owners: Vec<QuerySet> = batch
            .selection_groups()
            .iter()
            .map(|g| {
                let mut qs = QuerySet::empty(2);
                for &(q, _, _) in &g.preds {
                    qs.insert(q);
                }
                qs
            })
            .collect();
        let full = QuerySet::full(2);
        let rel = RelId(0);
        let space = SelectionSpace::new(&batch, rel, &owners, &full);
        let mut policy = RandomPolicy::new(0);
        let order = plan_selection_phase(&space, &mut policy, rel, &full);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
        // With only Q0 active, only its group is planned.
        let q0_only = QuerySet::singleton(QueryId(0), 2);
        let order = plan_selection_phase(&space, &mut policy, rel, &q0_only);
        assert_eq!(order.len(), 1);
    }
}
