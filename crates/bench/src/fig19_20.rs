//! Figures 19–20 — multi-core scale-up and concurrent-client
//! interference.

use crate::harness::{fmt_qps, fmt_x, print_table, qps, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use roulette_baselines::{ExecMode, QatEngine};
use roulette_core::EngineConfig;
use roulette_query::generator::{job_pool, sample_batch, tpcds_pool, SensitivityParams};
use roulette_storage::datagen::{imdb, tpcds};

fn cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Fig. 19: RouLette speedup vs worker count on JOB batches.
pub fn fig19(scale: Scale) {
    let ds = imdb::generate(scale.sf(0.25), scale.seed);
    let pool = job_pool(&ds, scale.n(64), scale.seed).expect("workload generation");
    // The ladder always includes 2 and 4 workers so the harness exercises
    // the worker pool even on small containers; real speedup needs real
    // cores (the paper's 12-core socket reaches 8.6–9.0x).
    let max_workers = cores().clamp(4, 12);
    let mut worker_counts = vec![1usize];
    while *worker_counts.last().unwrap() * 2 <= max_workers {
        worker_counts.push(worker_counts.last().unwrap() * 2);
    }
    // The doubling ladder tops out below `max_workers` on non-power-of-2
    // machines (e.g. 6 or 12 cores stop at 4 or 8); always measure the
    // full machine too.
    if *worker_counts.last().unwrap() != max_workers {
        worker_counts.push(max_workers);
    }
    println!("(detected {} core(s))", cores());

    let mut header = vec!["batch".to_string()];
    header.extend(worker_counts.iter().map(|w| format!("{w} workers")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    let mut rows = Vec::new();
    for b in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(scale.seed + b * 97);
        let queries = sample_batch(&pool, scale.n(24), &mut rng);
        let mut row = vec![format!("{}", b + 1)];
        let mut t1 = None;
        for &w in &worker_counts {
            // Sharded STeMs (uniform across the ladder so every rung runs
            // the same storage layout): workers inserting into different
            // shards skip the write-latch serialization that used to flatten
            // the slope past 4 cores.
            let engine = crate::harness::engine(
                &ds.catalog,
                EngineConfig::default()
                    .with_workers(w)
                    .unwrap()
                    .with_stem_shards(8)
                    .unwrap(),
            );
            let (elapsed, _) =
                crate::harness::time(|| engine.execute_batch(&queries).expect("batch"));
            let base = *t1.get_or_insert(elapsed);
            row.push(fmt_x(base.as_secs_f64() / elapsed.as_secs_f64()));
        }
        rows.push(row);
    }
    print_table("Fig 19: RouLette speedup vs cores (JOB batches)", &header_refs, &rows);
}

/// Fig. 20: throughput under concurrent clients — DBMS-V runs one query
/// per client thread (inter-query interference), RouLette batches one
/// query per client across all cores.
pub fn fig20(scale: Scale) {
    let ds = tpcds::generate(scale.sf(0.4), scale.seed);
    let pool = tpcds_pool(&ds, SensitivityParams::default(), scale.n(128), scale.seed + 20).expect("workload generation");
    let qat = QatEngine::new(&ds.catalog, ExecMode::Vectorized, 7);

    let max_clients = scale.n(64).min(pool.len());
    let mut clients = vec![1usize];
    while *clients.last().unwrap() * 4 <= max_clients {
        clients.push(clients.last().unwrap() * 4);
    }

    let mut rows = Vec::new();
    for &n in &clients {
        let queries = &pool[..n];
        // DBMS-V: one client → data-parallel single query stream; many
        // clients → one thread per client, each running its query.
        let (qat_time, _) = crate::harness::time(|| {
            if n == 1 {
                let _ = qat.execute_parallel(&queries[0], cores());
            } else {
                std::thread::scope(|scope| {
                    for q in queries {
                        scope.spawn(|| {
                            let _ = qat.execute(q);
                        });
                    }
                });
            }
        });
        // RouLette: one batch with a query per client, all cores, sharded
        // STeMs so the build side scales with the worker pool.
        let engine = crate::harness::engine(
            &ds.catalog,
            EngineConfig::default()
                .with_workers(cores().min(12))
                .unwrap()
                .with_stem_shards(8)
                .unwrap(),
        );
        let (rl_time, _) =
            crate::harness::time(|| engine.execute_batch(queries).expect("batch"));
        rows.push(vec![
            n.to_string(),
            fmt_qps(qps(n, qat_time)),
            fmt_qps(qps(n, rl_time)),
        ]);
    }
    print_table(
        "Fig 20: throughput (q/s) vs concurrent clients",
        &["clients", "DBMS-V", "RouLette"],
        &rows,
    );
}
