//! Figure 11 — the sensitivity analysis: throughput (queries/second) of
//! all five systems under varying (a) batch size, (b) query selectivity,
//! (c) joins per query, and (d) schema type. Defaults are the paper's
//! (10% selectivity, 4 joins, store snowflake, 512-query batches), scaled
//! down by the harness scale.

use crate::harness::{fmt_qps, print_table, qps, Scale};
use crate::systems::{verify, Bench, System};
use rand::rngs::StdRng;
use rand::SeedableRng;
use roulette_core::EngineConfig;
use roulette_query::generator::{sample_batch, tpcds_pool, SchemaMode, SensitivityParams};
use roulette_query::SpjQuery;
use roulette_storage::datagen::tpcds::{self, TpcdsDataset};

fn dataset(scale: Scale) -> TpcdsDataset {
    tpcds::generate(scale.sf(0.4), scale.seed)
}

fn batch(ds: &TpcdsDataset, params: SensitivityParams, n: usize, seed: u64) -> Vec<SpjQuery> {
    let pool = tpcds_pool(ds, params, n * 2, seed).expect("workload generation");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5a5a);
    sample_batch(&pool, n, &mut rng)
}

/// One throughput row across all systems for a given workload.
fn throughput_row(bench: &Bench<'_>, queries: &[SpjQuery], label: String) -> Vec<String> {
    let mut row = vec![label];
    let reference = bench.run(System::DbmsV, queries);
    for sys in System::ALL {
        let elapsed = if sys == System::DbmsV {
            reference.elapsed
        } else {
            let out = bench.run(sys, queries);
            verify(&out, &reference, sys.label());
            out.elapsed
        };
        row.push(fmt_qps(qps(queries.len(), elapsed)));
    }
    row
}

fn header() -> Vec<&'static str> {
    let mut h = vec!["param"];
    h.extend(System::ALL.iter().map(|s| s.label()));
    h
}

/// Fig. 11a: varying concurrency (batch size).
pub fn fig11a(scale: Scale) {
    let ds = dataset(scale);
    let bench = Bench::new(&ds.catalog, EngineConfig::default());
    let max = scale.n(256);
    let mut sizes = vec![1usize];
    while *sizes.last().unwrap() < max {
        let next = sizes.last().unwrap() * 4;
        sizes.push(next.min(max));
    }
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|&n| {
            let queries = batch(&ds, SensitivityParams::default(), n, scale.seed + n as u64);
            throughput_row(&bench, &queries, n.to_string())
        })
        .collect();
    print_table(
        "Fig 11a: throughput (q/s) vs number of queries in batch",
        &header(),
        &rows,
    );
}

/// Fig. 11b: varying query selectivity.
pub fn fig11b(scale: Scale) {
    let ds = dataset(scale);
    let bench = Bench::new(&ds.catalog, EngineConfig::default());
    let n = scale.n(96);
    let rows: Vec<Vec<String>> = [0.0001f64, 0.001, 0.01, 0.1, 1.0]
        .iter()
        .map(|&sel| {
            let params = SensitivityParams { selectivity: sel, ..Default::default() };
            let queries = batch(&ds, params, n, scale.seed ^ (sel.to_bits()));
            throughput_row(&bench, &queries, format!("{}%", sel * 100.0))
        })
        .collect();
    print_table(
        &format!("Fig 11b: throughput (q/s) vs query selectivity ({n}-query batches)"),
        &header(),
        &rows,
    );
}

/// Fig. 11c: varying joins per query (store-direct pool so 6-join batches
/// are homogeneous, as in the paper).
pub fn fig11c(scale: Scale) {
    let ds = dataset(scale);
    let bench = Bench::new(&ds.catalog, EngineConfig::default());
    let n = scale.n(96);
    let rows: Vec<Vec<String>> = (1..=6usize)
        .map(|joins| {
            let params = SensitivityParams {
                n_joins: joins,
                schema: SchemaMode::StoreDirect,
                ..Default::default()
            };
            let queries = batch(&ds, params, n, scale.seed + joins as u64 * 101);
            throughput_row(&bench, &queries, joins.to_string())
        })
        .collect();
    print_table(
        &format!("Fig 11c: throughput (q/s) vs joins per query ({n}-query batches)"),
        &header(),
        &rows,
    );
}

/// Fig. 11d: varying schema type.
pub fn fig11d(scale: Scale) {
    let ds = dataset(scale);
    let bench = Bench::new(&ds.catalog, EngineConfig::default());
    let n = scale.n(96);
    let rows: Vec<Vec<String>> = SchemaMode::FIG11D
        .iter()
        .map(|&mode| {
            let params = SensitivityParams { schema: mode, ..Default::default() };
            let queries = batch(&ds, params, n, scale.seed ^ (mode.label().len() as u64));
            throughput_row(&bench, &queries, mode.label().to_string())
        })
        .collect();
    print_table(
        &format!("Fig 11d: throughput (q/s) vs schema type ({n}-query batches)"),
        &header(),
        &rows,
    );
}
