//! Uniform runners for the five compared systems (§6.1's methodology):
//! shared-work systems execute each workload's queries as a single batch,
//! query-at-a-time systems execute them one after the other. Each runner
//! returns the batch's wall-clock time; statistics sampling for the
//! optimize-then-execute systems happens once outside the timed region
//! (a real DBMS keeps statistics precomputed), while the online-sharing
//! planners' plan-composition time *is* included — plan composition is
//! their per-batch work.

use roulette_baselines::{
    execute_global, match_share_plan, stitch_plan, ExecMode, QatEngine,
};
use roulette_core::EngineConfig;
use roulette_exec::{EngineStats, QueryResult};
use roulette_query::{QueryBatch, SpjQuery};
use roulette_storage::{Catalog, Stats};
use std::time::Duration;

/// The compared systems, in the paper's legend order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// MonetDB-style operator-at-a-time engine.
    Monet,
    /// Vectorized query-at-a-time engine.
    DbmsV,
    /// RouLette.
    Roulette,
    /// Stitch&Share online sharing.
    StitchShare,
    /// Match&Share online sharing.
    MatchShare,
}

impl System {
    /// The full Fig. 11 lineup.
    pub const ALL: [System; 5] = [
        System::Monet,
        System::DbmsV,
        System::Roulette,
        System::StitchShare,
        System::MatchShare,
    ];

    /// Paper legend label.
    pub fn label(self) -> &'static str {
        match self {
            System::Monet => "MonetDB",
            System::DbmsV => "DBMS-V",
            System::Roulette => "RouLette",
            System::StitchShare => "Stitch&Share",
            System::MatchShare => "Match&Share",
        }
    }
}

/// Outcome of running one workload on one system.
#[derive(Debug)]
pub struct RunOutcome {
    /// Wall-clock time for the whole workload.
    pub elapsed: Duration,
    /// Per-query results (for cross-system verification).
    pub per_query: Vec<QueryResult>,
    /// RouLette engine stats, when applicable.
    pub stats: Option<EngineStats>,
}

/// Pre-built per-catalog state the systems reuse across workloads
/// (sampled statistics, engines).
pub struct Bench<'a> {
    /// The catalog under test.
    pub catalog: &'a Catalog,
    stats: Stats,
    qat: QatEngine<'a>,
    monet: QatEngine<'a>,
    config: EngineConfig,
}

impl<'a> Bench<'a> {
    /// Prepares engines and statistics for `catalog`.
    pub fn new(catalog: &'a Catalog, config: EngineConfig) -> Self {
        Bench {
            catalog,
            stats: Stats::sample(catalog, 1024, 7),
            qat: QatEngine::new(catalog, ExecMode::Vectorized, 7),
            monet: QatEngine::new(catalog, ExecMode::Materialized, 7),
            config,
        }
    }

    /// The engine configuration used for RouLette runs.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs `queries` on `system`.
    pub fn run(&self, system: System, queries: &[SpjQuery]) -> RunOutcome {
        match system {
            System::DbmsV => {
                let (elapsed, per_query) =
                    crate::harness::time(|| self.qat.execute_serial(queries));
                RunOutcome { elapsed, per_query, stats: None }
            }
            System::Monet => {
                let (elapsed, per_query) =
                    crate::harness::time(|| self.monet.execute_serial(queries));
                RunOutcome { elapsed, per_query, stats: None }
            }
            System::Roulette => {
                let engine = crate::harness::engine(self.catalog, self.config.clone());
                let (elapsed, outcome) =
                    crate::harness::time(|| engine.execute_batch(queries).expect("batch"));
                RunOutcome {
                    elapsed,
                    per_query: outcome.per_query,
                    stats: Some(outcome.stats),
                }
            }
            System::StitchShare => {
                let (elapsed, run) = crate::harness::time(|| {
                    let plan = stitch_plan(self.catalog, &self.stats, queries);
                    let batch =
                        QueryBatch::from_queries(self.catalog.len(), queries).expect("batch");
                    execute_global(self.catalog, &batch, &plan)
                });
                RunOutcome { elapsed, per_query: run.per_query, stats: None }
            }
            System::MatchShare => {
                let (elapsed, run) = crate::harness::time(|| {
                    let plan = match_share_plan(self.catalog, &self.stats, queries);
                    let batch =
                        QueryBatch::from_queries(self.catalog.len(), queries).expect("batch");
                    execute_global(self.catalog, &batch, &plan)
                });
                RunOutcome { elapsed, per_query: run.per_query, stats: None }
            }
        }
    }

    /// Sampled statistics (shared with figure code needing plans).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }
}

/// Asserts that two systems' per-query results agree (used by the figure
/// targets in debug runs; skipped under `ROULETTE_NO_VERIFY`).
pub fn verify(a: &RunOutcome, b: &RunOutcome, label: &str) {
    if std::env::var_os("ROULETTE_NO_VERIFY").is_some() {
        return;
    }
    assert_eq!(a.per_query, b.per_query, "result mismatch: {label}");
}
