//! Figures 17–18 — the §5 optimization ablations with the execution-time
//! breakdown (Filter / Build / Probe / Route).

use crate::harness::{print_table, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use roulette_core::EngineConfig;
use roulette_exec::EngineStats;
use roulette_query::generator::{job_pool, sample_batch, tpcds_pool, SensitivityParams};
use roulette_query::SpjQuery;
use roulette_storage::datagen::{imdb, tpcds};
use roulette_storage::Catalog;
use std::time::Duration;

fn run(catalog: &Catalog, queries: &[SpjQuery], config: EngineConfig) -> (Duration, EngineStats) {
    let engine = crate::harness::engine(catalog, config);
    let (elapsed, out) =
        crate::harness::time(|| engine.execute_batch(queries).expect("batch"));
    (elapsed, out.stats)
}

fn breakdown_row(label: &str, elapsed: Duration, stats: &EngineStats) -> Vec<String> {
    let total = (stats.filter_ns + stats.build_ns + stats.probe_ns + stats.route_ns).max(1);
    let pct = |v: u64| format!("{:.0}%", v as f64 * 100.0 / total as f64);
    vec![
        label.to_string(),
        format!("{:.3}", elapsed.as_secs_f64()),
        pct(stats.filter_ns),
        pct(stats.build_ns),
        pct(stats.probe_ns),
        pct(stats.route_ns),
        stats.inserted_tuples.to_string(),
        stats.join_tuples.to_string(),
    ]
}

const HEADER: [&str; 8] =
    ["config", "time (s)", "Filter", "Build", "Probe", "Route", "inserted", "join tuples"];

/// Fig. 17: JOB batch ablation — symmetric join pruning (and adaptive
/// projections) applied incrementally over the plain configuration, plus
/// the final time breakdown. Pruning dominates for JOB (§6.3).
pub fn fig17(scale: Scale) {
    let ds = imdb::generate(scale.sf(0.25), scale.seed);
    let pool = job_pool(&ds, scale.n(64), scale.seed).expect("workload generation");
    let mut rng = StdRng::seed_from_u64(scale.seed + 17);
    let queries = sample_batch(&pool, scale.n(24), &mut rng);

    // Grouped filters and the locality router stay on throughout — this
    // ablation isolates the adaptive-processing optimizations (§5.2).
    let plain = EngineConfig {
        pruning: false,
        adaptive_projections: false,
        ..EngineConfig::default()
    };
    let mut with_proj = plain.clone();
    with_proj.adaptive_projections = true;
    let mut with_pruning = with_proj.clone();
    with_pruning.pruning = true;

    let rows = vec![
        {
            let (t, s) = run(&ds.catalog, &queries, plain);
            breakdown_row("Plain", t, &s)
        },
        {
            let (t, s) = run(&ds.catalog, &queries, with_proj);
            breakdown_row("+AdaptiveProj", t, &s)
        },
        {
            let (t, s) = run(&ds.catalog, &queries, with_pruning);
            breakdown_row("+Pruning", t, &s)
        },
    ];
    print_table(
        &format!("Fig 17: JOB batch ablation ({} queries)", queries.len()),
        &HEADER,
        &rows,
    );
}

/// Fig. 18: large synthetic batch ablation — locality-conscious output
/// routing and grouped filters applied incrementally. Query-set-heavy
/// batches make the router and filter algorithms dominant (§6.3).
pub fn fig18(scale: Scale) {
    let ds = tpcds::generate(scale.sf(0.4), scale.seed);
    let queries = tpcds_pool(&ds, SensitivityParams::default(), scale.n(512), scale.seed + 18).expect("workload generation");

    let plain = EngineConfig {
        grouped_filters: false,
        locality_router: false,
        ..EngineConfig::default()
    };
    let mut with_router = plain.clone();
    with_router.locality_router = true;
    let mut with_filter = with_router.clone();
    with_filter.grouped_filters = true;

    let rows = vec![
        {
            let (t, s) = run(&ds.catalog, &queries, plain);
            breakdown_row("Plain", t, &s)
        },
        {
            let (t, s) = run(&ds.catalog, &queries, with_router);
            breakdown_row("+OutputRouting", t, &s)
        },
        {
            let (t, s) = run(&ds.catalog, &queries, with_filter);
            breakdown_row("+GroupedFilter", t, &s)
        },
    ];
    print_table(
        &format!("Fig 18: large-batch ablation ({} queries)", queries.len()),
        &HEADER,
        &rows,
    );
}
