//! Figure 16 — learning-rate study on the chains schema: convergence of
//! measured vs estimated episode cost across the episode sequence for
//! workloads of varying breadth (chains = candidates per step) and depth
//! (relations = join size), plus the learned-vs-greedy tuple ratio
//! (Fig. 16i).

use crate::harness::{print_table, Scale};
use roulette_core::{CostModel, EngineConfig};
use roulette_policy::{GreedyPolicy, QLearningPolicy};
use roulette_query::generator::chains_queries;
use roulette_storage::datagen::chains::{self, ChainsParams};

/// The paper's eight (C, R) workload combinations.
pub const COMBOS: [(usize, usize); 8] =
    [(4, 9), (4, 17), (4, 33), (8, 9), (8, 17), (8, 33), (16, 17), (16, 33)];

/// Fig. 16a–h: measured vs estimated cost at the start, middle, and end of
/// the episode sequence, and Fig. 16i: learned / greedy join-tuple ratio.
pub fn fig16(scale: Scale) {
    let mut rows = Vec::new();
    for (c, r) in COMBOS {
        let params = ChainsParams {
            chains: c,
            relations: r,
            domain: scale.n(1200),
            hub_rows: scale.n(6000),
        };
        let ds = chains::generate(params, scale.seed);
        let queries = chains_queries(&ds, scale.n(48), scale.seed * 3 + 1).expect("workload generation");
        // Small vectors → many episodes: convergence needs thousands of
        // policy updates (the paper's Fig. 16 x-axis reaches 30k episodes).
        // Pruning is off so rank-gating doesn't reorder scans: episode
        // composition stays stationary and the cost series is comparable
        // across the sequence.
        let mut config = EngineConfig::default().with_vector_size(64).unwrap();
        config.pruning = false;
        let engine = crate::harness::engine(&ds.catalog, config.clone());

        // Learned run with tracing.
        let mut session = engine.session_with_policy(
            queries.len(),
            Box::new(QLearningPolicy::new(CostModel::default(), &config)),
        );
        session.enable_trace();
        for q in &queries {
            session.admit(q.clone()).unwrap();
        }
        session.run();
        let learned_tuples = session.stats().join_tuples;
        let out = session.finish();

        let window = (out.trace.len() / 3).max(1);
        let avg = |slice: &[roulette_exec::TraceEntry]| {
            let m: f64 = slice.iter().map(|t| t.measured).sum::<f64>()
                / slice.len().max(1) as f64;
            let e: f64 = slice.iter().map(|t| t.estimated).sum::<f64>()
                / slice.len().max(1) as f64;
            (m, e)
        };
        let (m0, e0) = avg(&out.trace[..window.min(out.trace.len())]);
        let mid = out.trace.len() / 2;
        let (m1, e1) = avg(&out.trace[mid.saturating_sub(window / 2)
            ..(mid + window / 2).min(out.trace.len()).max(mid)]);
        let (m2, e2) = avg(&out.trace[out.trace.len().saturating_sub(window)..]);

        // Greedy comparison (Fig. 16i).
        let greedy = engine
            .execute_batch_with_policy(&queries, Box::new(GreedyPolicy::lottery(5)))
            .unwrap();
        let ratio = learned_tuples as f64 / greedy.stats.join_tuples.max(1) as f64;

        rows.push(vec![
            params.label(),
            out.trace.len().to_string(),
            format!("{m0:.0}/{e0:.0}"),
            format!("{m1:.0}/{e1:.0}"),
            format!("{m2:.0}/{e2:.0}"),
            format!("{:.2}", if e2 > 0.0 { m2 / e2 } else { f64::NAN }),
            format!("{ratio:.2}"),
        ]);
    }
    print_table(
        "Fig 16: episode cost convergence (measured/estimated) and learned-vs-greedy ratio",
        &[
            "workload",
            "episodes",
            "early m/e",
            "mid m/e",
            "late m/e",
            "late ratio",
            "RouLette/Greedy (16i)",
        ],
        &rows,
    );
}
