//! # roulette-bench
//!
//! The figure-reproduction harness: one function (and one binary) per
//! table/figure of the paper's evaluation (§6), plus Criterion
//! micro-benchmarks for the shared operators. Run everything via
//! `cargo bench -p roulette-bench`, or individual figures via
//! `cargo run --release -p roulette-bench --bin fig11a` etc. Scale with
//! `ROULETTE_SCALE`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig11;
pub mod fig12_14;
pub mod fig16;
pub mod fig17_18;
pub mod fig19_20;
pub mod harness;
pub mod misc;
pub mod systems;

pub use harness::Scale;

/// Runs one figure function and, when telemetry capture is configured
/// (`--telemetry <dir>` / `ROULETTE_TELEMETRY`), dumps a Prometheus
/// snapshot and JSONL event log named after the figure.
pub fn run_figure(name: &str, scale: Scale, f: impl FnOnce(Scale)) {
    f(scale);
    harness::dump_telemetry(name);
}

/// Runs every figure target in order (the `figures` bench entry point).
pub fn run_all(scale: Scale) {
    run_figure("calibrate", scale, misc::calibrate_cost_model);
    run_figure("fig11a", scale, fig11::fig11a);
    run_figure("fig11b", scale, fig11::fig11b);
    run_figure("fig11c", scale, fig11::fig11c);
    run_figure("fig11d", scale, fig11::fig11d);
    run_figure("fig12", scale, fig12_14::fig12);
    run_figure("swo_anecdote", scale, misc::swo_anecdote);
    run_figure("fig13", scale, fig12_14::fig13);
    run_figure("fig14", scale, fig12_14::fig14);
    run_figure("fig16", scale, fig16::fig16);
    run_figure("fig17", scale, fig17_18::fig17);
    run_figure("fig18", scale, fig17_18::fig18);
    run_figure("fig19", scale, fig19_20::fig19);
    run_figure("fig20", scale, fig19_20::fig20);
}

/// Extension studies beyond the paper's figures (run by the `figures`
/// bench after the reproduction targets): the workload-aware batching
/// ablation lives in its own binary (`batching_ablation`), as does the
/// policy crossover study (`policy_crossover`).
pub const EXTENSION_BINS: [&str; 2] = ["batching_ablation", "policy_crossover"];
