//! The §6.1 SWO anecdote and the §4.3 cost-model calibration.

use crate::harness::{print_table, Scale};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roulette_baselines::optimize_shared;
use roulette_core::cost::{calibrate, CostSample};
use roulette_core::{EngineConfig, QueryId, QuerySet, QuerySetColumn, RelId};
use roulette_exec::{GroupedFilter, Stem, VERSION_ALL};
use roulette_query::generator::{tpcds_pool, SensitivityParams};
use roulette_storage::datagen::tpcds;
use roulette_storage::Stats;
use std::sync::atomic::AtomicU32;
use std::time::Instant;

/// The §6.1 anecdote: offline sharing-aware optimization (SWO) cannot
/// scale — its optimization time explodes with batch size while RouLette's
/// total (optimize+execute) time stays flat, and the plans it finds are
/// only marginally better.
pub fn swo_anecdote(scale: Scale) {
    let ds = tpcds::generate(scale.sf(0.15), scale.seed);
    let stats = Stats::sample(&ds.catalog, 1024, 7);
    let pool = tpcds_pool(&ds, SensitivityParams::default(), 16, scale.seed + 99).expect("workload generation");
    let engine = crate::harness::engine(&ds.catalog, EngineConfig::default());

    let mut rows = Vec::new();
    for &n in &[2usize, 4, 6, 8, 11] {
        let queries = &pool[..n];
        let t0 = Instant::now();
        let swo = optimize_shared(&ds.catalog, &stats, queries, 5_000_000);
        let swo_time = t0.elapsed();

        let t0 = Instant::now();
        let out = engine.execute_batch(queries).expect("batch");
        let rl_time = t0.elapsed();

        let space = if swo.search_space == u64::MAX {
            ">1e19".to_string()
        } else {
            format!("{:.1e}", swo.search_space as f64)
        };
        rows.push(vec![
            n.to_string(),
            space,
            format!("{:.3}", swo_time.as_secs_f64()),
            swo.evaluations.to_string(),
            if swo.exhaustive { "yes" } else { "no" }.into(),
            format!("{:.3}", rl_time.as_secs_f64()),
            out.stats.join_tuples.to_string(),
        ]);
    }
    print_table(
        "SWO anecdote: sharing-aware optimization vs RouLette (search space is the          joint order space an exact optimizer must cover)",
        &["batch", "space", "SWO opt (s)", "evals", "exhaustive", "RouLette total (s)", "RL join tuples"],
        &rows,
    );
}

/// Reproduces the §4.3 calibration: times each operator type at varying
/// input/output sizes and fits `c = κ·n_in + λ·n_out` by least squares.
pub fn calibrate_cost_model(_scale: Scale) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut rows = Vec::new();

    // --- Selections: grouped filter over a query-set column --------------
    // Output fraction is varied across samples by narrowing the value
    // domain, keeping the regression well-conditioned.
    let preds: Vec<(QueryId, i64, i64)> = (0..64u32)
        .map(|q| {
            let lo = rng.gen_range(0..500);
            (QueryId(q), lo, lo + rng.gen_range(10..100))
        })
        .collect();
    let filter = GroupedFilter::build(&preds, 64);
    let mut samples = Vec::new();
    for &n in &[8192usize, 16384, 32768, 65536] {
        for &domain in &[600i64, 5_000, 100_000] {
            let values: Vec<i64> = (0..n).map(|_| rng.gen_range(0..domain)).collect();
            let restrict = {
                // Query-sets start as random halves so AND can empty rows.
                let mut m = QuerySet::empty(64);
                for q in 0..64u32 {
                    if rng.gen_bool(0.5) {
                        m.insert(QueryId(q));
                    }
                }
                m
            };
            let mut best = f64::INFINITY;
            let mut kept = 0u64;
            for _warm in 0..3 {
                let mut qsets = QuerySetColumn::new(1);
                for _ in 0..n {
                    qsets.push(restrict.words());
                }
                let t0 = Instant::now();
                kept = 0;
                for (i, &v) in values.iter().enumerate() {
                    if qsets.and_row(i, filter.mask_for(v)) {
                        kept += 1;
                    }
                }
                best = best.min(t0.elapsed().as_nanos() as f64);
            }
            samples.push(CostSample { n_in: n as u64, n_out: kept, time_ns: best });
        }
    }
    let (k, l) = calibrate(&samples).unwrap_or((f64::NAN, f64::NAN));
    rows.push(vec!["selection".into(), format!("{k:.2}"), format!("{l:.2}"), "9.32 / 4.62".into()]);

    // --- Joins: STeM probes at varying match fan-outs ----------------------
    let mut samples = Vec::new();
    for &n in &[4096usize, 16384, 65536] {
        for &fanout in &[1usize, 2, 8] {
            let stem = Stem::new(RelId(0), vec![roulette_core::ColId(0)], 1);
            let global = AtomicU32::new(0);
            let full = QuerySet::full(8);
            let mut qsets = QuerySetColumn::new(1);
            let mut vids = Vec::new();
            let mut keys = Vec::new();
            for i in 0..n {
                vids.push(i as u32);
                keys.push((i / fanout) as i64);
                qsets.push(full.words());
            }
            stem.insert_vector(&vids, &qsets, &[keys.clone()], &global);
            let mut best = f64::INFINITY;
            let mut out = 0u64;
            for _warm in 0..3 {
                let t0 = Instant::now();
                let reader = stem.read();
                out = 0;
                for &k in &keys {
                    reader.probe(0, k, VERSION_ALL, |_, _| out += 1);
                }
                best = best.min(t0.elapsed().as_nanos() as f64);
            }
            samples.push(CostSample { n_in: n as u64, n_out: out, time_ns: best });
        }
    }
    let (k, l) = calibrate(&samples).unwrap_or((f64::NAN, f64::NAN));
    rows.push(vec!["join (probe)".into(), format!("{k:.2}"), format!("{l:.2}"), "38.57 / 43.29".into()]);

    // --- Routing selections: query-set mask AND with varied survival -------
    let mut samples = Vec::new();
    for &n in &[8192usize, 32768, 131072] {
        for &density in &[0.05f64, 0.3, 0.9] {
            let mask_set = {
                let mut m = QuerySet::empty(64);
                for q in 0..64u32 {
                    if rng.gen_bool(density) {
                        m.insert(QueryId(q));
                    }
                }
                m
            };
            // Rows carry random single-query sets so most empty out under a
            // sparse mask.
            let mut best = f64::INFINITY;
            let mut kept = 0u64;
            for _warm in 0..3 {
                let mut qsets = QuerySetColumn::new(1);
                for _ in 0..n {
                    let q = QueryId(rng.gen_range(0..64u32));
                    qsets.push(QuerySet::singleton(q, 64).words());
                }
                let t0 = Instant::now();
                kept = 0;
                for i in 0..n {
                    if qsets.and_row(i, mask_set.words()) {
                        kept += 1;
                    }
                }
                best = best.min(t0.elapsed().as_nanos() as f64);
            }
            samples.push(CostSample { n_in: n as u64, n_out: kept, time_ns: best });
        }
    }
    let (k, l) = calibrate(&samples).unwrap_or((f64::NAN, f64::NAN));
    rows.push(vec![
        "routing sel".into(),
        format!("{k:.2}"),
        format!("{l:.2}"),
        "3.60 / 0.92".into(),
    ]);

    print_table(
        "Cost-model calibration: fitted κ/λ (ns per tuple) vs paper's constants",
        &["operator", "κ", "λ", "paper κ/λ"],
        &rows,
    );
}
