//! Shared benchmark plumbing: environment-driven scaling, paper-style
//! table printing, and telemetry capture.
//!
//! Every figure target runs at a laptop-friendly default size; set
//! `ROULETTE_SCALE` (e.g. `ROULETTE_SCALE=4`) to scale batch sizes and
//! dataset sizes toward the paper's configuration, and `ROULETTE_SEED` to
//! vary the workload sample. Pass `--telemetry <dir>` (or set
//! `ROULETTE_TELEMETRY=<dir>`) to attach a [`Telemetry`] sink to every
//! engine built through [`engine`] and dump a Prometheus snapshot plus the
//! JSONL event log after each figure.

use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use roulette_core::EngineConfig;
use roulette_exec::RouletteEngine;
use roulette_storage::Catalog;
use roulette_telemetry::Telemetry;

/// Global benchmark scale, read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Multiplier for batch sizes and dataset scale factors.
    pub factor: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Scale {
    /// Reads `ROULETTE_SCALE` (default 1.0) and `ROULETTE_SEED`
    /// (default 42).
    pub fn from_env() -> Self {
        let factor = std::env::var("ROULETTE_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1.0);
        let seed = std::env::var("ROULETTE_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(42);
        Scale { factor, seed }
    }

    /// Scales an integer quantity (≥1).
    pub fn n(&self, base: usize) -> usize {
        ((base as f64) * self.factor).round().max(1.0) as usize
    }

    /// Scales a dataset scale factor.
    pub fn sf(&self, base: f64) -> f64 {
        base * self.factor
    }
}

/// Telemetry output directory, from `--telemetry <dir>` on the command
/// line or the `ROULETTE_TELEMETRY` environment variable (the flag wins).
/// `None` disables telemetry: engines run without a recorder attached and
/// [`dump_telemetry`] is a no-op.
pub fn telemetry_dir() -> Option<&'static Path> {
    static DIR: OnceLock<Option<PathBuf>> = OnceLock::new();
    DIR.get_or_init(|| {
        let mut args = std::env::args();
        while let Some(a) = args.next() {
            if a == "--telemetry" {
                if let Some(p) = args.next() {
                    return Some(PathBuf::from(p));
                }
            }
        }
        std::env::var_os("ROULETTE_TELEMETRY").map(PathBuf::from)
    })
    .as_deref()
}

/// The process-wide telemetry sink, created on first use when a
/// destination is configured via [`telemetry_dir`].
pub fn telemetry() -> Option<Arc<Telemetry>> {
    static SINK: OnceLock<Option<Arc<Telemetry>>> = OnceLock::new();
    SINK.get_or_init(|| telemetry_dir().map(|_| Telemetry::with_defaults())).clone()
}

/// Builds a [`RouletteEngine`] with the process telemetry sink (if any)
/// attached as its recorder. Figure code should prefer this over calling
/// `RouletteEngine::new` directly so `--telemetry` observes every run.
pub fn engine<'a>(catalog: &'a Catalog, config: EngineConfig) -> RouletteEngine<'a> {
    let mut e = RouletteEngine::new(catalog, config);
    if let Some(sink) = telemetry() {
        e.set_recorder(sink);
    }
    e
}

/// Writes a Prometheus text-format snapshot (`<figure>.prom`) and the
/// JSONL event log (`<figure>.jsonl`) into the configured telemetry
/// directory. No-op when telemetry is disabled; I/O failures print a
/// warning rather than aborting the benchmark run.
pub fn dump_telemetry(figure: &str) {
    let (Some(dir), Some(sink)) = (telemetry_dir(), telemetry()) else { return };
    if let Err(e) = write_snapshot(dir, figure, &sink) {
        eprintln!("telemetry: failed to write snapshot for {figure}: {e}");
    }
}

fn write_snapshot(dir: &Path, figure: &str, sink: &Telemetry) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut prom = Vec::new();
    sink.render_prometheus(&mut prom)?;
    std::fs::write(dir.join(format!("{figure}.prom")), prom)?;
    let mut jsonl = Vec::new();
    sink.write_events_jsonl(&mut jsonl)?;
    std::fs::write(dir.join(format!("{figure}.jsonl")), jsonl)?;
    Ok(())
}

/// Times one closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed(), out)
}

/// Queries / second for `n` queries finished in `d`.
pub fn qps(n: usize, d: Duration) -> f64 {
    n as f64 / d.as_secs_f64().max(1e-9)
}

/// Prints a fixed-width table with a title line (the bench output format
/// recorded in EXPERIMENTS.md).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths.get(i).copied().unwrap_or(8)));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a throughput cell.
pub fn fmt_qps(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats a ratio/speedup cell.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}
