//! Shared benchmark plumbing: environment-driven scaling and paper-style
//! table printing.
//!
//! Every figure target runs at a laptop-friendly default size; set
//! `ROULETTE_SCALE` (e.g. `ROULETTE_SCALE=4`) to scale batch sizes and
//! dataset sizes toward the paper's configuration, and `ROULETTE_SEED` to
//! vary the workload sample.

use std::time::{Duration, Instant};

/// Global benchmark scale, read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Multiplier for batch sizes and dataset scale factors.
    pub factor: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Scale {
    /// Reads `ROULETTE_SCALE` (default 1.0) and `ROULETTE_SEED`
    /// (default 42).
    pub fn from_env() -> Self {
        let factor = std::env::var("ROULETTE_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1.0);
        let seed = std::env::var("ROULETTE_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(42);
        Scale { factor, seed }
    }

    /// Scales an integer quantity (≥1).
    pub fn n(&self, base: usize) -> usize {
        ((base as f64) * self.factor).round().max(1.0) as usize
    }

    /// Scales a dataset scale factor.
    pub fn sf(&self, base: f64) -> f64 {
        base * self.factor
    }
}

/// Times one closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed(), out)
}

/// Queries / second for `n` queries finished in `d`.
pub fn qps(n: usize, d: Duration) -> f64 {
    n as f64 / d.as_secs_f64().max(1e-9)
}

/// Prints a fixed-width table with a title line (the bench output format
/// recorded in EXPERIMENTS.md).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths.get(i).copied().unwrap_or(8)));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a throughput cell.
pub fn fmt_qps(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats a ratio/speedup cell.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}
