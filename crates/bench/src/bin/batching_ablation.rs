//! Workload-aware batching ablation (the §6.1 future-work optimization):
//! on a join-set-diverse stream (snowstorm-all), similarity-clustered
//! batches are more homogeneous than FIFO batches and RouLette processes
//! them with fewer intermediate tuples and higher throughput.

use roulette_bench::harness::{dump_telemetry, fmt_qps, print_table, qps, Scale};
use roulette_core::EngineConfig;
use roulette_query::batching::{batch_homogeneity, cluster_batches};
use roulette_query::generator::{tpcds_pool, SchemaMode, SensitivityParams};
use roulette_storage::datagen::tpcds;

fn main() {
    let scale = Scale::from_env();
    let ds = tpcds::generate(scale.sf(0.4), scale.seed);
    let params =
        SensitivityParams { schema: SchemaMode::SnowstormAll, ..Default::default() };
    let stream = tpcds_pool(&ds, params, scale.n(128), scale.seed + 7).expect("workload generation");
    let batch_size = scale.n(32);
    let engine = roulette_bench::harness::engine(&ds.catalog, EngineConfig::default());

    let fifo: Vec<Vec<usize>> = (0..stream.len())
        .collect::<Vec<_>>()
        .chunks(batch_size)
        .map(|c| c.to_vec())
        .collect();
    let clustered = cluster_batches(&stream, batch_size);

    let mut rows = Vec::new();
    for (label, batches) in [("FIFO", &fifo), ("clustered", &clustered)] {
        let mut total_tuples = 0u64;
        let mut homogeneity = 0.0;
        let t0 = std::time::Instant::now();
        for batch in batches.iter() {
            let queries: Vec<_> = batch.iter().map(|&i| stream[i].clone()).collect();
            let out = engine.execute_batch(&queries).expect("batch");
            total_tuples += out.stats.join_tuples;
            homogeneity += batch_homogeneity(&stream, batch);
        }
        let elapsed = t0.elapsed();
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", homogeneity / batches.len() as f64),
            total_tuples.to_string(),
            fmt_qps(qps(stream.len(), elapsed)),
        ]);
    }
    print_table(
        &format!(
            "Workload-aware batching (snowstorm-all stream of {}, batches of {batch_size})",
            stream.len()
        ),
        &["batching", "homogeneity", "join tuples", "q/s"],
        &rows,
    );
    dump_telemetry("batching_ablation");
}
