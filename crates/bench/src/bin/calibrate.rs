//! Standalone figure target; see the crate docs for scaling knobs.
fn main() {
    roulette_bench::misc::calibrate_cost_model(roulette_bench::Scale::from_env());
}
