//! Standalone figure target; see the crate docs for scaling knobs.
fn main() {
    roulette_bench::fig12_14::fig12(roulette_bench::Scale::from_env());
}
