//! `perfbench` — the hot-path microbenchmark harness.
//!
//! Dependency-free, fixed-seed, median-of-k wall-clock benchmarks over the
//! engine's hot loops: end-to-end episode throughput on the synthetic chain
//! workload, STeM insert and probe, windowed-relation expiry (the
//! streaming layer's reclamation path), and the four data-parallel kernels
//! (filter masking, bulk query-set intersection, survivor compaction,
//! routing partition — DESIGN.md §14). Emits `BENCH_perf.json` so
//! successive PRs accumulate a performance trajectory.
//!
//! Usage:
//!
//! ```text
//! perfbench [--quick] [--out <path>] [--baseline <path>] [--gate] [--gate-floor <f>]
//! ```
//!
//! `--quick` shrinks workload sizes and the repetition count for CI smoke
//! runs. `--baseline` points at a `BENCH_perf.json` produced by an earlier
//! build: its episode-throughput anchor is carried forward, and every
//! bench whose name and work count match gets a `ratio` (current/baseline)
//! in the output. `--gate` turns those ratios into a pass/fail check —
//! the process exits nonzero if any ratio drops below the floor
//! (`--gate-floor`, default 0.85), which is how CI catches regressions.

use roulette_core::{ColId, EngineConfig, QueryId, QuerySet, QuerySetColumn, RelId, RowMask};
use roulette_exec::{GroupedFilter, Kernels, Partition, RouletteEngine, Stem, VERSION_ALL};
use roulette_query::generator::chains_queries;
use roulette_storage::datagen::chains::{self, ChainsParams};
use std::sync::atomic::AtomicU32;
use std::time::{Duration, Instant};

/// One benchmark's result: the median wall-clock of `runs` repetitions over
/// `work` items.
struct BenchResult {
    name: &'static str,
    /// What one work item is (for the JSON's `unit` field).
    unit: &'static str,
    work: u64,
    runs: usize,
    median: Duration,
    /// Matched baseline throughput (same name, same work count).
    baseline_per_sec: Option<f64>,
}

impl BenchResult {
    fn per_sec(&self) -> f64 {
        self.work as f64 / self.median.as_secs_f64().max(1e-12)
    }

    /// current/baseline throughput, when a comparable baseline matched.
    fn ratio(&self) -> Option<f64> {
        self.baseline_per_sec.filter(|&b| b > 0.0).map(|b| self.per_sec() / b)
    }
}

/// Runs `f` `runs` times and keeps the median elapsed time. `f` returns the
/// number of work items it processed (must be identical across runs —
/// everything is fixed-seed).
fn bench(
    name: &'static str,
    unit: &'static str,
    runs: usize,
    mut f: impl FnMut() -> u64,
) -> BenchResult {
    let mut times = Vec::with_capacity(runs);
    let mut work = 0;
    for _ in 0..runs {
        let t0 = Instant::now();
        work = f();
        times.push(t0.elapsed());
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    let r = BenchResult { name, unit, work, runs, median, baseline_per_sec: None };
    println!(
        "{:<28} {:>12.0} {}/s   (median of {} over {} items, {:.1} ms)",
        r.name,
        r.per_sec(),
        r.unit,
        r.runs,
        r.work,
        r.median.as_secs_f64() * 1e3
    );
    r
}

/// The fixed-seed value stream shared by the kernel benches.
#[inline]
fn lcg(v: &mut i64) -> i64 {
    *v = v.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *v >> 33
}

/// End-to-end episode throughput on the Fig. 15 chain workload: the number
/// the tentpole's ≥1.3× acceptance criterion is measured on.
fn bench_episode_chains(quick: bool, runs: usize) -> BenchResult {
    let params = ChainsParams {
        chains: 4,
        relations: 9,
        domain: if quick { 1024 } else { 4096 },
        hub_rows: if quick { 1 << 14 } else { 1 << 18 },
    };
    let ds = chains::generate(params, 7);
    let queries = chains_queries(&ds, 8, 11).expect("chain query generation");
    bench("episode_chains", "episodes", runs, || {
        let engine = RouletteEngine::new(&ds.catalog, EngineConfig::default());
        let out = engine.execute_batch(&queries).expect("chains batch");
        assert!(out.per_query.iter().all(|r| r.is_complete()));
        out.stats.episodes
    })
}

/// STeM build side: vectors of 1024 tuples inserted into one hash index.
fn bench_stem_insert(quick: bool, runs: usize) -> BenchResult {
    let n: u32 = if quick { 1 << 16 } else { 1 << 19 };
    let q = QuerySet::full(64);
    let mut qsets = QuerySetColumn::new(q.width());
    for _ in 0..1024 {
        qsets.push(q.words());
    }
    bench("stem_insert", "tuples", runs, || {
        let stem = Stem::new(RelId(0), vec![ColId(0)], q.width());
        let global = AtomicU32::new(0);
        let mut vids = vec![0u32; 1024];
        let mut keys = vec![0i64; 1024];
        for base in (0..n).step_by(1024) {
            for i in 0..1024u32 {
                vids[i as usize] = base + i;
                // ~4 entries per key so probe chains have realistic length.
                keys[i as usize] = ((base + i) % (n / 4)) as i64;
            }
            stem.insert_vector(&vids, &qsets, std::slice::from_ref(&keys), &global);
        }
        n as u64
    })
}

/// One contended-insert pass: `threads` workers concurrently push their
/// own vector streams into the shared STeM (chain length ≈ 4, per-thread
/// key streams decorrelated so concurrent workers hit different shards),
/// following the engine's episode hot path — one single-pass reused-buffer
/// partition per vector, then one `insert_shard` critical section per
/// touched shard. Each worker visits shards starting at its own offset so
/// the fleet pipelines around the shard ring instead of convoying on
/// shard 0. Returns total tuples inserted.
fn contended_insert_pass(stem: &Stem, threads: usize, n_per: u32, width: usize) -> u64 {
    let global = &AtomicU32::new(0);
    let q = QuerySet::full(64);
    let n_shards = stem.n_shards();
    let domain = (threads as u32 * n_per / 4).max(1);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let q = &q;
            scope.spawn(move || {
                let mut vids = vec![0u32; 1024];
                let mut keys = vec![0i64; 1024];
                let mut shard_ids = vec![0u8; 1024];
                let mut counts = vec![0u32; n_shards];
                let mut offs = vec![0u32; n_shards + 1];
                let mut order = vec![0u32; 1024];
                let mut sub_vids: Vec<u32> = Vec::with_capacity(1024);
                let mut sub_keys = vec![Vec::with_capacity(1024)];
                let mut sub_qsets = QuerySetColumn::new(width);
                let mut full_qsets = QuerySetColumn::new(width);
                full_qsets.push_repeat(q.words(), 1024);
                for base in (0..n_per).step_by(1024) {
                    for i in 0..1024u32 {
                        let row = t as u32 * n_per + base + i;
                        vids[i as usize] = row;
                        keys[i as usize] = (row.wrapping_mul(0x9e37_79b1) % domain) as i64;
                    }
                    if !stem.is_routed() {
                        // The engine's unrouted path: no partition, the
                        // whole vector in one critical section.
                        sub_keys[0].clear();
                        sub_keys[0].extend_from_slice(&keys);
                        stem.insert_shard(0, &vids, &full_qsets, &sub_keys, global);
                        continue;
                    }
                    // Single-pass partition into a row-order permutation,
                    // exactly like the episode path's scratch partition.
                    counts.fill(0);
                    for (sid, &k) in shard_ids.iter_mut().zip(keys.iter()) {
                        *sid = stem.shard_of_key(k) as u8;
                        counts[*sid as usize] += 1;
                    }
                    offs[0] = 0;
                    for s in 0..n_shards {
                        offs[s + 1] = offs[s] + counts[s];
                    }
                    let mut cursor = offs.clone();
                    for (i, &sid) in shard_ids.iter().enumerate() {
                        let c = &mut cursor[sid as usize];
                        order[*c as usize] = i as u32;
                        *c += 1;
                    }
                    for j in 0..n_shards {
                        let s = (t + j) % n_shards;
                        let rows = &order[offs[s] as usize..offs[s + 1] as usize];
                        if rows.is_empty() {
                            continue;
                        }
                        sub_vids.clear();
                        sub_keys[0].clear();
                        sub_qsets.clear();
                        for &r in rows {
                            sub_vids.push(vids[r as usize]);
                            sub_keys[0].push(keys[r as usize]);
                        }
                        sub_qsets.push_repeat(q.words(), rows.len());
                        stem.insert_shard(s, &sub_vids, &sub_qsets, &sub_keys, global);
                    }
                }
            });
        }
    });
    threads as u64 * n_per as u64
}

/// Contended STeM build side: 4 threads inserting concurrently. Sharded
/// (S = 8) the write critical sections land on disjoint shard latches;
/// unsharded every insert serializes on the one latch. Both variants go
/// into the JSON (and the `--gate` ratio check); the printed speedup is
/// the tentpole's scaling claim.
fn bench_stem_contended_insert(quick: bool, runs: usize) -> (BenchResult, BenchResult) {
    const THREADS: usize = 4;
    // Threaded medians swing more than single-threaded ones (scheduler
    // placement); extra runs keep the CI gate's back-to-back ratio stable.
    let runs = runs.max(5);
    let n_per: u32 = if quick { 1 << 14 } else { 1 << 16 };
    let width = QuerySet::full(64).width();
    let sharded = bench("stem_contended_insert", "tuples", runs, || {
        let stem = Stem::with_shards(RelId(0), vec![ColId(0)], width, 0, 8);
        contended_insert_pass(&stem, THREADS, n_per, width)
    });
    let unsharded = bench("stem_contended_insert_unsharded", "tuples", runs, || {
        let stem = Stem::new(RelId(0), vec![ColId(0)], width);
        contended_insert_pass(&stem, THREADS, n_per, width)
    });
    let cores =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "stem_contended_insert: sharded {:.0}/s vs unsharded {:.0}/s ({:.2}x at {THREADS} threads, {cores} core(s))",
        sharded.per_sec(),
        unsharded.per_sec(),
        sharded.per_sec() / unsharded.per_sec().max(1e-12)
    );
    if cores < THREADS {
        println!(
            "  (note: {cores} core(s) < {THREADS} threads — workers time-slice, so the \
             sharded/unsharded ratio measures partition overhead, not latch scalability)"
        );
    }
    (sharded, unsharded)
}

/// STeM probe side over a pre-built index (chain length ≈ 4).
fn bench_stem_probe(quick: bool, runs: usize) -> BenchResult {
    let n: u32 = if quick { 1 << 16 } else { 1 << 19 };
    let probes: u32 = if quick { 1 << 17 } else { 1 << 20 };
    let q = QuerySet::full(64);
    let stem = Stem::new(RelId(0), vec![ColId(0)], q.width());
    let global = AtomicU32::new(0);
    let mut qsets = QuerySetColumn::new(q.width());
    for _ in 0..1024 {
        qsets.push(q.words());
    }
    let mut vids = vec![0u32; 1024];
    let mut keys = vec![0i64; 1024];
    for base in (0..n).step_by(1024) {
        for i in 0..1024u32 {
            vids[i as usize] = base + i;
            keys[i as usize] = ((base + i) % (n / 4)) as i64;
        }
        stem.insert_vector(&vids, &qsets, std::slice::from_ref(&keys), &global);
    }
    bench("stem_probe", "probes", runs, || {
        let reader = stem.read();
        let mut matches = 0u64;
        // SplitMix-style stride so probe keys are not sequential.
        let mut k = 0x9E37_79B9u32;
        for _ in 0..probes {
            k = k.wrapping_mul(0x01000193).wrapping_add(1);
            let key = (k % (n / 2)) as i64; // half the keys miss
            reader.probe(0, key, VERSION_ALL, |_, _| matches += 1);
        }
        std::hint::black_box(matches);
        probes as u64
    })
}

/// Window expiry: sliding a one-tick window over a pre-built windowed
/// relation, measuring tuples reclaimed per second through the prefix
/// compaction that backs the streaming layer's STeM reclamation.
fn bench_stem_expiry(quick: bool, runs: usize) -> BenchResult {
    let ticks: u64 = 64;
    let per_tick: usize = if quick { 1 << 10 } else { 1 << 13 };
    let total = ticks * per_tick as u64;
    let rows: Vec<Vec<i64>> = (0..per_tick)
        .map(|i| vec![i as i64, (i as i64).wrapping_mul(31), i as i64 % 97, -(i as i64)])
        .collect();
    let mut base = roulette_stream::WindowedRelation::new("t", &["a", "b", "c", "d"]);
    for t in 1..=ticks {
        base.append(t, &rows).expect("append");
    }
    bench("stem_expiry", "tuples", runs, || {
        let mut rel = base.clone();
        let mut reclaimed = 0u64;
        // Slide a one-tick window across the buffer: each advance expires
        // exactly one tick's tuples and compacts the live prefix.
        for now in 2..=ticks + 1 {
            reclaimed += rel.expire(now, 1);
        }
        assert_eq!(reclaimed, total);
        std::hint::black_box(rel.len());
        reclaimed
    })
}

/// Filter-mask kernel: whole-column grouped-filter evaluation (four-lane
/// segment lookup + qset AND + packed keep mask) over 1024-row chunks of a
/// pre-gathered value column, the shape the selection phase feeds it.
fn bench_filter_mask(quick: bool, runs: usize) -> BenchResult {
    let n: usize = if quick { 1 << 18 } else { 1 << 21 };
    let capacity = 64;
    let preds: Vec<(QueryId, i64, i64)> = (0..capacity)
        .map(|i| {
            let lo = (i as i64 * 13) % 1000;
            (QueryId(i as u32), lo, lo + 150)
        })
        .collect();
    let filter = GroupedFilter::build(&preds, capacity);
    let full = QuerySet::full(capacity);
    let kernels = Kernels::from_config(&EngineConfig::default());
    let mut v = 1i64;
    let values: Vec<i64> = (0..n).map(|_| lcg(&mut v) % 1200).collect();
    bench("filter_mask", "values", runs, || {
        let mut qsets = QuerySetColumn::new(full.width());
        let mut keep = RowMask::new();
        let mut acc = 0u64;
        for chunk in values.chunks(1024) {
            qsets.clear();
            qsets.push_repeat(full.words(), chunk.len());
            kernels.filter_grouped(&filter, chunk, &mut qsets, &mut keep);
            acc += keep.count() as u64;
        }
        std::hint::black_box(acc);
        n as u64
    })
}

/// Bulk query-set intersection kernel: per-row masks ANDed into 4-word
/// (256-query) sets, 1024 rows per chunk — the semi-join prune shape.
fn bench_qset_and(quick: bool, runs: usize) -> BenchResult {
    let n: usize = if quick { 1 << 17 } else { 1 << 20 };
    let wps = 4;
    let mut v = 99i64;
    // Row template and per-row masks: dense-ish sets, ~half bits survive.
    let template: Vec<u64> = (0..1024 * wps).map(|_| lcg(&mut v) as u64 | 1).collect();
    let masks: Vec<u64> = (0..1024 * wps).map(|_| lcg(&mut v) as u64).collect();
    let kernels = Kernels::from_config(&EngineConfig::default());
    bench("qset_and", "rows", runs, || {
        let mut qsets = QuerySetColumn::new(wps);
        let mut keep = RowMask::new();
        let mut acc = 0u64;
        for _ in 0..n / 1024 {
            qsets.clear();
            qsets.push_rows(&template);
            kernels.qset_and(&mut qsets, &masks, &mut keep);
            acc += keep.count() as u64;
        }
        std::hint::black_box(acc);
        n as u64
    })
}

/// Survivor-compaction kernel: mask-driven gather of two vID columns plus
/// the query-set column at ~55% selectivity, 1024 rows per chunk — the
/// `retain_mask` shape after a filter or prune pass.
fn bench_compaction(quick: bool, runs: usize) -> BenchResult {
    let n: usize = if quick { 1 << 17 } else { 1 << 20 };
    let mut v = 7i64;
    let tv0: Vec<u32> = (0..1024u32).collect();
    let tv1: Vec<u32> = (0..1024u32).map(|i| i.wrapping_mul(2654435761)).collect();
    let tq: Vec<u64> = (0..1024).map(|_| lcg(&mut v) as u64 | 1).collect();
    let mut keep = RowMask::new();
    keep.clear_resize(1024);
    for i in 0..1024 {
        // ~55% survivors with run structure (runs are what the wide
        // kernel's `copy_within` path exploits).
        if (lcg(&mut v) & 0b1101) != 0 {
            keep.set(i);
        }
    }
    let kernels = Kernels::from_config(&EngineConfig::default());
    bench("compaction", "rows", runs, || {
        let mut v0 = Vec::new();
        let mut v1 = Vec::new();
        let mut qsets = QuerySetColumn::new(1);
        let mut acc = 0u64;
        for _ in 0..n / 1024 {
            v0.clear();
            v0.extend_from_slice(&tv0);
            v1.clear();
            v1.extend_from_slice(&tv1);
            qsets.clear();
            qsets.push_rows(&tq);
            kernels.compact_u32(&mut v0, &keep);
            kernels.compact_u32(&mut v1, &keep);
            kernels.compact_qsets(&mut qsets, &keep);
            acc += v0.len() as u64;
        }
        std::hint::black_box(acc);
        n as u64
    })
}

/// Routing-partition kernel: CSR partition over the qset words plus the
/// per-query gather the router does with it. Work items are emitted
/// `(query, row)` pairs, matching the router's output accounting.
fn bench_routing(quick: bool, runs: usize) -> BenchResult {
    let n: usize = if quick { 1 << 15 } else { 1 << 18 };
    let queries = QuerySet::full(8);
    let mut v = 42i64;
    // ~4.5 queries per row on average, never empty.
    let template: Vec<u64> = (0..1024).map(|_| (lcg(&mut v) as u64 & 0xff) | 1).collect();
    let emitted_per_chunk: u64 = template.iter().map(|w| w.count_ones() as u64).sum();
    let vals: Vec<i64> = (0..1024).map(|_| lcg(&mut v)).collect();
    let kernels = Kernels::from_config(&EngineConfig::default());
    bench("routing", "rows", runs, || {
        let mut qsets = QuerySetColumn::new(queries.width());
        let mut part = Partition::new();
        let mut emitted = 0u64;
        let mut acc = 0i64;
        for _ in 0..n / 1024 {
            qsets.clear();
            qsets.push_rows(&template);
            emitted += kernels.partition(&qsets, &queries, &mut part);
            for q in queries.iter() {
                for &ri in part.rows_of(q.index()) {
                    // Stand-in for the projection gather: one column read
                    // per emitted row.
                    acc = acc.wrapping_add(vals[ri as usize]);
                }
            }
        }
        std::hint::black_box(acc);
        assert_eq!(emitted, emitted_per_chunk * (n / 1024) as u64);
        emitted
    })
}

/// A bench row parsed back out of a previous `BENCH_perf.json`.
struct BaselineBench {
    name: String,
    work: u64,
    per_sec: f64,
}

/// Parsed baseline artifact: the episode-throughput anchor plus every
/// bench's `(name, work_items, per_sec)` (own format — a targeted scan
/// beats a JSON parser).
struct BaselineFile {
    /// The original anchor, carried forward so episode-throughput drift is
    /// always measured against the same fixed point, not a ratchet of
    /// rebaselines. Falls back to the file's own `episode_chains` rate.
    anchor_eps: Option<f64>,
    benches: Vec<BaselineBench>,
}

fn parse_f64_after(text: &str, key: &str) -> Option<f64> {
    let v = &text[text.find(key)? + key.len()..];
    let end = v.find([',', '\n', '}'])?;
    v[..end].trim().parse().ok()
}

fn read_baseline(path: &str) -> Option<BaselineFile> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut benches = Vec::new();
    let mut rest = text.as_str();
    let name_key = "\"name\": \"";
    while let Some(at) = rest.find(name_key) {
        let tail = &rest[at + name_key.len()..];
        let Some(name_end) = tail.find('"') else { break };
        let name = tail[..name_end].to_string();
        let work = parse_f64_after(tail, "\"work_items\": ");
        let per_sec = parse_f64_after(tail, "\"per_sec\": ");
        if let (Some(w), Some(p)) = (work, per_sec) {
            benches.push(BaselineBench { name, work: w as u64, per_sec: p });
        }
        rest = tail;
    }
    let anchor_eps = parse_f64_after(&text, "\"baseline_eps\": ")
        .or_else(|| benches.iter().find(|b| b.name == "episode_chains").map(|b| b.per_sec));
    Some(BaselineFile { anchor_eps, benches })
}

/// Attaches a matched baseline throughput to each result: same bench name
/// AND same work count (a changed work count means the bench itself was
/// reshaped, so the rates are not comparable — skipped with a warning).
fn attach_baselines(results: &mut [BenchResult], baseline: &BaselineFile) {
    for r in results.iter_mut() {
        match baseline.benches.iter().find(|b| b.name == r.name) {
            Some(b) if b.work == r.work => r.baseline_per_sec = Some(b.per_sec),
            Some(b) => println!(
                "note: {} baseline has work_items {} vs current {}; skipping ratio",
                r.name, b.work, r.work
            ),
            None => println!("note: {} not in baseline; skipping ratio", r.name),
        }
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() { format!("{v:.3}") } else { "null".to_string() }
}

fn write_json(
    path: &str,
    quick: bool,
    results: &[BenchResult],
    baseline_eps: Option<f64>,
) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"roulette-perfbench/v1\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    let current_eps = results
        .iter()
        .find(|r| r.name == "episode_chains")
        .map(|r| r.per_sec());
    s.push_str("  \"episode_throughput\": {\n");
    s.push_str(&format!(
        "    \"baseline_eps\": {},\n",
        baseline_eps.map_or("null".to_string(), json_f64)
    ));
    s.push_str(&format!(
        "    \"current_eps\": {},\n",
        current_eps.map_or("null".to_string(), json_f64)
    ));
    let ratio = match (baseline_eps, current_eps) {
        (Some(b), Some(c)) if b > 0.0 => Some(c / b),
        _ => None,
    };
    s.push_str(&format!(
        "    \"ratio\": {}\n",
        ratio.map_or("null".to_string(), json_f64)
    ));
    s.push_str("  },\n");
    s.push_str("  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        s.push_str(&format!("      \"unit\": \"{}\",\n", r.unit));
        s.push_str(&format!("      \"work_items\": {},\n", r.work));
        s.push_str(&format!("      \"runs\": {},\n", r.runs));
        s.push_str(&format!(
            "      \"median_ms\": {},\n",
            json_f64(r.median.as_secs_f64() * 1e3)
        ));
        s.push_str(&format!("      \"per_sec\": {},\n", json_f64(r.per_sec())));
        s.push_str(&format!(
            "      \"baseline_per_sec\": {},\n",
            r.baseline_per_sec.map_or("null".to_string(), json_f64)
        ));
        s.push_str(&format!(
            "      \"ratio\": {}\n",
            r.ratio().map_or("null".to_string(), json_f64)
        ));
        s.push_str(if i + 1 == results.len() { "    }\n" } else { "    },\n" });
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate = args.iter().any(|a| a == "--gate");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out = flag("--out").unwrap_or_else(|| "BENCH_perf.json".to_string());
    let gate_floor: f64 = flag("--gate-floor").and_then(|s| s.parse().ok()).unwrap_or(0.85);
    let baseline = flag("--baseline").and_then(|p| read_baseline(&p));
    let runs = if quick { 3 } else { 5 };

    println!(
        "perfbench (quick={quick}, median of {runs}, kernels={})",
        Kernels::from_config(&EngineConfig::default()).mode_name()
    );
    let (contended_sharded, contended_unsharded) = bench_stem_contended_insert(quick, runs);
    let mut results = vec![
        bench_episode_chains(quick, runs),
        bench_stem_insert(quick, runs),
        contended_sharded,
        contended_unsharded,
        bench_stem_probe(quick, runs),
        bench_stem_expiry(quick, runs),
        bench_filter_mask(quick, runs),
        bench_qset_and(quick, runs),
        bench_compaction(quick, runs),
        bench_routing(quick, runs),
    ];

    let mut baseline_eps = None;
    if let Some(b) = &baseline {
        attach_baselines(&mut results, b);
        baseline_eps = b.anchor_eps;
        if let Some(anchor) = baseline_eps {
            let cur = results[0].per_sec();
            println!(
                "episode_chains: anchor {:.1}/s -> current {:.1}/s ({:.2}x)",
                anchor,
                cur,
                cur / anchor
            );
        }
    }
    write_json(&out, quick, &results, baseline_eps).expect("write BENCH_perf.json");
    println!("wrote {out}");

    if gate {
        let mut failures = Vec::new();
        for r in &results {
            if let Some(ratio) = r.ratio() {
                if ratio < gate_floor {
                    failures.push(format!("{}: ratio {ratio:.3} < floor {gate_floor}", r.name));
                }
            }
        }
        if let (Some(anchor), Some(cur)) =
            (baseline_eps, results.iter().find(|r| r.name == "episode_chains"))
        {
            let ratio = cur.per_sec() / anchor;
            if anchor > 0.0 && ratio < gate_floor {
                failures
                    .push(format!("episode_throughput: ratio {ratio:.3} < floor {gate_floor}"));
            }
        }
        if failures.is_empty() {
            println!("gate: ok (floor {gate_floor})");
        } else {
            for f in &failures {
                eprintln!("gate FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
