//! `perfbench` — the hot-path microbenchmark harness.
//!
//! Dependency-free, fixed-seed, median-of-k wall-clock benchmarks over the
//! engine's hot loops: end-to-end episode throughput on the synthetic chain
//! workload, STeM insert and probe, windowed-relation expiry (the
//! streaming layer's reclamation path), grouped-filter masking, and output
//! routing. Emits `BENCH_perf.json` so successive PRs accumulate a
//! performance trajectory (no thresholds here — CI only checks the file is
//! well-formed).
//!
//! Usage:
//!
//! ```text
//! perfbench [--quick] [--out <path>] [--baseline <path>]
//! ```
//!
//! `--quick` shrinks workload sizes and the repetition count for CI smoke
//! runs. `--baseline` points at a `BENCH_perf.json` produced by an earlier
//! build; its episode-throughput number is embedded in the output next to
//! the current one so regressions (or wins) are recorded in one artifact.

use roulette_core::{ColId, EngineConfig, QueryId, QuerySet, QuerySetColumn, RelId};
use roulette_exec::{GroupedFilter, RouletteEngine, Stem, VERSION_ALL};
use roulette_query::generator::chains_queries;
use roulette_storage::datagen::chains::{self, ChainsParams};
use std::sync::atomic::AtomicU32;
use std::time::{Duration, Instant};

/// One benchmark's result: the median wall-clock of `runs` repetitions over
/// `work` items.
struct BenchResult {
    name: &'static str,
    /// What one work item is (for the JSON's `unit` field).
    unit: &'static str,
    work: u64,
    runs: usize,
    median: Duration,
}

impl BenchResult {
    fn per_sec(&self) -> f64 {
        self.work as f64 / self.median.as_secs_f64().max(1e-12)
    }
}

/// Runs `f` `runs` times and keeps the median elapsed time. `f` returns the
/// number of work items it processed (must be identical across runs —
/// everything is fixed-seed).
fn bench(
    name: &'static str,
    unit: &'static str,
    runs: usize,
    mut f: impl FnMut() -> u64,
) -> BenchResult {
    let mut times = Vec::with_capacity(runs);
    let mut work = 0;
    for _ in 0..runs {
        let t0 = Instant::now();
        work = f();
        times.push(t0.elapsed());
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    let r = BenchResult { name, unit, work, runs, median };
    println!(
        "{:<28} {:>12.0} {}/s   (median of {} over {} items, {:.1} ms)",
        r.name,
        r.per_sec(),
        r.unit,
        r.runs,
        r.work,
        r.median.as_secs_f64() * 1e3
    );
    r
}

/// End-to-end episode throughput on the Fig. 15 chain workload: the number
/// the tentpole's ≥1.3× acceptance criterion is measured on.
fn bench_episode_chains(quick: bool, runs: usize) -> BenchResult {
    let params = ChainsParams {
        chains: 4,
        relations: 9,
        domain: if quick { 1024 } else { 4096 },
        hub_rows: if quick { 1 << 14 } else { 1 << 18 },
    };
    let ds = chains::generate(params, 7);
    let queries = chains_queries(&ds, 8, 11).expect("chain query generation");
    bench("episode_chains", "episodes", runs, || {
        let engine = RouletteEngine::new(&ds.catalog, EngineConfig::default());
        let out = engine.execute_batch(&queries).expect("chains batch");
        assert!(out.per_query.iter().all(|r| r.is_complete()));
        out.stats.episodes
    })
}

/// STeM build side: vectors of 1024 tuples inserted into one hash index.
fn bench_stem_insert(quick: bool, runs: usize) -> BenchResult {
    let n: u32 = if quick { 1 << 16 } else { 1 << 19 };
    let q = QuerySet::full(64);
    let mut qsets = QuerySetColumn::new(q.width());
    for _ in 0..1024 {
        qsets.push(q.words());
    }
    bench("stem_insert", "tuples", runs, || {
        let stem = Stem::new(RelId(0), vec![ColId(0)], q.width());
        let global = AtomicU32::new(0);
        let mut vids = vec![0u32; 1024];
        let mut keys = vec![0i64; 1024];
        for base in (0..n).step_by(1024) {
            for i in 0..1024u32 {
                vids[i as usize] = base + i;
                // ~4 entries per key so probe chains have realistic length.
                keys[i as usize] = ((base + i) % (n / 4)) as i64;
            }
            stem.insert_vector(&vids, &qsets, std::slice::from_ref(&keys), &global);
        }
        n as u64
    })
}

/// STeM probe side over a pre-built index (chain length ≈ 4).
fn bench_stem_probe(quick: bool, runs: usize) -> BenchResult {
    let n: u32 = if quick { 1 << 16 } else { 1 << 19 };
    let probes: u32 = if quick { 1 << 17 } else { 1 << 20 };
    let q = QuerySet::full(64);
    let stem = Stem::new(RelId(0), vec![ColId(0)], q.width());
    let global = AtomicU32::new(0);
    let mut qsets = QuerySetColumn::new(q.width());
    for _ in 0..1024 {
        qsets.push(q.words());
    }
    let mut vids = vec![0u32; 1024];
    let mut keys = vec![0i64; 1024];
    for base in (0..n).step_by(1024) {
        for i in 0..1024u32 {
            vids[i as usize] = base + i;
            keys[i as usize] = ((base + i) % (n / 4)) as i64;
        }
        stem.insert_vector(&vids, &qsets, std::slice::from_ref(&keys), &global);
    }
    bench("stem_probe", "probes", runs, || {
        let reader = stem.read();
        let mut matches = 0u64;
        // SplitMix-style stride so probe keys are not sequential.
        let mut k = 0x9E37_79B9u32;
        for _ in 0..probes {
            k = k.wrapping_mul(0x01000193).wrapping_add(1);
            let key = (k % (n / 2)) as i64; // half the keys miss
            reader.probe(0, key, VERSION_ALL, |_, _| matches += 1);
        }
        std::hint::black_box(matches);
        probes as u64
    })
}

/// Window expiry: sliding a one-tick window over a pre-built windowed
/// relation, measuring tuples reclaimed per second through the prefix
/// compaction that backs the streaming layer's STeM reclamation.
fn bench_stem_expiry(quick: bool, runs: usize) -> BenchResult {
    let ticks: u64 = 64;
    let per_tick: usize = if quick { 1 << 10 } else { 1 << 13 };
    let total = ticks * per_tick as u64;
    let rows: Vec<Vec<i64>> = (0..per_tick)
        .map(|i| vec![i as i64, (i as i64).wrapping_mul(31), i as i64 % 97, -(i as i64)])
        .collect();
    let mut base = roulette_stream::WindowedRelation::new("t", &["a", "b", "c", "d"]);
    for t in 1..=ticks {
        base.append(t, &rows).expect("append");
    }
    bench("stem_expiry", "tuples", runs, || {
        let mut rel = base.clone();
        let mut reclaimed = 0u64;
        // Slide a one-tick window across the buffer: each advance expires
        // exactly one tick's tuples and compacts the live prefix.
        for now in 2..=ticks + 1 {
            reclaimed += rel.expire(now, 1);
        }
        assert_eq!(reclaimed, total);
        std::hint::black_box(rel.len());
        reclaimed
    })
}

/// Grouped-filter masking: range lookups over a 64-query group.
fn bench_filter_mask(quick: bool, runs: usize) -> BenchResult {
    let n: usize = if quick { 1 << 18 } else { 1 << 21 };
    let capacity = 64;
    let preds: Vec<(QueryId, i64, i64)> = (0..capacity)
        .map(|i| {
            let lo = (i as i64 * 13) % 1000;
            (QueryId(i as u32), lo, lo + 150)
        })
        .collect();
    let filter = GroupedFilter::build(&preds, capacity);
    bench("filter_mask", "values", runs, || {
        let mut acc = 0u64;
        let mut v = 1i64;
        for _ in 0..n {
            v = (v.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407) >> 33)
                % 1200;
            let mask = filter.mask_for(v);
            acc = acc.wrapping_add(mask.iter().copied().fold(0, u64::wrapping_add));
        }
        std::hint::black_box(acc);
        n as u64
    })
}

/// Output routing: a scan-only multi-query batch with projections, where
/// episode time is dominated by the locality-conscious router.
fn bench_routing(quick: bool, runs: usize) -> BenchResult {
    let rows: usize = if quick { 1 << 15 } else { 1 << 18 };
    let mut c = roulette_storage::Catalog::new();
    let mut b = roulette_storage::RelationBuilder::new("t");
    b.int64("k", (0..rows as i64).collect());
    b.int64("v", (0..rows as i64).map(|i| i % 1024).collect());
    c.add(b.build()).expect("catalog");
    let queries: Vec<_> = (0..8)
        .map(|i| {
            roulette_query::SpjQuery::builder(&c)
                .relation("t")
                .range("t", "v", 0, 512 + i * 32)
                .project("t", "k")
                .build()
                .expect("query")
        })
        .collect();
    bench("routing", "rows", runs, || {
        let engine = RouletteEngine::new(&c, EngineConfig::default());
        let out = engine.execute_batch(&queries).expect("routing batch");
        out.per_query.iter().map(|r| r.rows).sum()
    })
}

/// Pulls `"episode_chains"`'s throughput back out of a previously written
/// `BENCH_perf.json` (own format — a targeted scan beats a JSON parser).
fn read_baseline_eps(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let bench_pos = text.find("\"name\": \"episode_chains\"")?;
    let tail = &text[bench_pos..];
    let field = "\"per_sec\": ";
    let v = &tail[tail.find(field)? + field.len()..];
    let end = v.find([',', '\n', '}'])?;
    v[..end].trim().parse().ok()
}

fn json_f64(v: f64) -> String {
    if v.is_finite() { format!("{v:.3}") } else { "null".to_string() }
}

fn write_json(
    path: &str,
    quick: bool,
    results: &[BenchResult],
    baseline_eps: Option<f64>,
) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"roulette-perfbench/v1\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    let current_eps = results
        .iter()
        .find(|r| r.name == "episode_chains")
        .map(|r| r.per_sec());
    s.push_str("  \"episode_throughput\": {\n");
    s.push_str(&format!(
        "    \"baseline_eps\": {},\n",
        baseline_eps.map_or("null".to_string(), json_f64)
    ));
    s.push_str(&format!(
        "    \"current_eps\": {},\n",
        current_eps.map_or("null".to_string(), json_f64)
    ));
    let ratio = match (baseline_eps, current_eps) {
        (Some(b), Some(c)) if b > 0.0 => Some(c / b),
        _ => None,
    };
    s.push_str(&format!(
        "    \"ratio\": {}\n",
        ratio.map_or("null".to_string(), json_f64)
    ));
    s.push_str("  },\n");
    s.push_str("  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        s.push_str(&format!("      \"unit\": \"{}\",\n", r.unit));
        s.push_str(&format!("      \"work_items\": {},\n", r.work));
        s.push_str(&format!("      \"runs\": {},\n", r.runs));
        s.push_str(&format!(
            "      \"median_ms\": {},\n",
            json_f64(r.median.as_secs_f64() * 1e3)
        ));
        s.push_str(&format!("      \"per_sec\": {}\n", json_f64(r.per_sec())));
        s.push_str(if i + 1 == results.len() { "    }\n" } else { "    },\n" });
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out = flag("--out").unwrap_or_else(|| "BENCH_perf.json".to_string());
    let baseline_eps = flag("--baseline").and_then(|p| read_baseline_eps(&p));
    let runs = if quick { 3 } else { 5 };

    println!("perfbench (quick={quick}, median of {runs})");
    let results = vec![
        bench_episode_chains(quick, runs),
        bench_stem_insert(quick, runs),
        bench_stem_probe(quick, runs),
        bench_stem_expiry(quick, runs),
        bench_filter_mask(quick, runs),
        bench_routing(quick, runs),
    ];
    if let Some(b) = baseline_eps {
        let cur = results[0].per_sec();
        println!("episode_chains: baseline {:.1}/s -> current {:.1}/s ({:.2}x)", b, cur, cur / b);
    }
    write_json(&out, quick, &results, baseline_eps).expect("write BENCH_perf.json");
    println!("wrote {out}");
}
