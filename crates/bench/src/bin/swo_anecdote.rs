//! Standalone figure target; see the crate docs for scaling knobs.
fn main() {
    let scale = roulette_bench::Scale::from_env();
    roulette_bench::run_figure("swo_anecdote", scale, roulette_bench::misc::swo_anecdote);
}
