//! Standalone figure target; see the crate docs for scaling knobs.
fn main() {
    roulette_bench::misc::swo_anecdote(roulette_bench::Scale::from_env());
}
