//! Standalone figure target; see the crate docs for scaling knobs.
fn main() {
    roulette_bench::fig16::fig16(roulette_bench::Scale::from_env());
}
