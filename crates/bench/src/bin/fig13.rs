//! Standalone figure target; see the crate docs for scaling knobs.
fn main() {
    let scale = roulette_bench::Scale::from_env();
    roulette_bench::run_figure("fig13", scale, roulette_bench::fig12_14::fig13);
}
