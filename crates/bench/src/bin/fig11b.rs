//! Standalone figure target; see the crate docs for scaling knobs.
fn main() {
    roulette_bench::fig11::fig11b(roulette_bench::Scale::from_env());
}
