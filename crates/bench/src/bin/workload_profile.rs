//! Workload profile: per-query join counts, predicate counts, output
//! sizes, and query-at-a-time latency for the JOB-style workload at the
//! current scale — useful for sanity-checking generator changes.
use rand::rngs::StdRng;
use rand::SeedableRng;
use roulette_bench::Scale;
use roulette_baselines::{ExecMode, QatEngine};
use roulette_query::generator::{job_pool, sample_batch};
use roulette_storage::datagen::imdb;

fn main() {
    let scale = Scale::from_env();
    let ds = imdb::generate(scale.sf(0.25), scale.seed);
    let pool = job_pool(&ds, scale.n(96), scale.seed).expect("workload generation");
    let qat = QatEngine::new(&ds.catalog, ExecMode::Vectorized, 7);
    let mut rng = StdRng::seed_from_u64(scale.seed);
    let queries = sample_batch(&pool, scale.n(24), &mut rng);
    for (i, q) in queries.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let r = qat.execute(q);
        println!("Q{i}: {} joins, {} preds -> {} rows in {:?}", q.n_joins(), q.predicates.len(), r.rows, t0.elapsed());
    }
}
