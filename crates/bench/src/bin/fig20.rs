//! Standalone figure target; see the crate docs for scaling knobs.
fn main() {
    roulette_bench::fig19_20::fig20(roulette_bench::Scale::from_env());
}
