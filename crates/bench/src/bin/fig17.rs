//! Standalone figure target; see the crate docs for scaling knobs.
fn main() {
    let scale = roulette_bench::Scale::from_env();
    roulette_bench::run_figure("fig17", scale, roulette_bench::fig17_18::fig17);
}
