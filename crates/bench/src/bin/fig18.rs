//! Standalone figure target; see the crate docs for scaling knobs.
fn main() {
    roulette_bench::fig17_18::fig18(roulette_bench::Scale::from_env());
}
