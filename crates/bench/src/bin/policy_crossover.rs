//! Policy crossover study (supplement to Fig. 13): the learned policy
//! pays an exploration transient, so its advantage over the greedy
//! selectivity heuristic emerges with episode count. This target sweeps
//! dataset scale / vector size and prints the learned/greedy
//! intermediate-tuple ratio — it crosses below 1.0 around two thousand
//! episodes and keeps improving, which is the regime the paper's SF10
//! experiments run in (tens of thousands of episodes per batch).
use rand::rngs::StdRng;
use rand::SeedableRng;
use roulette_core::{CostModel, EngineConfig};
use roulette_policy::{GreedyPolicy, QLearningPolicy};
use roulette_query::generator::{job_pool, sample_batch};
use roulette_storage::datagen::imdb;

fn main() {
    for (sf, vs) in [(0.3f64, 256usize), (1.0, 256), (1.0, 64), (2.0, 64)] {
        let ds = imdb::generate(sf, 42);
        let pool = job_pool(&ds, 64, 42).expect("workload generation");
        let mut rng = StdRng::seed_from_u64(99);
        let queries = sample_batch(&pool, 16, &mut rng);
        let config = EngineConfig::default().with_vector_size(vs).unwrap();
        let engine = roulette_bench::harness::engine(&ds.catalog, config.clone());
        let learned = engine
            .execute_batch_with_policy(
                &queries,
                Box::new(QLearningPolicy::new(CostModel::default(), &config)),
            )
            .unwrap();
        let lottery = engine
            .execute_batch_with_policy(&queries, Box::new(GreedyPolicy::lottery(3)))
            .unwrap();
        println!(
            "sf={sf} vs={vs}: episodes={} learned={} lottery={} ratio={:.2}",
            learned.stats.episodes,
            learned.stats.join_tuples,
            lottery.stats.join_tuples,
            learned.stats.join_tuples as f64 / lottery.stats.join_tuples as f64
        );
    }
    roulette_bench::harness::dump_telemetry("policy_crossover");
}
