//! `stream_scenario` — the streaming scenario family.
//!
//! Runs seeded continuous-query scenarios through the streaming driver
//! and emits `BENCH_stream.json` with one per-drift recovery curve per
//! scheduled drift event: the frozen pre-drift baseline, the per-epoch
//! values after the drift, and the epochs until the policy re-entered
//! twice its pre-drift baseline. Recovery is measured on the
//! *reward-normalized* TD error (per-epoch TD mean ÷ mean |reward|):
//! drifts such as a join-skew flip multiply episode cost and hence
//! absolute TD error, so only the ratio is comparable across the drift
//! boundary. `td_per_epoch` reports the raw TD means alongside
//! `td_rel_per_epoch` for reference.
//!
//! Scenarios:
//!
//! * `steady` — window churn only, no drift: the leak/accounting and
//!   expiry-volume reference;
//! * `drift` — the scripted drift schedule with plain ε-greedy recovery;
//! * `drift-reset` — the same schedule with the TD-spike exploration-boost
//!   reset heuristic armed.
//!
//! Usage:
//!
//! ```text
//! stream_scenario [--quick] [--gate] [--out <path>] [--seed <n>]
//! ```
//!
//! `--gate` makes the binary exit non-zero when the smoke invariants fail:
//! any leaked query, or any drift event whose recovery curve never closed
//! (TD error back within 2× the pre-drift baseline) — the CI `stream-smoke`
//! job runs with this flag.

use roulette_stream::{RecoveryCurve, StreamConfig, StreamDriver, StreamReport};

struct Scenario {
    name: &'static str,
    config: StreamConfig,
}

fn scenarios(quick: bool, seed: u64) -> Vec<Scenario> {
    let epochs = if quick { 40 } else { 72 };
    let warmup = if quick { 12 } else { 18 };
    let base = StreamConfig::default().with_seed(seed).with_epochs(epochs).with_window(6);
    // Churn reference: queries arrive and depart continuously; no drift.
    // Churn keeps minting unseen policy states (the Q-state includes the
    // co-resident query set), so no TD baseline exists here — this
    // scenario pins the accounting and expiry invariants instead.
    let mut steady = base.clone();
    steady.warmup = warmup;
    steady.drift_events = 0;
    // Drift scenarios run a *fixed* continuous-query set so the policy's
    // per-epoch TD error converges to a measurable pre-drift baseline;
    // the recovery curves are only meaningful against that quiet floor.
    let mut drift = base.clone();
    drift.warmup = warmup;
    drift.drift_events = if quick { 2 } else { 3 };
    drift.arrival_rate = 0.0;
    drift.departure_rate = 0.0;
    let mut drift_reset = drift.clone();
    drift_reset.reset_heuristic = true;
    // The demo arms an aggressive spike detector (default 3× never trips
    // on this workload's noise floor); occasional noise-triggered boosts
    // are the honest cost of that sensitivity.
    drift_reset.recovery.spike_factor = 1.4;
    vec![
        Scenario { name: "steady", config: steady },
        Scenario { name: "drift", config: drift },
        Scenario { name: "drift-reset", config: drift_reset },
    ]
}

fn json_f64(v: f64) -> String {
    if v.is_finite() { format!("{v:.4}") } else { "null".to_string() }
}

fn curve_json(c: &RecoveryCurve, indent: &str) -> String {
    let points: Vec<String> = c.curve.iter().map(|&v| json_f64(v)).collect();
    format!(
        "{indent}{{\n\
         {indent}  \"kind\": \"{}\",\n\
         {indent}  \"epoch\": {},\n\
         {indent}  \"baseline_td\": {},\n\
         {indent}  \"recovered_after\": {},\n\
         {indent}  \"recovered\": {},\n\
         {indent}  \"curve\": [{}]\n\
         {indent}}}",
        c.kind,
        c.epoch,
        json_f64(c.baseline),
        c.recovered_after.map_or("null".to_string(), |n| n.to_string()),
        c.recovered(),
        points.join(", ")
    )
}

fn scenario_json(name: &str, cfg: &StreamConfig, report: &StreamReport) -> String {
    let mut s = String::new();
    s.push_str("    {\n");
    s.push_str(&format!("      \"name\": \"{name}\",\n"));
    s.push_str(&format!("      \"seed\": {},\n", cfg.seed));
    s.push_str(&format!("      \"epochs\": {},\n", cfg.epochs));
    s.push_str(&format!("      \"window\": {},\n", cfg.window));
    s.push_str(&format!("      \"warmup\": {},\n", cfg.warmup));
    s.push_str(&format!("      \"drift_events\": {},\n", cfg.drift_events));
    s.push_str(&format!("      \"reset_heuristic\": {},\n", cfg.reset_heuristic));
    s.push_str(&format!("      \"admitted\": {},\n", report.admitted_total));
    s.push_str(&format!("      \"departed\": {},\n", report.departed_total));
    s.push_str(&format!("      \"completed\": {},\n", report.completed_total));
    s.push_str(&format!("      \"quarantined\": {},\n", report.quarantined_total));
    s.push_str(&format!("      \"leaked\": {},\n", report.leaked));
    s.push_str(&format!("      \"expired_tuples\": {},\n", report.expired_total));
    s.push_str(&format!("      \"episodes\": {},\n", report.episodes_total));
    s.push_str(&format!("      \"policy_resets\": {},\n", report.resets));
    let tds: Vec<String> = report
        .epochs
        .iter()
        .map(|e| e.td_mean.map_or("null".to_string(), json_f64))
        .collect();
    s.push_str(&format!("      \"td_per_epoch\": [{}],\n", tds.join(", ")));
    let rels: Vec<String> = report
        .epochs
        .iter()
        .map(|e| e.td_relative.map_or("null".to_string(), json_f64))
        .collect();
    s.push_str(&format!("      \"td_rel_per_epoch\": [{}],\n", rels.join(", ")));
    s.push_str("      \"recovery\": [\n");
    let curves: Vec<String> =
        report.curves.iter().map(|c| curve_json(c, "        ")).collect();
    s.push_str(&curves.join(",\n"));
    if !curves.is_empty() {
        s.push('\n');
    }
    s.push_str("      ]\n");
    s.push_str("    }");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate = args.iter().any(|a| a == "--gate");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out = flag("--out").unwrap_or_else(|| "BENCH_stream.json".to_string());
    let seed: u64 = flag("--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_57E3);

    println!("stream_scenario (quick={quick}, gate={gate}, seed={seed:#x})");
    let mut bodies = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for sc in scenarios(quick, seed) {
        let mut driver = StreamDriver::new(sc.config.clone()).expect("driver");
        let report = driver.run().expect("stream run");
        println!(
            "{:<12} epochs={:<3} admitted={:<4} departed={:<3} leaked={} expired={:<6} \
             drifts={} recovered={}/{} resets={}",
            sc.name,
            report.epochs.len(),
            report.admitted_total,
            report.departed_total,
            report.leaked,
            report.expired_total,
            report.curves.len(),
            report.curves.iter().filter(|c| c.recovered()).count(),
            report.curves.len(),
            report.resets,
        );
        for c in &report.curves {
            println!(
                "  drift {:<18} @epoch {:<3} baseline_td={:.4} recovered_after={:?}",
                c.kind, c.epoch, c.baseline, c.recovered_after
            );
        }
        if report.leaked > 0 {
            failures.push(format!("{}: {} leaked queries", sc.name, report.leaked));
        }
        if !report.all_recovered() {
            let stuck: Vec<&str> = report
                .curves
                .iter()
                .filter(|c| !c.recovered())
                .map(|c| c.kind.as_str())
                .collect();
            failures.push(format!(
                "{}: drift(s) never re-entered 2x baseline: {}",
                sc.name,
                stuck.join(", ")
            ));
        }
        bodies.push(scenario_json(sc.name, &sc.config, &report));
    }

    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"roulette-streambench/v1\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str("  \"scenarios\": [\n");
    s.push_str(&bodies.join(",\n"));
    s.push_str("\n  ]\n}\n");
    std::fs::write(&out, s).expect("write BENCH_stream.json");
    println!("wrote {out}");

    if gate && !failures.is_empty() {
        for f in &failures {
            eprintln!("stream-smoke gate failure: {f}");
        }
        std::process::exit(1);
    }
}
