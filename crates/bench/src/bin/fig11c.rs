//! Standalone figure target; see the crate docs for scaling knobs.
fn main() {
    roulette_bench::fig11::fig11c(roulette_bench::Scale::from_env());
}
