//! Figures 12–14 — JOB throughput, planning quality, and dynamic sharing.

use crate::harness::{fmt_qps, print_table, qps, Scale};
use crate::systems::{verify, Bench, System};
use rand::rngs::StdRng;
use rand::SeedableRng;
use roulette_baselines::{execute_global, stitch_plan_with_orders};
use roulette_core::{CostModel, EngineConfig, QuerySet, RelId, RelSet};
use roulette_exec::JoinSpace;
use roulette_policy::{GreedyPolicy, QLearningPolicy, Scope};
use roulette_query::generator::{job_pool, sample_batch};
use roulette_query::{JoinPred, QueryBatch, SpjQuery};
use roulette_storage::datagen::imdb::{self, ImdbDataset};

fn dataset(scale: Scale) -> ImdbDataset {
    imdb::generate(scale.sf(0.25), scale.seed)
}

/// Fig. 12: throughput on JOB-style batches (correlated data, many joins).
pub fn fig12(scale: Scale) {
    let ds = dataset(scale);
    let bench = Bench::new(&ds.catalog, EngineConfig::default());
    let pool = job_pool(&ds, scale.n(96), scale.seed).expect("workload generation");
    let n = scale.n(24);
    let systems = [System::Roulette, System::StitchShare, System::DbmsV, System::Monet];
    let mut header = vec!["batch"];
    header.extend(systems.iter().map(|s| s.label()));
    let mut rows = Vec::new();
    for b in 0..3 {
        let mut rng = StdRng::seed_from_u64(scale.seed + b);
        let queries = sample_batch(&pool, n, &mut rng);
        let reference = bench.run(System::DbmsV, &queries);
        let mut row = vec![format!("{}", b + 1)];
        for sys in systems {
            let out = bench.run(sys, &queries);
            if sys != System::DbmsV {
                verify(&out, &reference, sys.label());
            }
            row.push(fmt_qps(qps(queries.len(), out.elapsed)));
        }
        rows.push(row);
    }
    print_table(
        &format!("Fig 12: throughput (q/s) on {n}-query JOB batches"),
        &header,
        &rows,
    );
}

/// Decodes the learned policy's left-deep plan for a single query: runs it
/// solo through RouLette, then greedily walks the Q-table (§6.2's
/// Stitch&Share–Sim per-query planning). Returns the order plus the solo
/// run's intermediate join tuples (the RouLette-QaaT data point).
fn learned_order(
    catalog: &roulette_storage::Catalog,
    config: &EngineConfig,
    q: &SpjQuery,
) -> ((RelId, Vec<(JoinPred, RelId)>), u64) {
    let engine = crate::harness::engine(catalog, config.clone());
    let mut session = engine
        .session_with_policy(1, Box::new(QLearningPolicy::new(CostModel::default(), config)));
    session.admit(q.clone()).expect("admit");
    session.run();
    let solo_tuples = session.stats().join_tuples;

    let batch = session.batch();
    let space = JoinSpace::new(batch);
    let qset = QuerySet::full(1);
    let order = session.with_policy(|policy| {
        // Root: the relation whose plan the policy values best.
        let mut best_root = q.relations.first().unwrap();
        let mut best_est = f64::NEG_INFINITY;
        for rel in q.relations.iter() {
            let est = policy.estimate(Scope::JOIN, RelSet::singleton(rel).0, &qset, &space);
            if est > best_est {
                best_est = est;
                best_root = rel;
            }
        }
        let mut lineage = RelSet::singleton(best_root);
        let mut steps: Vec<(JoinPred, RelId)> = Vec::new();
        let mut candidates = Vec::new();
        loop {
            batch.join_candidates(lineage, &qset, &mut candidates);
            if candidates.is_empty() {
                break;
            }
            let op = policy.choose(Scope::JOIN, lineage.0, &qset, &candidates, &space);
            let edge = *batch.edge(op);
            let (a, b) = edge.rels();
            let target = if lineage.contains(a) { b } else { a };
            steps.push((edge, target));
            lineage = lineage.with(target);
        }
        (best_root, steps)
    });
    (order, solo_tuples)
}

/// Fig. 13: intermediate join tuples of the four policy configurations
/// across batch sizes (RouLette's learned global policy, the greedy
/// selectivity policy, per-query learned plans stitched, and RouLette
/// query-at-a-time).
pub fn fig13(scale: Scale) {
    // A smaller dataset than Fig. 12's: this figure's metric is the
    // *relative* intermediate-tuple count of the policies, and greedy's
    // worst orders are orders of magnitude more expensive — small data
    // keeps them runnable.
    let ds = imdb::generate(scale.sf(0.12), scale.seed);
    let pool = job_pool(&ds, scale.n(64), scale.seed).expect("workload generation");
    // Small vectors give the policy enough episodes to learn within one
    // batch (the paper's SF10 runs see thousands of episodes; this
    // dataset would otherwise finish in a handful).
    let config = EngineConfig::default().with_vector_size(64).unwrap();
    let engine = crate::harness::engine(&ds.catalog, config.clone());

    let mut rows = Vec::new();
    let sizes = [1usize, 2, 4, 8, 16];
    let mut id = 0;
    for &n in &sizes {
        for b in 0..2 {
            id += 1;
            let mut rng = StdRng::seed_from_u64(scale.seed * 7 + n as u64 * 13 + b);
            let queries = sample_batch(&pool, scale.n(n), &mut rng);

            let roulette = engine.execute_batch(&queries).expect("batch");
            // The paper's baseline (CACQ/CJOIN) uses lottery scheduling;
            // the deterministic argmin variant is reported as well because
            // it is a *stronger* greedy than the published systems.
            let lottery = engine
                .execute_batch_with_policy(&queries, Box::new(GreedyPolicy::lottery(3)))
                .expect("batch");
            let argmin = engine
                .execute_batch_with_policy(&queries, Box::new(GreedyPolicy::with_defaults(3)))
                .expect("batch");
            assert_eq!(roulette.per_query, lottery.per_query);
            assert_eq!(roulette.per_query, argmin.per_query);

            // Per-query learned plans → stitched global plan; the solo runs
            // double as the RouLette-QaaT series.
            let mut orders = Vec::with_capacity(queries.len());
            let mut qaat_tuples = 0u64;
            for q in &queries {
                let (order, solo) = learned_order(&ds.catalog, &config, q);
                orders.push(order);
                qaat_tuples += solo;
            }
            let stitched = stitch_plan_with_orders(&queries, &orders);
            let qb = QueryBatch::from_queries(ds.catalog.len(), &queries).expect("batch");
            let sim = execute_global(&ds.catalog, &qb, &stitched);
            assert_eq!(sim.per_query, roulette.per_query);

            rows.push(vec![
                id.to_string(),
                queries.len().to_string(),
                roulette.stats.join_tuples.to_string(),
                lottery.stats.join_tuples.to_string(),
                argmin.stats.join_tuples.to_string(),
                sim.join_tuples.to_string(),
                qaat_tuples.to_string(),
            ]);
        }
    }
    print_table(
        "Fig 13: intermediate join tuples per policy (JOB batches)",
        &[
            "batch",
            "size",
            "RouLette",
            "Greedy (CACQ)",
            "Greedy-argmin",
            "Stitch&Share-Sim",
            "RouLette-QaaT",
        ],
        &rows,
    );
}

/// Fig. 14: join tuples vs admission input overlap, for admission batch
/// sizes 1/2/4 (repeated instances of one JOB query).
pub fn fig14(scale: Scale) {
    let ds = dataset(scale);
    // A mid-size query (the paper uses JOB 17a, ~6 joins).
    let template = job_pool(&ds, 64, scale.seed).expect("workload generation")
        .into_iter()
        .find(|q| (5..=7).contains(&q.n_joins()))
        .expect("mid-size query exists");
    let total_instances = 8usize;
    let config = EngineConfig::default();

    let mut rows = Vec::new();
    for overlap in [0u32, 20, 40, 60, 80, 100] {
        let mut row = vec![format!("{overlap}%")];
        for admission_batch in [1usize, 2, 4] {
            let engine = crate::harness::engine(&ds.catalog, config.clone());
            let mut session = engine.session(total_instances);
            let mut admitted = 0usize;
            while admitted < total_instances {
                let mut last = None;
                for _ in 0..admission_batch.min(total_instances - admitted) {
                    last = Some(session.admit(template.clone()).expect("admit"));
                    admitted += 1;
                }
                if admitted < total_instances {
                    let last = last.unwrap();
                    let threshold = 1.0 - overlap as f64 / 100.0;
                    while session.progress(last) < threshold - 1e-9 {
                        if !session.step() {
                            break;
                        }
                    }
                }
            }
            session.run();
            let stats = session.stats();
            row.push(stats.join_tuples.to_string());
        }
        rows.push(row);
    }
    print_table(
        &format!(
            "Fig 14: join tuples vs admission input overlap ({total_instances} instances)"
        ),
        &["overlap", "RouLette-1", "RouLette-2", "RouLette-4"],
        &rows,
    );
}
