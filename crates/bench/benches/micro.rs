//! Criterion micro-benchmarks for the shared operators: the grouped filter
//! vs per-query predicate evaluation (§5.1), STeM insert/probe throughput,
//! query-set intersection, and multi-step optimization latency (the
//! per-episode planning cost that replaces sharing-aware optimization).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roulette_core::{ColId, QueryId, QuerySet, QuerySetColumn, RelId};
use roulette_exec::{GroupedFilter, JoinSpace, PlainFilter, Stem, VERSION_ALL};
use roulette_policy::{Policy, RandomPolicy};
use roulette_query::generator::{tpcds_pool, SensitivityParams};
use roulette_query::QueryBatch;
use roulette_storage::datagen::tpcds;
use std::hint::black_box;
use std::sync::atomic::AtomicU32;
use std::time::Duration;

/// Keep `cargo bench` wall-clock friendly: micro effects here are large
/// (2-20x), so short measurement windows resolve them fine.
fn tune(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
}

fn bench_filters(c: &mut Criterion) {
    let mut group = c.benchmark_group("shared_selection");
    tune(&mut group);
    let mut rng = StdRng::seed_from_u64(1);
    let values: Vec<i64> = (0..1024).map(|_| rng.gen_range(0..1000)).collect();
    for &n_queries in &[16usize, 64, 256, 1024] {
        let preds: Vec<(QueryId, i64, i64)> = (0..n_queries)
            .map(|q| {
                let lo = rng.gen_range(0..900i64);
                (QueryId(q as u32), lo, lo + 50)
            })
            .collect();
        let grouped = GroupedFilter::build(&preds, n_queries);
        let plain = PlainFilter::new(&preds, n_queries);
        group.throughput(Throughput::Elements(values.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("grouped", n_queries),
            &values,
            |b, values| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for &v in values {
                        acc ^= grouped.mask_for(v)[0];
                    }
                    black_box(acc)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("plain", n_queries), &values, |b, values| {
            let words = n_queries.div_ceil(64);
            let mut mask = vec![0u64; words];
            b.iter(|| {
                let mut acc = 0u64;
                for &v in values {
                    plain.mask_into(v, &mut mask);
                    acc ^= mask[0];
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_stem(c: &mut Criterion) {
    let mut group = c.benchmark_group("stem");
    tune(&mut group);
    let mut rng = StdRng::seed_from_u64(2);
    let n = 64 * 1024usize;
    let keys: Vec<i64> = (0..n).map(|_| rng.gen_range(0..(n as i64 / 4))).collect();
    let vids: Vec<u32> = (0..n as u32).collect();
    let full = QuerySet::full(64);
    let mut qsets = QuerySetColumn::new(1);
    for _ in 0..n {
        qsets.push(full.words());
    }

    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("insert_64k", |b| {
        b.iter(|| {
            let stem = Stem::new(RelId(0), vec![ColId(0)], 1);
            let global = AtomicU32::new(0);
            for chunk in 0..(n / 1024) {
                let r = chunk * 1024..(chunk + 1) * 1024;
                let mut qc = QuerySetColumn::new(1);
                for _ in 0..1024 {
                    qc.push(full.words());
                }
                stem.insert_vector(&vids[r.clone()], &qc, &[keys[r].to_vec()], &global);
            }
            black_box(stem.len())
        })
    });

    let stem = Stem::new(RelId(0), vec![ColId(0)], 1);
    let global = AtomicU32::new(0);
    stem.insert_vector(&vids, &qsets, std::slice::from_ref(&keys), &global);
    group.bench_function("probe_64k", |b| {
        b.iter(|| {
            let reader = stem.read();
            let mut hits = 0u64;
            for &k in keys.iter().take(1024) {
                reader.probe(0, k, VERSION_ALL, |_, _| hits += 1);
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_queryset(c: &mut Criterion) {
    let mut group = c.benchmark_group("queryset");
    tune(&mut group);
    for &n_queries in &[64usize, 512, 4096] {
        let words = n_queries.div_ceil(64);
        let full = QuerySet::full(n_queries);
        let mut col = QuerySetColumn::new(words);
        for _ in 0..1024 {
            col.push(full.words());
        }
        let mask = QuerySet::full(n_queries / 2);
        let mask_words: Vec<u64> = mask
            .words()
            .iter()
            .copied()
            .chain(std::iter::repeat(0))
            .take(words)
            .collect();
        group.throughput(Throughput::Elements(1024));
        group.bench_with_input(
            BenchmarkId::new("and_row_1024", n_queries),
            &mask_words,
            |b, mask_words| {
                b.iter(|| {
                    let mut col = col.clone();
                    let mut kept = 0u64;
                    for i in 0..1024 {
                        if col.and_row(i, mask_words) {
                            kept += 1;
                        }
                    }
                    black_box(kept)
                })
            },
        );
    }
    group.finish();
}

fn bench_planning(c: &mut Criterion) {
    // Per-episode plan construction latency — the cost RouLette pays
    // instead of sharing-aware optimization. Must stay microseconds even
    // for large batches (the paper's scalability argument).
    let mut group = c.benchmark_group("multi_step_optimization");
    tune(&mut group);
    let ds = tpcds::generate(0.05, 3);
    for &n_queries in &[16usize, 64, 256] {
        let queries = tpcds_pool(&ds, SensitivityParams::default(), n_queries, 5).expect("workload generation");
        let batch = QueryBatch::from_queries(ds.catalog.len(), &queries).unwrap();
        let space = JoinSpace::new(&batch);
        let mut policy = RandomPolicy::new(9);
        let root = ds.meta.store().fact;
        let all = QuerySet::full(n_queries);
        group.bench_with_input(
            BenchmarkId::new("plan_join_phase", n_queries),
            &batch,
            |b, batch| {
                b.iter(|| {
                    let plan = roulette_exec::planner::plan_join_phase(
                        batch,
                        &space,
                        &mut policy as &mut dyn Policy,
                        root,
                        &all,
                    );
                    black_box(plan.probe_count())
                })
            },
        );
    }
    group.finish();
}

fn bench_router(c: &mut Criterion) {
    // Locality-conscious two-pass routing vs direct per-tuple multicast
    // (§5.1): the two-pass router issues one sink update per query per
    // vector instead of one per tuple per query.
    use roulette_core::EngineConfig;
    use roulette_exec::RouletteEngine;
    let mut group = c.benchmark_group("router");
    tune(&mut group);
    let ds = tpcds::generate(0.1, 3);
    let queries = tpcds_pool(&ds, SensitivityParams::default(), 128, 5).expect("workload generation");
    for (label, locality) in [("two_pass", true), ("direct", false)] {
        let cfg = EngineConfig { locality_router: locality, ..EngineConfig::default() };
        group.bench_function(label, |b| {
            b.iter(|| {
                let out = RouletteEngine::new(&ds.catalog, cfg.clone())
                    .execute_batch(&queries)
                    .unwrap();
                black_box(out.stats.route_ns)
            })
        });
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    // Scalar reference vs wide kernels for the four hot loops (DESIGN.md
    // §14), at a one-word (≤64 queries) and a multi-word (300 queries)
    // query-set width.
    use roulette_core::RowMask;
    use roulette_exec::{KernelMode, Kernels, Partition};
    let mut group = c.benchmark_group("kernels");
    tune(&mut group);
    let n = 4096usize;
    let mut rng = StdRng::seed_from_u64(5);
    let values: Vec<i64> = (0..n).map(|_| rng.gen_range(-200..1000)).collect();
    let modes = [
        ("scalar", Kernels::with_mode(KernelMode::Scalar)),
        ("wide", Kernels::with_mode(KernelMode::Wide)),
    ];
    for &capacity in &[64usize, 300] {
        let words = QuerySet::full(capacity).width();
        let preds: Vec<(QueryId, i64, i64)> = (0..capacity)
            .map(|q| {
                let lo = rng.gen_range(0..900i64);
                (QueryId(q as u32), lo, lo + 50)
            })
            .collect();
        let filter = GroupedFilter::build(&preds, capacity);
        let mut template = QuerySetColumn::new(words);
        let mut row_masks: Vec<u64> = Vec::with_capacity(n * words);
        for _ in 0..n {
            let row: Vec<u64> = (0..words).map(|_| rng.gen::<u64>() | 1).collect();
            template.push(&row);
            row_masks.extend((0..words).map(|_| rng.gen::<u64>()));
        }
        let mut keep_pat = RowMask::new();
        keep_pat.clear_resize(n);
        for i in 0..n {
            if rng.gen_range(0..100) < 55 {
                keep_pat.set(i);
            }
        }
        let routed = QuerySet::full(capacity);
        group.throughput(Throughput::Elements(n as u64));
        for (label, k) in &modes {
            group.bench_with_input(
                BenchmarkId::new(format!("filter_mask/{label}"), capacity),
                &values,
                |b, values| {
                    let mut qsets = template.clone();
                    let mut keep = RowMask::new();
                    b.iter(|| {
                        qsets.clear();
                        qsets.push_rows(template.raw());
                        k.filter_grouped(&filter, values, &mut qsets, &mut keep);
                        black_box(keep.count())
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("qset_and/{label}"), capacity),
                &row_masks,
                |b, masks| {
                    let mut qsets = template.clone();
                    let mut keep = RowMask::new();
                    b.iter(|| {
                        qsets.clear();
                        qsets.push_rows(template.raw());
                        k.qset_and(&mut qsets, masks, &mut keep);
                        black_box(keep.count())
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("compaction/{label}"), capacity),
                &keep_pat,
                |b, keep| {
                    let vals: Vec<u32> = (0..n as u32).collect();
                    b.iter(|| {
                        let mut qsets = template.clone();
                        let mut col = vals.clone();
                        k.compact_u32(&mut col, keep);
                        k.compact_qsets(&mut qsets, keep);
                        black_box(qsets.len())
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("routing/{label}"), capacity),
                &routed,
                |b, routed| {
                    let mut part = Partition::new();
                    b.iter(|| black_box(k.partition(&template, routed, &mut part)))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_filters,
    bench_stem,
    bench_queryset,
    bench_planning,
    bench_router,
    bench_kernels
);
criterion_main!(benches);
