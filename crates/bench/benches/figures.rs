//! `cargo bench` entry point that regenerates every table/figure of the
//! paper's evaluation at the harness scale (see `ROULETTE_SCALE`).

fn main() {
    // Respect `cargo bench -- --help`-style flags minimally: run
    // everything; criterion-style filtering is not needed here.
    let scale = roulette_bench::Scale::from_env();
    println!("RouLette figure reproduction (scale {:.2}, seed {})", scale.factor, scale.seed);
    roulette_bench::run_all(scale);
}
