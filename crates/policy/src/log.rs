//! The execution log (§4.3).
//!
//! By monitoring execution, the eddy generates a log entry for each
//! processed operator in the format `(L, Q, o, n_in, n_out, n_div)`, where
//! `n_div` is the output size of the divergence routing selection
//! `σ_{Q−Q_o}`, if any. At the end of each episode the entries drive
//! policy updates.

use crate::space::{Lineage, OpId, Scope};
use roulette_core::QuerySet;

/// One execution-log record.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Plan space the operator belongs to.
    pub scope: Scope,
    /// Lineage `L` of the operator's input virtual vector.
    pub lineage: Lineage,
    /// Query-set `Q` of the input virtual vector.
    pub queries: QuerySet,
    /// The processed operator.
    pub op: OpId,
    /// Input cardinality.
    pub n_in: u64,
    /// Operator output cardinality.
    pub n_out: u64,
    /// Divergence routing-selection output cardinality, if the decision
    /// caused divergence.
    pub n_div: Option<u64>,
}

/// An episode's worth of log entries, reused across episodes to avoid
/// reallocation.
#[derive(Debug, Default)]
pub struct ExecutionLog {
    entries: Vec<LogEntry>,
}

impl ExecutionLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry.
    #[inline]
    pub fn push(&mut self, entry: LogEntry) {
        self.entries.push(entry);
    }

    /// The recorded entries in execution order.
    #[inline]
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Clears the log for the next episode.
    #[inline]
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Drops entries recorded after a mark taken with [`len`](Self::len) —
    /// used by the episode watchdog to roll the log back to the start of an
    /// aborted join phase before the phase is replanned.
    #[inline]
    pub fn truncate(&mut self, len: usize) {
        self.entries.truncate(len);
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of join-operator outputs — the §6.2 "intermediate join tuples"
    /// metric.
    pub fn join_tuples(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.scope == Scope::JOIN)
            .map(|e| e.n_out)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(scope: Scope, n_out: u64) -> LogEntry {
        LogEntry {
            scope,
            lineage: 1,
            queries: QuerySet::full(2),
            op: 0,
            n_in: 10,
            n_out,
            n_div: None,
        }
    }

    #[test]
    fn push_and_clear() {
        let mut log = ExecutionLog::new();
        assert!(log.is_empty());
        log.push(entry(Scope::JOIN, 5));
        assert_eq!(log.len(), 1);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn truncate_rolls_back_to_mark() {
        let mut log = ExecutionLog::new();
        log.push(entry(Scope::JOIN, 1));
        let mark = log.len();
        log.push(entry(Scope::JOIN, 2));
        log.push(entry(Scope::JOIN, 3));
        log.truncate(mark);
        assert_eq!(log.len(), 1);
        assert_eq!(log.join_tuples(), 1);
    }

    #[test]
    fn join_tuples_counts_only_join_scope() {
        let mut log = ExecutionLog::new();
        log.push(entry(Scope::JOIN, 5));
        log.push(entry(Scope::JOIN, 7));
        log.push(entry(Scope::selection(roulette_core::RelId(0)), 100));
        assert_eq!(log.join_tuples(), 12);
    }
}
