//! The execution log (§4.3).
//!
//! By monitoring execution, the eddy generates a log entry for each
//! processed operator in the format `(L, Q, o, n_in, n_out, n_div)`, where
//! `n_div` is the output size of the divergence routing selection
//! `σ_{Q−Q_o}`, if any. At the end of each episode the entries drive
//! policy updates.

use crate::space::{Lineage, OpId, Scope};
use roulette_core::QuerySet;

/// One execution-log record.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Plan space the operator belongs to.
    pub scope: Scope,
    /// Lineage `L` of the operator's input virtual vector.
    pub lineage: Lineage,
    /// Query-set `Q` of the input virtual vector.
    pub queries: QuerySet,
    /// The processed operator.
    pub op: OpId,
    /// Input cardinality.
    pub n_in: u64,
    /// Operator output cardinality.
    pub n_out: u64,
    /// Divergence routing-selection output cardinality, if the decision
    /// caused divergence.
    pub n_div: Option<u64>,
}

/// An episode's worth of log entries, reused across episodes to avoid
/// reallocation.
///
/// Retired entries are parked in a spare pool rather than dropped, so their
/// query-set buffers survive [`clear`](Self::clear) /
/// [`truncate`](Self::truncate) and are refilled in place by
/// [`push_reused`](Self::push_reused) — in steady state an episode's
/// logging allocates nothing.
#[derive(Debug, Default)]
pub struct ExecutionLog {
    entries: Vec<LogEntry>,
    spare: Vec<LogEntry>,
}

impl ExecutionLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry.
    #[inline]
    pub fn push(&mut self, entry: LogEntry) {
        self.entries.push(entry);
    }

    /// Appends an entry built from parts, recycling a retired entry's
    /// query-set buffer when one is available — the allocation-free
    /// counterpart of [`push`](Self::push) for the episode hot path.
    /// Takes `LogEntry`'s fields individually (rather than a constructed
    /// entry) precisely so callers never build one.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn push_reused(
        &mut self,
        scope: Scope,
        lineage: Lineage,
        queries: &QuerySet,
        op: OpId,
        n_in: u64,
        n_out: u64,
        n_div: Option<u64>,
    ) {
        match self.spare.pop() {
            Some(mut e) => {
                e.scope = scope;
                e.lineage = lineage;
                e.queries.copy_from(queries);
                e.op = op;
                e.n_in = n_in;
                e.n_out = n_out;
                e.n_div = n_div;
                self.entries.push(e);
            }
            None => self.entries.push(LogEntry {
                scope,
                lineage,
                queries: queries.clone(),
                op,
                n_in,
                n_out,
                n_div,
            }),
        }
    }

    /// The recorded entries in execution order.
    #[inline]
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Clears the log for the next episode, parking the retired entries for
    /// [`push_reused`](Self::push_reused).
    #[inline]
    pub fn clear(&mut self) {
        self.spare.append(&mut self.entries);
    }

    /// Drops entries recorded after a mark taken with [`len`](Self::len) —
    /// used by the episode watchdog to roll the log back to the start of an
    /// aborted join phase before the phase is replanned. The rolled-back
    /// entries are parked for [`push_reused`](Self::push_reused).
    #[inline]
    pub fn truncate(&mut self, len: usize) {
        self.spare.extend(self.entries.drain(len..));
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of join-operator outputs — the §6.2 "intermediate join tuples"
    /// metric.
    pub fn join_tuples(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.scope == Scope::JOIN)
            .map(|e| e.n_out)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(scope: Scope, n_out: u64) -> LogEntry {
        LogEntry {
            scope,
            lineage: 1,
            queries: QuerySet::full(2),
            op: 0,
            n_in: 10,
            n_out,
            n_div: None,
        }
    }

    #[test]
    fn push_and_clear() {
        let mut log = ExecutionLog::new();
        assert!(log.is_empty());
        log.push(entry(Scope::JOIN, 5));
        assert_eq!(log.len(), 1);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn truncate_rolls_back_to_mark() {
        let mut log = ExecutionLog::new();
        log.push(entry(Scope::JOIN, 1));
        let mark = log.len();
        log.push(entry(Scope::JOIN, 2));
        log.push(entry(Scope::JOIN, 3));
        log.truncate(mark);
        assert_eq!(log.len(), 1);
        assert_eq!(log.join_tuples(), 1);
    }

    #[test]
    fn push_reused_recycles_retired_entries() {
        let mut log = ExecutionLog::new();
        log.push(entry(Scope::JOIN, 5));
        log.clear();
        let qs = QuerySet::singleton(roulette_core::QueryId(1), 3);
        log.push_reused(Scope::JOIN, 9, &qs, 2, 10, 4, Some(6));
        // The recycled entry carries the new data, not the retired one's.
        let e = &log.entries()[0];
        assert_eq!(e.lineage, 9);
        assert_eq!(e.queries, qs);
        assert_eq!((e.op, e.n_in, e.n_out, e.n_div), (2, 10, 4, Some(6)));
        // Truncated entries are parked for reuse too.
        let mark = log.len();
        log.push_reused(Scope::JOIN, 1, &qs, 0, 1, 1, None);
        log.truncate(mark);
        assert_eq!(log.len(), 1);
        log.push_reused(Scope::JOIN, 2, &qs, 0, 2, 2, None);
        assert_eq!(log.entries()[1].lineage, 2);
    }

    #[test]
    fn join_tuples_counts_only_join_scope() {
        let mut log = ExecutionLog::new();
        log.push(entry(Scope::JOIN, 5));
        log.push(entry(Scope::JOIN, 7));
        log.push(entry(Scope::selection(roulette_core::RelId(0)), 100));
        assert_eq!(log.join_tuples(), 12);
    }
}
