//! The specialized Q-learning policy (§4.3, Algorithm 2).
//!
//! The full MDP of §4.2 has states that are *stacks* of extended vectors
//! `(n, L, Q)`. Two properties collapse it:
//!
//! * **independence** — vectors on the stack have disjoint query-sets and
//!   incur future costs independently, so each branch is optimized
//!   separately and the stack tail disappears from decisions and updates;
//! * **proportionality** — operator cost is linear in input size
//!   (`c = κ·n_in + λ·n_out`), so every state normalizes to a singleton
//!   `(1, L, Q)` and `Q`-values are costs *per input tuple*; future costs
//!   re-scale by the observed selectivity (`n_out / n_in`).
//!
//! The update rule (Algorithm 2) bootstraps from the successor states'
//! best Q-values: for the shared branch `(L ∪ {o}, Q ∩ Q_o)` and, on
//! divergence, the routed branch `(L, Q − Q_o)`:
//!
//! ```text
//! r  = (−κ_o·n_in − λ_o·n_out + γ·n_out·max_a Q(L∪{o}, Q∩Q_o, a)) / n_in
//! r += (−κ_σ·n_in − λ_σ·n_div + γ·n_div·max_a Q(L, Q−Q_o, a)) / n_in   (divergence)
//! Q(L, Q, o) ← (1−μ)·Q(L, Q, o) + μ·r
//! ```
//!
//! Rewards are negative costs; optimistic initialization (all zeros, the
//! best possible value) pushes early episodes toward exploration, and the
//! ε-greedy decision rule guarantees eventual convergence.

use crate::log::LogEntry;
use crate::policy::Policy;
use crate::qtable::QTable;
use crate::space::{Lineage, OpId, PlanSpace, Scope};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roulette_core::{CostModel, EngineConfig, OpKind, QuerySet};
use roulette_telemetry::PolicyProbe;

/// Learning-progress tallies backing [`Policy::probe`]. Updated with plain
/// arithmetic inside `choose`/`observe`, so keeping them costs a few adds.
#[derive(Debug, Clone, Copy)]
struct Introspection {
    decisions: u64,
    explorations: u64,
    observations: u64,
    td_abs_sum: f64,
    td_abs_max: f64,
    reward_sum: f64,
    reward_min: f64,
    reward_max: f64,
}

impl Default for Introspection {
    fn default() -> Self {
        Introspection {
            decisions: 0,
            explorations: 0,
            observations: 0,
            td_abs_sum: 0.0,
            td_abs_max: 0.0,
            reward_sum: 0.0,
            reward_min: f64::INFINITY,
            reward_max: f64::NEG_INFINITY,
        }
    }
}

/// The learned, sharing-aware planning policy.
pub struct QLearningPolicy {
    table: QTable,
    cost: CostModel,
    mu: f64,
    epsilon: f64,
    gamma: f64,
    rng: StdRng,
    scratch: Vec<OpId>,
    introspection: Introspection,
}

impl QLearningPolicy {
    /// Creates a policy with the given cost model and the engine's learning
    /// hyper-parameters.
    pub fn new(cost: CostModel, config: &EngineConfig) -> Self {
        QLearningPolicy {
            table: QTable::new(),
            cost,
            mu: config.mu,
            epsilon: config.epsilon,
            gamma: config.gamma,
            rng: StdRng::seed_from_u64(config.seed ^ 0x9E37_79B9_7F4A_7C15),
            scratch: Vec::with_capacity(16),
            introspection: Introspection::default(),
        }
    }

    /// Convenience constructor with paper defaults.
    pub fn with_defaults(seed: u64) -> Self {
        Self::new(CostModel::default(), &EngineConfig::default().with_seed(seed))
    }

    /// Number of materialized Q-table entries.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// Direct Q-value access (diagnostics and tests).
    pub fn q_value(&self, scope: Scope, lineage: Lineage, queries: &QuerySet, op: OpId) -> f64 {
        self.table.get(scope, lineage, op, queries.words())
    }

    /// `max_a Q((lineage, queries), a)`, or 0 for terminal states.
    fn best_q(
        table: &QTable,
        scope: Scope,
        lineage: Lineage,
        queries: &QuerySet,
        space: &dyn PlanSpace,
        scratch: &mut Vec<OpId>,
    ) -> f64 {
        space.candidates(lineage, queries, scratch);
        if scratch.is_empty() {
            return 0.0;
        }
        let mut best = f64::NEG_INFINITY;
        for &op in scratch.iter() {
            let v = table.get(scope, lineage, op, queries.words());
            if v > best {
                best = v;
            }
        }
        best
    }
}

impl Policy for QLearningPolicy {
    fn choose(
        &mut self,
        scope: Scope,
        lineage: Lineage,
        queries: &QuerySet,
        candidates: &[OpId],
        _space: &dyn PlanSpace,
    ) -> OpId {
        debug_assert!(!candidates.is_empty());
        self.introspection.decisions += 1;
        // Sporadic random decisions guarantee that all state-action pairs
        // keep being visited (Q-learning's convergence requirement).
        if self.rng.gen_bool(self.epsilon) {
            self.introspection.explorations += 1;
            return candidates[self.rng.gen_range(0..candidates.len())];
        }
        // Argmax with uniform random tie-breaking: under optimistic
        // initialization many candidates share the maximal value 0, and a
        // deterministic tie-break would explore them in an arbitrary fixed
        // order.
        let mut best = candidates[0];
        let mut best_v = f64::NEG_INFINITY;
        let mut ties = 0u32;
        for &op in candidates {
            let v = self.table.get(scope, lineage, op, queries.words());
            if v > best_v {
                best_v = v;
                best = op;
                ties = 1;
            } else if v == best_v {
                ties += 1;
                if self.rng.gen_ratio(1, ties) {
                    best = op;
                }
            }
        }
        best
    }

    fn observe(&mut self, entry: &LogEntry, space: &dyn PlanSpace) {
        if entry.n_in == 0 {
            return; // no information in an empty vector
        }
        let n_in = entry.n_in as f64;
        let n_out = entry.n_out as f64;
        let op_q = space.op_queries(entry.op);
        let kind = space.op_kind(entry.op);

        // Shared branch (L ∪ {o}, Q ∩ Q_o).
        let next_lineage = space.apply(entry.lineage, entry.op);
        let next_queries = entry.queries.intersection(op_q);
        let q_next = Self::best_q(
            &self.table,
            entry.scope,
            next_lineage,
            &next_queries,
            space,
            &mut self.scratch,
        );
        let mut r = (-self.cost.kappa(kind) * n_in - self.cost.lambda(kind) * n_out
            + self.gamma * n_out * q_next)
            / n_in;

        // Divergence branch (L, Q − Q_o) with its routing selection.
        if let Some(n_div) = entry.n_div {
            let n_div = n_div as f64;
            let div_queries = entry.queries.difference(op_q);
            let q_div = Self::best_q(
                &self.table,
                entry.scope,
                entry.lineage,
                &div_queries,
                space,
                &mut self.scratch,
            );
            let k = OpKind::RoutingSelection;
            r += (-self.cost.kappa(k) * n_in - self.cost.lambda(k) * n_div
                + self.gamma * n_div * q_div)
                / n_in;
        }

        let mu = self.mu;
        let mut td = 0.0;
        self.table.update(entry.scope, entry.lineage, entry.op, entry.queries.words(), |old| {
            td = r - old;
            (1.0 - mu) * old + mu * r
        });
        let intro = &mut self.introspection;
        intro.observations += 1;
        intro.td_abs_sum += td.abs();
        intro.td_abs_max = intro.td_abs_max.max(td.abs());
        intro.reward_sum += r;
        intro.reward_min = intro.reward_min.min(r);
        intro.reward_max = intro.reward_max.max(r);
    }

    fn estimate(
        &self,
        scope: Scope,
        lineage: Lineage,
        queries: &QuerySet,
        space: &dyn PlanSpace,
    ) -> f64 {
        let mut scratch = Vec::with_capacity(16);
        Self::best_q(&self.table, scope, lineage, queries, space, &mut scratch)
    }

    fn reset(&mut self) {
        self.table.clear();
        self.introspection = Introspection::default();
    }

    fn probe(&self) -> Option<PolicyProbe> {
        let i = &self.introspection;
        let (reward_min, reward_max) =
            if i.observations == 0 { (0.0, 0.0) } else { (i.reward_min, i.reward_max) };
        Some(PolicyProbe {
            q_entries: self.table.len() as u64,
            decisions: i.decisions,
            explorations: i.explorations,
            observations: i.observations,
            td_error_mean: if i.observations == 0 {
                0.0
            } else {
                i.td_abs_sum / i.observations as f64
            },
            td_error_max: i.td_abs_max,
            reward_mean: if i.observations == 0 { 0.0 } else { i.reward_sum / i.observations as f64 },
            reward_min,
            reward_max,
        })
    }

    fn exploration(&self) -> Option<f64> {
        Some(self.epsilon)
    }

    fn set_exploration(&mut self, epsilon: f64) -> bool {
        self.epsilon = epsilon.clamp(0.0, 1.0);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::testing::ToySpace;

    fn config() -> EngineConfig {
        EngineConfig::default().with_learning(0.5, 0.0, 1.0).unwrap().with_seed(7)
    }

    fn entry(lineage: Lineage, queries: &QuerySet, op: OpId, n_in: u64, n_out: u64) -> LogEntry {
        LogEntry {
            scope: Scope::JOIN,
            lineage,
            queries: queries.clone(),
            op,
            n_in,
            n_out,
            n_div: None,
        }
    }

    #[test]
    fn update_matches_algorithm2_by_hand() {
        // One op, terminal afterwards: r = (−κ·n_in − λ·n_out)/n_in.
        let space = ToySpace::uniform(1, 1);
        let mut cost = CostModel::zero();
        cost.set(OpKind::Join, 2.0, 3.0);
        let mut p = QLearningPolicy::new(cost, &config());
        let qs = QuerySet::full(1);
        p.observe(&entry(0, &qs, 0, 10, 20), &space);
        // r = (−2·10 − 3·20)/10 = −8; Q = 0.5·0 + 0.5·(−8) = −4.
        assert!((p.q_value(Scope::JOIN, 0, &qs, 0) - (-4.0)).abs() < 1e-12);
    }

    #[test]
    fn future_costs_propagate_backwards() {
        // Two ops in sequence; learning the second op's cost must raise the
        // (absolute) estimate of choosing the first.
        let space = ToySpace::uniform(2, 1);
        let mut cost = CostModel::zero();
        cost.set(OpKind::Join, 1.0, 1.0);
        let mut p = QLearningPolicy::new(cost, &config());
        let qs = QuerySet::full(1);
        // First, learn Q((op0 applied), op1): selectivity 2 (10 → 20).
        p.observe(&entry(0b1, &qs, 1, 10, 20), &space);
        let q_after = p.q_value(Scope::JOIN, 0b1, &qs, 1);
        assert!(q_after < 0.0);
        // Now observe op0 at the root: its update must include γ·n_out·q.
        p.observe(&entry(0, &qs, 0, 10, 10), &space);
        let q_root = p.q_value(Scope::JOIN, 0, &qs, 0);
        // Direct cost: (−10−10)/10 = −2; future: (1·10·q_after)/10 = q_after.
        let expected = 0.5 * (-2.0 + q_after);
        assert!((q_root - expected).abs() < 1e-12, "{q_root} vs {expected}");
    }

    #[test]
    fn divergence_adds_routing_costs() {
        // op0 applies to query 0 only; vector carries {0,1} → divergence.
        let mut space = ToySpace::uniform(1, 2);
        space.op_queries[0] = QuerySet::singleton(roulette_core::QueryId(0), 2);
        let mut cost = CostModel::zero();
        cost.set(OpKind::Join, 1.0, 0.0);
        cost.set(OpKind::RoutingSelection, 0.5, 0.25);
        let mut p = QLearningPolicy::new(cost, &config());
        let qs = QuerySet::full(2);
        let e = LogEntry {
            scope: Scope::JOIN,
            lineage: 0,
            queries: qs.clone(),
            op: 0,
            n_in: 8,
            n_out: 4,
            n_div: Some(8),
        };
        p.observe(&e, &space);
        // r = (−1·8)/8 + (−0.5·8 − 0.25·8)/8 = −1 − 0.75 = −1.75; μ=0.5.
        assert!((p.q_value(Scope::JOIN, 0, &qs, 0) - (-0.875)).abs() < 1e-12);
    }

    #[test]
    fn greedy_choice_picks_max_q() {
        let space = ToySpace::uniform(2, 1);
        let mut p = QLearningPolicy::new(CostModel::default(), &config());
        let qs = QuerySet::full(1);
        // Make op1 look expensive.
        p.observe(&entry(0, &qs, 1, 10, 1000), &space);
        let pick = p.choose(Scope::JOIN, 0, &qs, &[0, 1], &space);
        assert_eq!(pick, 0); // op0 still optimistic (0) > op1's negative Q
    }

    #[test]
    fn epsilon_one_is_fully_random() {
        let space = ToySpace::uniform(3, 1);
        let cfg = EngineConfig::default().with_learning(0.5, 1.0, 1.0).unwrap().with_seed(1);
        let mut p = QLearningPolicy::new(CostModel::default(), &cfg);
        let qs = QuerySet::full(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(p.choose(Scope::JOIN, 0, &qs, &[0, 1, 2], &space));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn zero_input_entries_are_ignored() {
        let space = ToySpace::uniform(1, 1);
        let mut p = QLearningPolicy::new(CostModel::default(), &config());
        let qs = QuerySet::full(1);
        p.observe(&entry(0, &qs, 0, 0, 0), &space);
        assert_eq!(p.table_len(), 0);
    }

    #[test]
    fn probe_tracks_learning_progress() {
        let space = ToySpace::uniform(2, 1);
        let mut p = QLearningPolicy::new(CostModel::default(), &config());
        let qs = QuerySet::full(1);
        let empty = p.probe().expect("q-learning always probes");
        assert_eq!(empty.decisions, 0);
        assert_eq!(empty.observations, 0);
        assert_eq!(empty.exploration_share(), 0.0);
        assert_eq!((empty.reward_min, empty.reward_max), (0.0, 0.0));
        for _ in 0..10 {
            p.choose(Scope::JOIN, 0, &qs, &[0, 1], &space);
        }
        p.observe(&entry(0, &qs, 0, 10, 20), &space);
        let probe = p.probe().expect("q-learning always probes");
        assert_eq!(probe.decisions, 10);
        assert_eq!(probe.observations, 1);
        assert_eq!(probe.q_entries, 1);
        // Single observation: td = r − 0, so mean == max and both match the
        // reward magnitude.
        assert!(probe.td_error_mean > 0.0);
        assert_eq!(probe.td_error_mean, probe.td_error_max);
        assert_eq!(probe.reward_min, probe.reward_max);
        assert!(probe.reward_mean < 0.0);
        // ε = 0 in config(): no exploration.
        assert_eq!(probe.explorations, 0);
        p.reset();
        let after = p.probe().expect("q-learning always probes");
        assert_eq!(after.decisions, 0);
        assert_eq!(after.q_entries, 0);
    }

    #[test]
    fn probe_counts_explorations_under_full_epsilon() {
        let space = ToySpace::uniform(2, 1);
        let cfg = EngineConfig::default().with_learning(0.5, 1.0, 1.0).unwrap().with_seed(5);
        let mut p = QLearningPolicy::new(CostModel::default(), &cfg);
        let qs = QuerySet::full(1);
        for _ in 0..20 {
            p.choose(Scope::JOIN, 0, &qs, &[0, 1], &space);
        }
        let probe = p.probe().expect("q-learning always probes");
        assert_eq!(probe.decisions, 20);
        assert_eq!(probe.explorations, 20);
        assert_eq!(probe.exploration_share(), 1.0);
    }

    #[test]
    fn exploration_knob_boosts_and_clamps() {
        let space = ToySpace::uniform(3, 1);
        // ε = 0 initially: purely greedy.
        let mut p = QLearningPolicy::new(CostModel::default(), &config());
        assert_eq!(p.exploration(), Some(0.0));
        // Boost past 1.0 clamps to fully random.
        assert!(p.set_exploration(2.5));
        assert_eq!(p.exploration(), Some(1.0));
        let qs = QuerySet::full(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(p.choose(Scope::JOIN, 0, &qs, &[0, 1, 2], &space));
        }
        assert_eq!(seen.len(), 3, "boosted ε explores every candidate");
        // And RandomPolicy has no knob.
        let mut r = crate::RandomPolicy::new(1);
        assert!(!crate::Policy::set_exploration(&mut r, 0.5));
        assert_eq!(crate::Policy::exploration(&r), None);
    }

    #[test]
    fn reset_discards_learned_state() {
        let space = ToySpace::uniform(1, 1);
        let mut p = QLearningPolicy::new(CostModel::default(), &config());
        let qs = QuerySet::full(1);
        p.observe(&entry(0, &qs, 0, 10, 10), &space);
        assert!(p.table_len() > 0);
        p.reset();
        assert_eq!(p.table_len(), 0);
        assert_eq!(p.q_value(Scope::JOIN, 0, &qs, 0), 0.0);
    }

    #[test]
    fn convergence_on_a_two_op_ordering_problem() {
        // Ops A (selectivity 0.1) and B (selectivity 2.0), both must run.
        // Optimal order A-then-B. After repeated episodes, Q(∅, A) must
        // beat Q(∅, B).
        let space = ToySpace::uniform(2, 1);
        let mut cost = CostModel::zero();
        cost.set(OpKind::Join, 1.0, 1.0);
        let cfg = EngineConfig::default().with_learning(0.3, 0.2, 1.0).unwrap().with_seed(11);
        let mut p = QLearningPolicy::new(cost, &cfg);
        let qs = QuerySet::full(1);
        let n = 1000u64;
        for _ in 0..200 {
            let first = p.choose(Scope::JOIN, 0, &qs, &[0, 1], &space);
            let (sel_a, sel_b) = (0.1, 2.0);
            if first == 0 {
                let out_a = (n as f64 * sel_a) as u64;
                p.observe(&entry(0, &qs, 0, n, out_a), &space);
                p.observe(&entry(0b1, &qs, 1, out_a, (out_a as f64 * sel_b) as u64), &space);
            } else {
                let out_b = (n as f64 * sel_b) as u64;
                p.observe(&entry(0, &qs, 1, n, out_b), &space);
                p.observe(&entry(0b10, &qs, 0, out_b, (out_b as f64 * sel_a) as u64), &space);
            }
        }
        let qa = p.q_value(Scope::JOIN, 0, &qs, 0);
        let qb = p.q_value(Scope::JOIN, 0, &qs, 1);
        assert!(qa > qb, "Q(A)={qa} should beat Q(B)={qb}");
        // And the learned estimate approximates the optimal plan cost:
        // A first: cost = (1000 + 100)/1000 + (100 + 200)/1000 = 1.4 → −1.4.
        let est = p.estimate(Scope::JOIN, 0, &qs, &space);
        assert!((est - (-1.4)).abs() < 0.2, "estimate {est}");
    }
}
