//! The plan-space abstraction behind policy decisions.
//!
//! Multi-step optimization (§4.1) is generic over *what* is being ordered:
//! the join phase orders STeM probes (operators = distinct join edges,
//! lineage = relation bitset) and the selection phase orders grouped
//! filters (operators = selection groups, lineage = applied-operator
//! bitset). A [`PlanSpace`] supplies the pieces the policy needs —
//! candidate enumeration (Definition 5), each operator's query-set `Q_o`
//! (Definition 3), its cost kind, and the lineage transition — so the
//! Q-learning implementation stays phase-agnostic.

use roulette_core::{OpKind, QuerySet};

/// Identifier of an operator within one plan space (edge id or selection
/// group id).
pub type OpId = u16;

/// Namespacing tag for Q-table keys: states from different plan spaces
/// (the join phase, or one relation's selection phase) must not collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scope(pub u32);

impl Scope {
    /// The join phase's scope.
    pub const JOIN: Scope = Scope(u32::MAX);

    /// The selection-phase scope of relation `rel`.
    pub fn selection(rel: roulette_core::RelId) -> Scope {
        Scope(rel.0 as u32)
    }
}

/// A lineage bitset: relations for the join phase, applied operators for
/// the selection phase. 64 bits bound both (≤64 relations per catalog,
/// ≤64 selection groups per relation).
pub type Lineage = u64;

/// The decision environment of one phase's multi-step optimization.
pub trait PlanSpace {
    /// Appends to `out` (cleared first) the candidate operators of virtual
    /// vector `(lineage, queries)`, in ascending op-id order.
    fn candidates(&self, lineage: Lineage, queries: &QuerySet, out: &mut Vec<OpId>);

    /// `Q_o`: the queries containing operator `op`.
    fn op_queries(&self, op: OpId) -> &QuerySet;

    /// Cost-model kind of `op`.
    fn op_kind(&self, op: OpId) -> OpKind;

    /// The lineage after applying `op`.
    fn apply(&self, lineage: Lineage, op: OpId) -> Lineage;
}

#[cfg(test)]
pub(crate) mod testing {
    use super::*;
    use roulette_core::QuerySet;

    /// A tiny hand-built plan space for policy unit tests: operators are
    /// bits; every op not yet in the lineage whose query-set intersects the
    /// vector is a candidate.
    pub struct ToySpace {
        pub op_queries: Vec<QuerySet>,
        pub kinds: Vec<OpKind>,
    }

    impl ToySpace {
        pub fn uniform(n_ops: usize, n_queries: usize) -> Self {
            ToySpace {
                op_queries: vec![QuerySet::full(n_queries); n_ops],
                kinds: vec![OpKind::Join; n_ops],
            }
        }
    }

    impl PlanSpace for ToySpace {
        fn candidates(&self, lineage: Lineage, queries: &QuerySet, out: &mut Vec<OpId>) {
            out.clear();
            for (i, qs) in self.op_queries.iter().enumerate() {
                if lineage & (1 << i) == 0 && qs.intersects(queries) {
                    out.push(i as OpId);
                }
            }
        }

        fn op_queries(&self, op: OpId) -> &QuerySet {
            &self.op_queries[op as usize]
        }

        fn op_kind(&self, op: OpId) -> OpKind {
            self.kinds[op as usize]
        }

        fn apply(&self, lineage: Lineage, op: OpId) -> Lineage {
            lineage | (1 << op)
        }
    }

    #[test]
    fn toy_space_candidates() {
        let s = ToySpace::uniform(3, 2);
        let mut out = Vec::new();
        s.candidates(0b010, &QuerySet::full(2), &mut out);
        assert_eq!(out, vec![0, 2]);
    }

    #[test]
    fn scope_namespacing() {
        assert_ne!(Scope::JOIN, Scope::selection(roulette_core::RelId(0)));
        assert_ne!(
            Scope::selection(roulette_core::RelId(1)),
            Scope::selection(roulette_core::RelId(2))
        );
    }
}
