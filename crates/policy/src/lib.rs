//! # roulette-policy
//!
//! Planning policies for RouLette's eddy (§4): the plan-space abstraction
//! over which multi-step optimization runs, the execution log, the sparse
//! map-based Q-table, the specialized Q-learning policy implementing
//! Algorithm 2 (with the independence and proportionality reductions of
//! §4.3), and the greedy selectivity-based baseline policy used by the
//! quality-of-planning experiments (§6.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod greedy;
pub mod log;
pub mod policy;
pub mod qlearning;
pub mod qtable;
pub mod space;

pub use greedy::{GreedyMode, GreedyPolicy};
pub use log::{ExecutionLog, LogEntry};
pub use policy::{Policy, RandomPolicy};
pub use qlearning::QLearningPolicy;
pub use qtable::QTable;
pub use space::{Lineage, OpId, PlanSpace, Scope};
