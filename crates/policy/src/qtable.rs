//! The map-based Q-table (§4.3).
//!
//! `Q((L, Q), o)` estimates are stored in a hash map indexed by
//! `(scope, lineage, query-set, op)` triplets — "concatenating the bytes of
//! L, Q and o forms a unique key". Optimistic initialization means values
//! start at 0 and only non-zero entries are materialized: failed lookups
//! return 0 without allocating, which keeps the hot decision path free of
//! heap traffic (the query-set is hashed from its borrowed words).

use crate::space::{Lineage, OpId, Scope};
use std::collections::HashMap;

#[derive(Debug)]
struct Entry {
    scope: Scope,
    lineage: Lineage,
    op: OpId,
    qwords: Box<[u64]>,
    value: f64,
}

impl Entry {
    #[inline]
    fn matches(&self, scope: Scope, lineage: Lineage, op: OpId, qwords: &[u64]) -> bool {
        self.scope == scope && self.lineage == lineage && self.op == op && *self.qwords == *qwords
    }
}

/// Sparse Q-value table with zero-default lookups.
#[derive(Debug, Default)]
pub struct QTable {
    buckets: HashMap<u64, Vec<Entry>>,
    len: usize,
}

/// FNV-1a over the key components; computed from borrowed parts so lookups
/// never allocate.
#[inline]
fn key_hash(scope: Scope, lineage: Lineage, op: OpId, qwords: &[u64]) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(PRIME);
    };
    mix(scope.0 as u64);
    mix(lineage);
    mix(op as u64);
    for &w in qwords {
        mix(w);
    }
    h
}

impl QTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current Q-value estimate (0 when never updated — optimistic
    /// initialization for negative rewards).
    #[inline]
    pub fn get(&self, scope: Scope, lineage: Lineage, op: OpId, qwords: &[u64]) -> f64 {
        match self.buckets.get(&key_hash(scope, lineage, op, qwords)) {
            Some(entries) => entries
                .iter()
                .find(|e| e.matches(scope, lineage, op, qwords))
                .map_or(0.0, |e| e.value),
            None => 0.0,
        }
    }

    /// Replaces the Q-value with `f(old)`.
    pub fn update(
        &mut self,
        scope: Scope,
        lineage: Lineage,
        op: OpId,
        qwords: &[u64],
        f: impl FnOnce(f64) -> f64,
    ) {
        let h = key_hash(scope, lineage, op, qwords);
        let entries = self.buckets.entry(h).or_default();
        if let Some(e) = entries.iter_mut().find(|e| e.matches(scope, lineage, op, qwords)) {
            e.value = f(e.value);
        } else {
            entries.push(Entry {
                scope,
                lineage,
                op,
                qwords: qwords.to_vec().into_boxed_slice(),
                value: f(0.0),
            });
            self.len += 1;
        }
    }

    /// Number of materialized (touched) state-action entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entry has been materialized.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all entries (the paper discards learned state after queries
    /// finish processing — learning is per-batch).
    pub fn clear(&mut self) {
        self.buckets.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: Scope = Scope::JOIN;

    #[test]
    fn default_is_zero() {
        let t = QTable::new();
        assert_eq!(t.get(S, 0b11, 4, &[0b101]), 0.0);
        assert!(t.is_empty());
    }

    #[test]
    fn update_and_get_round_trip() {
        let mut t = QTable::new();
        t.update(S, 0b11, 4, &[0b101], |old| old - 5.0);
        assert_eq!(t.get(S, 0b11, 4, &[0b101]), -5.0);
        t.update(S, 0b11, 4, &[0b101], |old| old * 0.5);
        assert_eq!(t.get(S, 0b11, 4, &[0b101]), -2.5);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let mut t = QTable::new();
        t.update(S, 1, 0, &[0b1], |_| 1.0);
        t.update(S, 1, 1, &[0b1], |_| 2.0);
        t.update(S, 2, 0, &[0b1], |_| 3.0);
        t.update(S, 1, 0, &[0b10], |_| 4.0);
        t.update(Scope(0), 1, 0, &[0b1], |_| 5.0);
        assert_eq!(t.get(S, 1, 0, &[0b1]), 1.0);
        assert_eq!(t.get(S, 1, 1, &[0b1]), 2.0);
        assert_eq!(t.get(S, 2, 0, &[0b1]), 3.0);
        assert_eq!(t.get(S, 1, 0, &[0b10]), 4.0);
        assert_eq!(t.get(Scope(0), 1, 0, &[0b1]), 5.0);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn multiword_query_sets_compare_fully() {
        let mut t = QTable::new();
        t.update(S, 7, 2, &[1, 0], |_| -1.0);
        assert_eq!(t.get(S, 7, 2, &[1, 0]), -1.0);
        assert_eq!(t.get(S, 7, 2, &[1, 1]), 0.0);
        assert_eq!(t.get(S, 7, 2, &[0, 1]), 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut t = QTable::new();
        t.update(S, 1, 0, &[1], |_| 1.0);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.get(S, 1, 0, &[1]), 0.0);
    }

    #[test]
    fn hash_collisions_resolved_by_full_compare() {
        // Force many keys through the table; values must all survive.
        let mut t = QTable::new();
        for lineage in 0..200u64 {
            for op in 0..4u16 {
                t.update(S, lineage, op, &[lineage ^ 0xAA], |_| (lineage * 4 + op as u64) as f64);
            }
        }
        for lineage in 0..200u64 {
            for op in 0..4u16 {
                assert_eq!(
                    t.get(S, lineage, op, &[lineage ^ 0xAA]),
                    (lineage * 4 + op as u64) as f64
                );
            }
        }
    }
}
