//! The policy interface consumed by the eddy.
//!
//! A policy makes Definition 6's decisions — pick one candidate operator
//! for a virtual vector `(L, Q)` — and is refined from execution-log
//! entries after each episode. Implementations: [`crate::QLearningPolicy`]
//! (the paper's contribution), [`crate::GreedyPolicy`] (the CACQ/CJOIN
//! selectivity heuristic), and [`RandomPolicy`] (a lower bound for
//! ablations).

use crate::log::LogEntry;
use crate::space::{Lineage, OpId, PlanSpace, Scope};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roulette_core::QuerySet;
use roulette_telemetry::PolicyProbe;

/// A planning policy: chooses candidates and learns from observations.
pub trait Policy: Send {
    /// Chooses one of `candidates` (non-empty) for virtual vector
    /// `(lineage, queries)`.
    fn choose(
        &mut self,
        scope: Scope,
        lineage: Lineage,
        queries: &QuerySet,
        candidates: &[OpId],
        space: &dyn PlanSpace,
    ) -> OpId;

    /// Incorporates one execution-log entry.
    fn observe(&mut self, entry: &LogEntry, space: &dyn PlanSpace);

    /// The policy's current estimate of the best-case cumulative cost per
    /// input tuple at `(lineage, queries)`, as a non-positive value
    /// (0 when unknown). Used by the convergence experiments (Fig. 16).
    fn estimate(
        &self,
        scope: Scope,
        lineage: Lineage,
        queries: &QuerySet,
        space: &dyn PlanSpace,
    ) -> f64;

    /// Discards learned state (queries finished processing).
    fn reset(&mut self);

    /// An introspection snapshot for telemetry, if the policy keeps one.
    /// The default (heuristic policies) reports nothing.
    fn probe(&self) -> Option<PolicyProbe> {
        None
    }

    /// The current exploration rate (ε), if the policy has one.
    fn exploration(&self) -> Option<f64> {
        None
    }

    /// Overrides the exploration rate (clamped to `[0, 1]`); returns
    /// whether the policy supports the knob. Drift-recovery heuristics use
    /// this to boost ε after a detected distribution shift and to decay it
    /// back once the policy re-converges. The default (policies without an
    /// exploration knob) ignores the request.
    fn set_exploration(&mut self, _epsilon: f64) -> bool {
        false
    }
}

/// Chooses uniformly at random; learns nothing.
#[derive(Debug)]
pub struct RandomPolicy {
    rng: StdRng,
}

impl RandomPolicy {
    /// A seeded random policy.
    pub fn new(seed: u64) -> Self {
        RandomPolicy { rng: StdRng::seed_from_u64(seed) }
    }
}

impl Policy for RandomPolicy {
    fn choose(
        &mut self,
        _scope: Scope,
        _lineage: Lineage,
        _queries: &QuerySet,
        candidates: &[OpId],
        _space: &dyn PlanSpace,
    ) -> OpId {
        candidates[self.rng.gen_range(0..candidates.len())]
    }

    fn observe(&mut self, _entry: &LogEntry, _space: &dyn PlanSpace) {}

    fn estimate(
        &self,
        _scope: Scope,
        _lineage: Lineage,
        _queries: &QuerySet,
        _space: &dyn PlanSpace,
    ) -> f64 {
        0.0
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::testing::ToySpace;

    #[test]
    fn random_policy_picks_all_candidates_eventually() {
        let space = ToySpace::uniform(4, 1);
        let mut p = RandomPolicy::new(3);
        let qs = QuerySet::full(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(p.choose(Scope::JOIN, 0, &qs, &[0, 1, 2, 3], &space));
        }
        assert_eq!(seen.len(), 4);
    }
}
