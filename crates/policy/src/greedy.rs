//! The greedy selectivity-based policy (CACQ \[24\] / CJOIN \[7\] style).
//!
//! CACQ and CJOIN reorder operators at runtime based on observed
//! selectivity alone: the next operator is the one expected to shrink the
//! intermediate most. This is the §6.2 "Greedy" baseline. Its weaknesses
//! are exactly the ones the paper calls out — it models neither operator
//! correlations nor the long-term (cascading, multi-branch) effects of
//! decisions, so it suffers high-cost outliers that grow with batch size.

use crate::log::LogEntry;
use crate::policy::Policy;
use crate::space::{Lineage, OpId, PlanSpace, Scope};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roulette_core::QuerySet;
use std::collections::HashMap;

/// How the greedy policy turns selectivity estimates into decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GreedyMode {
    /// Deterministic argmin over estimated selectivity — a *stronger*
    /// variant than the published online-sharing systems use.
    ArgMin,
    /// Lottery scheduling (CACQ \[24\] via Waldspurger & Weihl \[38\]): each
    /// candidate gets tickets proportional to how much it is expected to
    /// shrink the intermediate, and the winner is drawn proportionally.
    /// This is the faithful CACQ/CJOIN baseline.
    Lottery,
}

/// Greedy selectivity-based policy with exponentially averaged per-operator
/// selectivity estimates.
pub struct GreedyPolicy {
    /// EMA of `n_out / n_in` per (scope, op).
    selectivity: HashMap<(Scope, OpId), f64>,
    alpha: f64,
    epsilon: f64,
    mode: GreedyMode,
    rng: StdRng,
}

impl GreedyPolicy {
    /// Creates a policy; `alpha` is the EMA weight of new observations and
    /// `epsilon` a small exploration probability so unseen operators get
    /// measured.
    pub fn new(alpha: f64, epsilon: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&alpha));
        GreedyPolicy {
            selectivity: HashMap::new(),
            alpha,
            epsilon,
            mode: GreedyMode::ArgMin,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Paper-comparable defaults (deterministic argmin).
    pub fn with_defaults(seed: u64) -> Self {
        Self::new(0.3, 0.014, seed)
    }

    /// The CACQ/CJOIN-faithful lottery-scheduling variant.
    pub fn lottery(seed: u64) -> Self {
        let mut p = Self::new(0.3, 0.014, seed);
        p.mode = GreedyMode::Lottery;
        p
    }

    /// Current selectivity estimate for an operator (optimistic 0 when
    /// unobserved, so new operators get tried early).
    pub fn estimate_of(&self, scope: Scope, op: OpId) -> f64 {
        self.selectivity.get(&(scope, op)).copied().unwrap_or(0.0)
    }
}

impl Policy for GreedyPolicy {
    fn choose(
        &mut self,
        scope: Scope,
        _lineage: Lineage,
        _queries: &QuerySet,
        candidates: &[OpId],
        _space: &dyn PlanSpace,
    ) -> OpId {
        debug_assert!(!candidates.is_empty());
        if self.epsilon > 0.0 && self.rng.gen_bool(self.epsilon) {
            return candidates[self.rng.gen_range(0..candidates.len())];
        }
        if self.mode == GreedyMode::Lottery {
            // Tickets favor shrinkers: t(op) = 1 / (sel + 0.1), so a 0.1
            // selectivity gets ~5x the tickets of a 1.9 expansion.
            let tickets: Vec<f64> = candidates
                .iter()
                .map(|&op| 1.0 / (self.estimate_of(scope, op) + 0.1))
                .collect();
            let total: f64 = tickets.iter().sum();
            let mut draw = self.rng.gen_range(0.0..total);
            for (i, t) in tickets.iter().enumerate() {
                if draw < *t {
                    return candidates[i];
                }
                draw -= t;
            }
            return *candidates.last().unwrap();
        }
        // Minimum with uniform random tie-breaking (unobserved operators
        // all sit at the optimistic 0).
        let mut best = candidates[0];
        let mut best_sel = f64::INFINITY;
        let mut ties = 0u32;
        for &op in candidates {
            let s = self.estimate_of(scope, op);
            if s < best_sel {
                best_sel = s;
                best = op;
                ties = 1;
            } else if s == best_sel {
                ties += 1;
                if self.rng.gen_ratio(1, ties) {
                    best = op;
                }
            }
        }
        best
    }

    fn observe(&mut self, entry: &LogEntry, _space: &dyn PlanSpace) {
        if entry.n_in == 0 {
            return;
        }
        let observed = entry.n_out as f64 / entry.n_in as f64;
        let alpha = self.alpha;
        self.selectivity
            .entry((entry.scope, entry.op))
            .and_modify(|s| *s = (1.0 - alpha) * *s + alpha * observed)
            .or_insert(observed);
    }

    fn estimate(
        &self,
        _scope: Scope,
        _lineage: Lineage,
        _queries: &QuerySet,
        _space: &dyn PlanSpace,
    ) -> f64 {
        // Selectivity heuristics carry no cumulative-cost estimate.
        0.0
    }

    fn reset(&mut self) {
        self.selectivity.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::testing::ToySpace;

    fn entry(op: OpId, n_in: u64, n_out: u64) -> LogEntry {
        LogEntry {
            scope: Scope::JOIN,
            lineage: 0,
            queries: QuerySet::full(1),
            op,
            n_in,
            n_out,
            n_div: None,
        }
    }

    #[test]
    fn prefers_lowest_observed_selectivity() {
        let space = ToySpace::uniform(2, 1);
        let mut p = GreedyPolicy::new(0.5, 0.0, 1);
        p.observe(&entry(0, 100, 90), &space);
        p.observe(&entry(1, 100, 10), &space);
        let qs = QuerySet::full(1);
        assert_eq!(p.choose(Scope::JOIN, 0, &qs, &[0, 1], &space), 1);
    }

    #[test]
    fn unseen_ops_are_optimistic() {
        let space = ToySpace::uniform(2, 1);
        let mut p = GreedyPolicy::new(0.5, 0.0, 1);
        p.observe(&entry(0, 100, 5), &space); // good but known: 0.05
        let qs = QuerySet::full(1);
        // op1 never observed → estimate 0 → preferred.
        assert_eq!(p.choose(Scope::JOIN, 0, &qs, &[0, 1], &space), 1);
    }

    #[test]
    fn ema_tracks_recent_observations() {
        let space = ToySpace::uniform(1, 1);
        let mut p = GreedyPolicy::new(0.5, 0.0, 1);
        p.observe(&entry(0, 100, 100), &space);
        assert!((p.estimate_of(Scope::JOIN, 0) - 1.0).abs() < 1e-12);
        p.observe(&entry(0, 100, 0), &space);
        assert!((p.estimate_of(Scope::JOIN, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn greedy_misses_correlations_by_design() {
        // Scenario: op0 selectivity 0.5 everywhere; op1 selectivity 0.6
        // alone but 0.01 *after* op0 (correlation). Greedy orders op1 after
        // op0 only by their marginal selectivities (0.5 < 0.6 → op0 first),
        // which here happens to be right — but if op1's marginal were 0.4
        // it would choose op1 first regardless of the correlated joint
        // behavior. We assert the decision is driven by marginals only.
        let space = ToySpace::uniform(2, 1);
        let mut p = GreedyPolicy::new(1.0, 0.0, 1);
        p.observe(&entry(0, 100, 50), &space);
        p.observe(&entry(1, 100, 40), &space);
        let qs = QuerySet::full(1);
        // Lineage is ignored: same answer from any state.
        assert_eq!(p.choose(Scope::JOIN, 0, &qs, &[0, 1], &space), 1);
        assert_eq!(p.choose(Scope::JOIN, 0b1, &qs, &[0, 1], &space), 1);
    }

    #[test]
    fn lottery_mode_prefers_but_does_not_force_shrinkers() {
        let space = ToySpace::uniform(2, 1);
        let mut p = GreedyPolicy::lottery(1);
        for _ in 0..5 {
            p.observe(&entry(0, 100, 10), &space); // sel 0.1 → ~5 tickets
            p.observe(&entry(1, 100, 190), &space); // sel 1.9 → ~0.5 tickets
        }
        let qs = QuerySet::full(1);
        let mut picks = [0usize; 2];
        for _ in 0..500 {
            picks[p.choose(Scope::JOIN, 0, &qs, &[0, 1], &space) as usize] += 1;
        }
        assert!(picks[0] > picks[1] * 3, "lottery picks {picks:?}");
        assert!(picks[1] > 0, "lottery must still explore the expander");
    }

    #[test]
    fn reset_clears_estimates() {
        let space = ToySpace::uniform(1, 1);
        let mut p = GreedyPolicy::new(0.5, 0.0, 1);
        p.observe(&entry(0, 10, 10), &space);
        p.reset();
        assert_eq!(p.estimate_of(Scope::JOIN, 0), 0.0);
    }
}
