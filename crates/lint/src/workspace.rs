//! Workspace loading and whole-tree analysis.
//!
//! Walks `crates/`, `shims/`, `src/`, `tests/`, and `examples/` under the
//! workspace root, lexes every `.rs` file once, and runs the rule set:
//! per-file rules directly, plus the cross-file analyses — crate-level
//! `#![forbid(unsafe_code)]` coverage (R2), shim surface matching against
//! the non-shim reference corpus (R4), and the concurrency model behind
//! R7/R8/R9 (lock-order against `lock-order.toml`, blocking-while-locked,
//! and atomic-ordering justification; see [`crate::conc`]).

use crate::baseline::Baseline;
use crate::conc::{self, LockOrder};
use crate::report::{CheckReport, Severity, StaleEntry, Violation};
use crate::rules::{
    self, has_forbid_unsafe, rule_by_name, uses_unsafe, SourceFile, UNSAFE_NEEDS_SAFETY_COMMENT,
};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};

/// Directories under the workspace root that are scanned for `.rs` files.
pub const SCAN_ROOTS: &[&str] = &["crates", "shims", "src", "tests", "examples"];

/// Directory names that are never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// A loaded workspace: every scanned source file, lexed and annotated.
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// Files in sorted path order.
    pub files: Vec<SourceFile>,
    /// The canonical lock order from `<root>/lock-order.toml`, when the
    /// file exists. `None` makes every multi-lock nesting an R7 violation.
    pub lock_order: Option<LockOrder>,
}

impl Workspace {
    /// Walks and lexes the workspace under `root`.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut paths = Vec::new();
        for sub in SCAN_ROOTS {
            let dir = root.join(sub);
            if dir.is_dir() {
                walk(&dir, &mut paths)?;
            }
        }
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for p in paths {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let src = std::fs::read_to_string(&p)?;
            files.push(SourceFile::new(rel, &src));
        }
        let order_path = root.join("lock-order.toml");
        let lock_order = if order_path.is_file() {
            let text = std::fs::read_to_string(&order_path)?;
            Some(
                LockOrder::parse(&text)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
            )
        } else {
            None
        };
        Ok(Workspace { root: root.to_path_buf(), files, lock_order })
    }

    /// Runs every rule and returns all violations not suppressed by an
    /// inline `lint:allow` escape, sorted by `(file, line)`.
    pub fn analyze(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for f in &self.files {
            rules::check_no_panic_hot_path(f, &mut out);
            rules::check_no_alloc_in_episode_loop(f, &mut out);
            rules::check_unsafe_comments(f, &mut out);
            rules::check_no_stdout_in_libs(f, &mut out);
            rules::check_config_docs(f, &mut out);
        }
        self.check_forbid_unsafe(&mut out);
        self.check_shim_surfaces(&mut out);
        conc::check_concurrency(&self.files, self.lock_order.as_ref(), &mut out);
        conc::check_atomic_orderings(&self.files, &mut out);
        // Apply inline escapes.
        let by_path: HashMap<&str, &SourceFile> =
            self.files.iter().map(|f| (f.rel_path.as_str(), f)).collect();
        out.retain(|v| {
            by_path.get(v.file.as_str()).is_none_or(|f| !f.allowed(v.rule, v.line))
        });
        out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        out
    }

    /// R2, crate half: a crate whose sources contain no `unsafe` must
    /// declare `#![forbid(unsafe_code)]` at its root.
    fn check_forbid_unsafe(&self, out: &mut Vec<Violation>) {
        for (root_file, members) in self.crates() {
            let any_unsafe = members.iter().any(|f| uses_unsafe(f));
            let root = members.iter().find(|f| f.rel_path == root_file);
            if let Some(root) = root {
                if !any_unsafe && !has_forbid_unsafe(root) {
                    out.push(Violation {
                        file: root_file.clone(),
                        line: 1,
                        rule: UNSAFE_NEEDS_SAFETY_COMMENT,
                        message: "crate has no unsafe code; declare `#![forbid(unsafe_code)]` \
                                  so none can land silently"
                            .to_string(),
                    });
                }
            }
        }
    }

    /// Groups files into crates: `crates/<n>/…` and `shims/<n>/…` each form
    /// one crate rooted at `…/src/lib.rs`; `src/` + root `tests/` +
    /// `examples/` form the umbrella crate rooted at `src/lib.rs`.
    fn crates(&self) -> BTreeMap<String, Vec<&SourceFile>> {
        let mut groups: BTreeMap<String, Vec<&SourceFile>> = BTreeMap::new();
        for f in &self.files {
            let parts: Vec<&str> = f.rel_path.split('/').collect();
            let root_file = match parts.as_slice() {
                ["crates" | "shims", name, ..] => format!("{}/{}/src/lib.rs", parts[0], name),
                _ => "src/lib.rs".to_string(),
            };
            groups.entry(root_file).or_default().push(f);
        }
        groups
    }

    /// R4: every shim pub item must be referenced from outside its own
    /// crate. The reference corpus for shim `S` is:
    ///
    /// * every identifier in non-shim code (`crates/`, `src/`, `tests/`,
    ///   `examples/`),
    /// * every identifier in *other* shims (shims may build on each other,
    ///   e.g. proptest's generator is `rand::StdRng`),
    /// * identifiers inside `S`'s own `#[macro_export]` macro bodies —
    ///   those tokens expand at workspace call sites (e.g.
    ///   `criterion_group!` calling `configure_from_args`).
    ///
    /// `S`'s ordinary code does *not* count: a shim keeping its own
    /// surface alive is exactly the drift this rule exists to catch.
    fn check_shim_surfaces(&self, out: &mut Vec<Violation>) {
        let idents = |f: &SourceFile| -> Vec<String> {
            f.lexed
                .toks
                .iter()
                .filter(|t| t.kind == crate::lexer::TokKind::Ident)
                .map(|t| t.text.clone())
                .collect()
        };
        // Shim crate name ("shims/<name>/…") → identifiers in that shim.
        let mut per_shim: BTreeMap<String, HashSet<String>> = BTreeMap::new();
        let mut non_shim: HashSet<String> = HashSet::new();
        for f in &self.files {
            match f.rel_path.split('/').collect::<Vec<_>>().as_slice() {
                ["shims", name, ..] => {
                    per_shim.entry(name.to_string()).or_default().extend(idents(f))
                }
                _ => non_shim.extend(idents(f)),
            }
        }
        for f in &self.files {
            let Some(shim) = f.rel_path.strip_prefix("shims/").and_then(|r| r.split('/').next())
            else {
                continue;
            };
            let mut referenced = non_shim.clone();
            for (other, ids) in &per_shim {
                if other != shim {
                    referenced.extend(ids.iter().cloned());
                }
            }
            referenced.extend(rules::exported_macro_body_idents(f));
            rules::check_shim_surface(f, &referenced, out);
        }
    }

    /// Runs `analyze` and reconciles the result against `baseline`,
    /// honoring per-rule severity (optionally overridden by `demote`,
    /// a set of rule names treated as warnings).
    pub fn check(&self, baseline: &Baseline, demote: &HashSet<String>) -> CheckReport {
        let violations = self.analyze();
        let mut report = CheckReport { checked_files: self.files.len(), ..Default::default() };

        let severity = |rule: &str| -> Severity {
            if demote.contains(rule) {
                Severity::Warn
            } else {
                rule_by_name(rule).map_or(Severity::Deny, |r| r.severity)
            }
        };

        // Group found violations by (file, rule) and compare counts with
        // the frozen allowance.
        let mut grouped: BTreeMap<(String, String), Vec<Violation>> = BTreeMap::new();
        for v in violations {
            grouped.entry((v.file.clone(), v.rule.to_string())).or_default().push(v);
        }
        for ((file, rule), vs) in &grouped {
            let allowance = baseline.allowance(file, rule);
            match vs.len().cmp(&allowance) {
                std::cmp::Ordering::Greater => {
                    // More violations than frozen: report every site (the
                    // baseline has no line information, so all candidate
                    // sites are shown) with the counts attached.
                    for v in vs {
                        let mut v = v.clone();
                        if allowance > 0 {
                            v.message.push_str(&format!(
                                " [{} found, {} baselined]",
                                vs.len(),
                                allowance
                            ));
                        }
                        match severity(rule) {
                            Severity::Deny => report.errors.push(v),
                            Severity::Warn => report.warnings.push(v),
                        }
                    }
                }
                std::cmp::Ordering::Equal => report.baselined += vs.len(),
                std::cmp::Ordering::Less => {
                    report.baselined += vs.len();
                    if severity(rule) == Severity::Deny {
                        report.stale.push(StaleEntry {
                            file: file.clone(),
                            rule: rule.clone(),
                            baselined: allowance,
                            found: vs.len(),
                        });
                    }
                }
            }
        }
        // Baseline entries with no remaining violations at all are stale
        // too — otherwise deleting the last violation would leave frozen
        // headroom for new code to consume.
        for e in &baseline.entries {
            if !grouped.contains_key(&(e.file.clone(), e.rule.clone()))
                && severity(&e.rule) == Severity::Deny
            {
                report.stale.push(StaleEntry {
                    file: e.file.clone(),
                    rule: e.rule.clone(),
                    baselined: e.count,
                    found: 0,
                });
            }
        }
        report.stale.sort_by(|a, b| (&a.file, &a.rule).cmp(&(&b.file, &b.rule)));
        report
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace root this binary was built inside: two levels above the
/// lint crate's manifest. Callers can override with `--root`.
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}
