//! `roulette-lint` — the workspace invariant linter's CLI.
//!
//! ```text
//! roulette-lint check    [--format text|json] [--baseline PATH] [--root PATH]
//!                        [--lock-order PATH] [--warn RULE]...
//! roulette-lint baseline [--baseline PATH] [--root PATH] [--lock-order PATH]
//! roulette-lint rules
//! ```
//!
//! `check` exits 0 when the tree is clean (modulo the committed baseline),
//! 1 on violations or a stale baseline, 2 on usage or I/O errors.

#![forbid(unsafe_code)]

use roulette_lint::{Baseline, LockOrder, Workspace, RULES};
use std::collections::HashSet;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: roulette-lint <check|baseline|rules> \
    [--format text|json] [--baseline PATH] [--root PATH] [--lock-order PATH] [--warn RULE]...";

struct Opts {
    cmd: String,
    root: PathBuf,
    baseline: PathBuf,
    lock_order: Option<PathBuf>,
    format: String,
    demote: HashSet<String>,
}

fn parse_args() -> Result<Opts, String> {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().ok_or(USAGE)?;
    let mut root = roulette_lint::default_root();
    let mut baseline: Option<PathBuf> = None;
    let mut lock_order: Option<PathBuf> = None;
    let mut format = "text".to_string();
    let mut demote = HashSet::new();
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next().ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        match a.as_str() {
            "--root" => root = PathBuf::from(value("--root")?),
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline")?)),
            "--lock-order" => lock_order = Some(PathBuf::from(value("--lock-order")?)),
            "--format" => {
                format = value("--format")?;
                if format != "text" && format != "json" {
                    return Err(format!("unknown format `{format}`\n{USAGE}"));
                }
            }
            "--warn" => {
                let rule = value("--warn")?;
                if roulette_lint::rules::rule_by_name(&rule).is_none() {
                    return Err(format!("unknown rule `{rule}`"));
                }
                demote.insert(rule);
            }
            _ => return Err(format!("unknown argument `{a}`\n{USAGE}")),
        }
    }
    let baseline = baseline.unwrap_or_else(|| root.join("lint-baseline.toml"));
    Ok(Opts { cmd, root, baseline, lock_order, format, demote })
}

/// Loads the workspace, overriding the default `<root>/lock-order.toml`
/// with an explicit `--lock-order PATH` when one was given.
fn load_workspace(opts: &Opts) -> Result<Workspace, String> {
    let mut ws = Workspace::load(&opts.root)
        .map_err(|e| format!("loading workspace at {}: {e}", opts.root.display()))?;
    if let Some(p) = &opts.lock_order {
        let text =
            std::fs::read_to_string(p).map_err(|e| format!("reading {}: {e}", p.display()))?;
        ws.lock_order = Some(LockOrder::parse(&text)?);
    }
    Ok(ws)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("roulette-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(opts: &Opts) -> Result<ExitCode, String> {
    match opts.cmd.as_str() {
        "rules" => {
            for r in RULES {
                println!("{:30} {:4}  {}", r.name, r.severity.to_string(), r.summary);
            }
            Ok(ExitCode::SUCCESS)
        }
        "baseline" => {
            let ws = load_workspace(opts)?;
            let violations = ws.analyze();
            let b = Baseline::from_violations(&violations);
            std::fs::write(&opts.baseline, b.to_toml())
                .map_err(|e| format!("writing {}: {e}", opts.baseline.display()))?;
            println!(
                "baseline: froze {} violation(s) across {} entr(ies) into {}",
                violations.len(),
                b.entries.len(),
                opts.baseline.display()
            );
            Ok(ExitCode::SUCCESS)
        }
        "check" => {
            let ws = load_workspace(opts)?;
            let baseline = match std::fs::read_to_string(&opts.baseline) {
                Ok(text) => Baseline::parse(&text)
                    .map_err(|e| format!("{}: {e}", opts.baseline.display()))?,
                // No baseline file: nothing is frozen; everything must be
                // clean. (`baseline` bootstraps the freeze file.)
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
                Err(e) => return Err(format!("reading {}: {e}", opts.baseline.display())),
            };
            let report = ws.check(&baseline, &opts.demote);
            match opts.format.as_str() {
                "json" => println!("{}", report.render_json()),
                _ => print!("{}", report.render_text()),
            }
            Ok(if report.ok() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}
