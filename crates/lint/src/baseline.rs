//! The `lint-baseline.toml` freeze file.
//!
//! The baseline freezes *legacy* violations so the linter can gate CI from
//! day one while the debt is burned down incrementally. Entries are
//! `(file, rule, count)` triples rather than line numbers, so unrelated
//! edits to a file do not invalidate the freeze, while both directions of
//! drift are still caught:
//!
//! * more violations than frozen → the new sites are reported as errors;
//! * fewer violations than frozen → the entry is *stale* and the check
//!   fails until `roulette-lint baseline` shrinks the freeze — the
//!   headroom can never be silently reused by new code.
//!
//! The file is a small TOML subset (comments, `version = 1`, and
//! `[[suppress]]` tables with string/integer keys), parsed by hand because
//! the linter is deliberately dependency-free.

use crate::report::Violation;
use std::collections::BTreeMap;

/// One frozen `(file, rule, count)` triple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// Rule name.
    pub rule: String,
    /// Number of violations of `rule` in `file` frozen as legacy debt.
    pub count: usize,
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Frozen entries, sorted by `(file, rule)`.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Looks up the frozen count for `(file, rule)`, defaulting to 0.
    pub fn allowance(&self, file: &str, rule: &str) -> usize {
        self.entries
            .iter()
            .find(|e| e.file == file && e.rule == rule)
            .map_or(0, |e| e.count)
    }

    /// Builds a baseline freezing every violation in `violations`.
    pub fn from_violations(violations: &[Violation]) -> Baseline {
        let mut grouped: BTreeMap<(String, String), usize> = BTreeMap::new();
        for v in violations {
            *grouped.entry((v.file.clone(), v.rule.to_string())).or_insert(0) += 1;
        }
        Baseline {
            entries: grouped
                .into_iter()
                .map(|((file, rule), count)| BaselineEntry { file, rule, count })
                .collect(),
        }
    }

    /// Serializes to the TOML subset this module parses.
    pub fn to_toml(&self) -> String {
        let mut out = String::from(
            "# lint-baseline.toml — frozen legacy violations for `roulette-lint`.\n\
             #\n\
             # Each [[suppress]] entry freezes `count` pre-existing violations of\n\
             # `rule` in `file`. New violations beyond the frozen count fail the\n\
             # check; fixing a frozen violation makes the entry stale and the check\n\
             # fails until `cargo run -p roulette-lint -- baseline` shrinks it — the\n\
             # freeze is a one-way ratchet. Do not add entries for new code.\n\
             \nversion = 1\n",
        );
        for e in &self.entries {
            out.push_str(&format!(
                "\n[[suppress]]\nfile = \"{}\"\nrule = \"{}\"\ncount = {}\n",
                e.file, e.rule, e.count
            ));
        }
        out
    }

    /// Parses the TOML subset. Unknown keys, malformed lines, or a
    /// version other than 1 are errors — a freeze file that cannot be
    /// read exactly must not silently allow anything.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        let mut cur: Option<BaselineEntry> = None;
        let mut saw_version = false;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[suppress]]" {
                if let Some(e) = cur.take() {
                    finish_entry(e, &mut entries, lineno)?;
                }
                cur = Some(BaselineEntry { file: String::new(), rule: String::new(), count: 0 });
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| format!("line {lineno}: expected `key = value`, got `{line}`"))?;
            match (key, &mut cur) {
                ("version", None) => {
                    if value != "1" {
                        return Err(format!("line {lineno}: unsupported version {value}"));
                    }
                    saw_version = true;
                }
                ("file", Some(e)) => e.file = unquote(value, lineno)?,
                ("rule", Some(e)) => e.rule = unquote(value, lineno)?,
                ("count", Some(e)) => {
                    e.count = value
                        .parse()
                        .map_err(|_| format!("line {lineno}: bad count `{value}`"))?;
                }
                _ => return Err(format!("line {lineno}: unexpected key `{key}`")),
            }
        }
        if let Some(e) = cur.take() {
            finish_entry(e, &mut entries, text.lines().count())?;
        }
        if !saw_version {
            return Err("missing `version = 1`".into());
        }
        entries.sort_by(|a, b| (&a.file, &a.rule).cmp(&(&b.file, &b.rule)));
        Ok(Baseline { entries })
    }
}

fn finish_entry(
    e: BaselineEntry,
    entries: &mut Vec<BaselineEntry>,
    lineno: usize,
) -> Result<(), String> {
    if e.file.is_empty() || e.rule.is_empty() || e.count == 0 {
        return Err(format!(
            "entry ending near line {lineno}: needs non-empty file, rule, and count ≥ 1"
        ));
    }
    if entries.iter().any(|x| x.file == e.file && x.rule == e.rule) {
        return Err(format!("duplicate entry for ({}, {})", e.file, e.rule));
    }
    entries.push(e);
    Ok(())
}

fn unquote(v: &str, lineno: usize) -> Result<String, String> {
    v.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("line {lineno}: expected quoted string, got `{v}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(file: &str, rule: &'static str) -> Violation {
        Violation { file: file.into(), line: 1, rule, message: String::new() }
    }

    #[test]
    fn roundtrip() {
        let b = Baseline::from_violations(&[
            v("crates/a.rs", "no-panic-hot-path"),
            v("crates/a.rs", "no-panic-hot-path"),
            v("crates/b.rs", "no-stdout-in-libs"),
        ]);
        let parsed = Baseline::parse(&b.to_toml()).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.allowance("crates/a.rs", "no-panic-hot-path"), 2);
        assert_eq!(parsed.allowance("crates/b.rs", "no-stdout-in-libs"), 1);
        assert_eq!(parsed.allowance("crates/c.rs", "no-stdout-in-libs"), 0);
    }

    #[test]
    fn rejects_malformed_files() {
        assert!(Baseline::parse("nonsense").is_err());
        assert!(Baseline::parse("version = 2").is_err());
        assert!(Baseline::parse("version = 1\n[[suppress]]\nfile = \"f\"\n").is_err());
        assert!(Baseline::parse(
            "version = 1\n[[suppress]]\nfile = \"f\"\nrule = \"r\"\ncount = 0\n"
        )
        .is_err());
        // Duplicate (file, rule) pairs would make the allowance ambiguous.
        let dup = "version = 1\n\
            [[suppress]]\nfile = \"f\"\nrule = \"r\"\ncount = 1\n\
            [[suppress]]\nfile = \"f\"\nrule = \"r\"\ncount = 2\n";
        assert!(Baseline::parse(dup).is_err());
    }

    #[test]
    fn tolerates_comments_and_blank_lines() {
        let text = "# header\n\nversion = 1\n\n# entry\n[[suppress]]\n\
                    file = \"x.rs\"\nrule = \"r\"\ncount = 3\n";
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.entries.len(), 1);
        assert_eq!(b.allowance("x.rs", "r"), 3);
    }
}
