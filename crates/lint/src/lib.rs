//! # roulette-lint
//!
//! A workspace invariant linter for the RouLette repository.
//!
//! RouLette's eddy re-plans every 1024-tuple vector, so a single reachable
//! panic inside the episode loop kills every in-flight query sharing the
//! global plan. PR 1 *contains* such faults (`catch_unwind` + quarantine);
//! this crate *prevents* new ones from landing, by statically enforcing a
//! small set of repository invariants on every `.rs` file in the tree:
//!
//! * **R1 `no-panic-hot-path`** — no `unwrap`/`expect`, panicking macros,
//!   or direct indexing in the designated hot-path modules;
//! * **R2 `unsafe-needs-safety-comment`** — every `unsafe` carries a
//!   `// SAFETY:` comment, and unsafe-free crates declare
//!   `#![forbid(unsafe_code)]`;
//! * **R3 `no-stdout-in-libs`** — library crates never print;
//! * **R4 `shim-surface-drift`** — the offline dependency shims under
//!   `shims/` export only API the workspace actually references;
//! * **R5 `config-docs`** — every public `EngineConfig` field is
//!   documented;
//! * **R6 `no-alloc-in-episode-loop`** — code regions marked
//!   `// lint: hot-loop` never heap-allocate (`Vec::new`, `vec![…]`,
//!   `.clone()`, `.to_vec()`, `.to_owned()`); steady-state episode
//!   execution draws every buffer from the `EpisodeScratch` arena;
//! * **R7 `lock-order`** — every nested `Mutex`/`RwLock` acquisition,
//!   resolved across files through a lightweight call map, follows the
//!   canonical order declared in `lock-order.toml`, and the inferred
//!   lock-acquisition graph is acyclic;
//! * **R8 `no-blocking-while-locked`** — no `recv()`, `join()`,
//!   `accept()`, `sleep()`, or socket/file blocking calls while any
//!   guard is live in non-test code;
//! * **R9 `atomic-ordering-justified`** — every non-`Relaxed` atomic
//!   ordering (and every `Relaxed` on a non-counter atomic) carries an
//!   `// ordering:` comment, mirroring R2's SAFETY discipline.
//!
//! Matching is lexer-based ([`lexer`]): string literals, char literals,
//! raw strings, and comments can never false-positive. Violations are
//! suppressed either inline (`// lint:allow(<rule>)`) or frozen in
//! [`lint-baseline.toml`](baseline) for incremental burn-down; the
//! baseline is a strict two-way ratchet, so it can neither grow silently
//! nor retain headroom after a fix.
//!
//! This library performs no I/O besides reading sources and never prints —
//! the `roulette-lint` binary owns all output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod conc;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

pub use baseline::{Baseline, BaselineEntry};
pub use conc::LockOrder;
pub use report::{CheckReport, Severity, StaleEntry, Violation};
pub use rules::{Rule, SourceFile, HOT_PATHS, RULES};
pub use workspace::{default_root, Workspace};
