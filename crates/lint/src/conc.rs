//! Cross-file concurrency analysis: rules R7, R8, and R9.
//!
//! This module turns `roulette-lint` from a per-file checker into a
//! whole-workspace concurrency analyzer. It builds a model of every
//! struct, lock-typed field, and function in the tree from the existing
//! token stream, tracks guard liveness through each function body, and
//! propagates lock/blocking *effects* across files through a lightweight
//! intra-crate call map. Three rules consume the model:
//!
//! * **R7 `lock-order`** — every nested acquisition (`B` taken while `A`
//!   is held, directly or via a call chain) must follow the canonical
//!   order declared in `lock-order.toml`, and the inferred acquisition
//!   graph must be acyclic. Reentrant acquisition of the same lock class
//!   is always an error.
//! * **R8 `no-blocking-while-locked`** — no `recv()`, `join()`,
//!   `accept()`, `sleep()`, socket/file reads or writes, or other
//!   indefinitely-blocking calls while any guard is live in non-test
//!   code. `Condvar::wait`/`wait_timeout` are deliberately *not* in the
//!   blocking set: they release the guard they are handed.
//! * **R9 `atomic-ordering-justified`** — every non-`Relaxed` atomic
//!   ordering, and every `Relaxed` on a non-counter atomic, needs an
//!   `// ordering:` comment (same line or the two lines above),
//!   mirroring R2's `// SAFETY:` discipline. An atomic counts as a
//!   counter when it is the receiver of a `fetch_add`/`fetch_sub`
//!   anywhere in the workspace.
//!
//! ## Model, honestly stated
//!
//! Lock identity is the pair `Struct.field` (e.g. `Session.ingestion`,
//! `EventRing.inner`), resolved from struct definitions whose field type
//! mentions `Mutex` or `RwLock`. Receivers resolve through `self` (via
//! the enclosing `impl`), parameter types, and field types; a bare name
//! falls back to the unique lock field of that name if exactly one
//! struct declares one. Functions whose return type names a `*Guard`
//! (or a struct wrapping one, like `StemReader`) are *guard-returning
//! helpers*: a call to one is an acquisition of the helper's lock at
//! the caller's site.
//!
//! Guard liveness follows Rust's drop rules conservatively: a `let`-bound
//! guard lives to the end of its block (or an explicit `drop(g)`); a
//! temporary guard lives to the end of its statement, which also covers
//! guards created inside call arguments (`f(&m.lock())`) and `match` /
//! `if let` scrutinees (whose temporaries genuinely outlive the arm).
//!
//! The call map resolves calls by receiver type where it can and
//! otherwise falls back to by-name resolution, accepting the result only
//! when every lock-or-block-touching definition of that name agrees and
//! the name is not a ubiquitous collection method (`push`, `insert`, …).
//! Calls through closures and function pointers are not tracked — the
//! analysis under-approximates there and the nightly ThreadSanitizer CI
//! job is the dynamic backstop. `shims/` are excluded from the model:
//! they mirror external crates' APIs, and their internal locks are
//! leaf-level by construction. Lock classes do not distinguish
//! *instances*: two different `Stem`s are both `Stem.inner`, so holding
//! one while taking another reports as reentrancy — real code either
//! orders instances deterministically (and documents the site with
//! `lint:allow`) or restructures.

use crate::lexer::{Tok, TokKind};
use crate::report::Violation;
use crate::rules::{
    matching_close, SourceFile, ATOMIC_ORDERING_JUSTIFIED, LOCK_ORDER, NO_BLOCKING_WHILE_LOCKED,
};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

// ---------------------------------------------------------------------------
// lock-order.toml
// ---------------------------------------------------------------------------

/// The declared canonical lock order: outermost lock first. A nesting
/// `A → B` is legal iff both classes are declared and `A` precedes `B`.
#[derive(Debug, Clone, Default)]
pub struct LockOrder {
    /// Lock class names (`Struct.field`), outermost first.
    pub order: Vec<String>,
}

impl LockOrder {
    /// Parses the `lock-order.toml` subset:
    ///
    /// ```toml
    /// version = 1
    /// order = [
    ///     "Session.ingestion",
    ///     "EventRing.inner",
    /// ]
    /// ```
    pub fn parse(text: &str) -> Result<LockOrder, String> {
        let mut order: Vec<String> = Vec::new();
        let mut saw_version = false;
        let mut in_array = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let err = |m: String| Err(format!("lock-order.toml line {}: {m}", lineno + 1));
            if in_array {
                let mut rest = line.as_str();
                loop {
                    rest = rest.trim_start_matches(',').trim();
                    if rest.is_empty() {
                        break;
                    }
                    if let Some(r) = rest.strip_prefix(']') {
                        if !r.trim().is_empty() {
                            return err("trailing content after `]`".into());
                        }
                        in_array = false;
                        break;
                    }
                    let Some(r) = rest.strip_prefix('"') else {
                        return err("expected a quoted lock class".into());
                    };
                    let Some(close) = r.find('"') else {
                        return err("unterminated string".into());
                    };
                    let name = &r[..close];
                    if name.is_empty() {
                        return err("empty lock class name".into());
                    }
                    if order.iter().any(|o| o == name) {
                        return err(format!("duplicate lock class `{name}`"));
                    }
                    order.push(name.to_string());
                    rest = &r[close + 1..];
                }
            } else if let Some(v) = line.strip_prefix("version") {
                if v.trim_start().strip_prefix('=').map(str::trim) != Some("1") {
                    return err("unsupported version (expected `version = 1`)".into());
                }
                saw_version = true;
            } else if let Some(v) = line.strip_prefix("order") {
                match v.trim_start().strip_prefix('=').map(str::trim) {
                    Some(rest) if rest.starts_with('[') => {
                        in_array = true;
                        let tail = rest[1..].trim();
                        if let Some(inner) = tail.strip_suffix(']') {
                            for part in inner.split(',').map(str::trim).filter(|p| !p.is_empty())
                            {
                                let name = part.trim_matches('"');
                                if name.len() + 2 != part.len() || name.is_empty() {
                                    return err("expected a quoted lock class".into());
                                }
                                if order.iter().any(|o| o == name) {
                                    return err(format!("duplicate lock class `{name}`"));
                                }
                                order.push(name.to_string());
                            }
                            in_array = false;
                        } else if !tail.is_empty() {
                            return err("array items must start on the next line".into());
                        }
                    }
                    _ => return err("expected `order = [`".into()),
                }
            } else {
                return err(format!("unrecognized directive `{line}`"));
            }
        }
        if in_array {
            return Err("lock-order.toml: unterminated `order` array".into());
        }
        if !saw_version {
            return Err("lock-order.toml: missing `version = 1`".into());
        }
        Ok(LockOrder { order })
    }

    /// Position of `class` in the declared order, if declared.
    pub fn position(&self, class: &str) -> Option<usize> {
        self.order.iter().position(|c| c == class)
    }
}

fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

// ---------------------------------------------------------------------------
// Workspace model
// ---------------------------------------------------------------------------

/// Methods whose zero-argument form acquires a guard. Zero args is what
/// distinguishes `RwLock::read`/`write` from `io::Read`/`Write`.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Blocking calls that must not run while a guard is live. Split by arity
/// because short names collide with non-blocking APIs: `handle.join()`
/// blocks, `path.join("x")` does not.
const BLOCKING_ZERO_ARG: &[&str] = &["recv", "join", "accept", "flush", "park", "incoming"];
const BLOCKING_ANY_ARG: &[&str] = &[
    "recv_timeout",
    "recv_deadline",
    "sleep",
    "park_timeout",
    "read_line",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "connect",
];

/// Names too generic for by-name call resolution: attributing a
/// `Vec::push` call site to `AdmissionQueue::push` (or an atomic's
/// `.load(…)` to `Workspace::load`) would invent edges.
const FALLBACK_DENYLIST: &[&str] = &[
    "push", "pop", "insert", "remove", "get", "set", "new", "clone", "drain", "extend", "take",
    "len", "is_empty", "next", "iter", "contains", "clear", "write", "read", "lock", "reset",
    "record", "load", "store", "swap", "sum", "get_or_insert",
];

/// Methods that pass a guard through unchanged: `lock().unwrap()` still
/// holds the lock, and the chain still denotes the guard value.
const GUARD_ADAPTERS: &[&str] = &["unwrap", "expect", "into_inner", "unwrap_or_else"];

/// Keywords (and tuple-enum constructors) that precede `(` without
/// forming a call worth modelling.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "return", "loop", "in", "as", "move", "let", "else", "fn",
    "impl", "use", "pub", "mod", "unsafe", "where", "break", "continue", "ref", "mut", "dyn",
    "box", "await", "Some", "Ok", "Err", "None",
];

#[derive(Debug, Clone)]
struct FieldInfo {
    name: String,
    type_idents: Vec<String>,
    is_lock: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    /// Resolved to a unique model function.
    Fn(usize),
    /// Unresolved; by-name effect resolution applies in the fixpoint.
    ByName,
}

#[derive(Debug, Clone)]
struct CallSite {
    name: String,
    target: Target,
    line: u32,
    held: Vec<String>,
}

#[derive(Debug, Clone)]
struct AcqSite {
    class: String,
    line: u32,
    held: Vec<String>,
}

#[derive(Debug, Clone)]
struct BlockSite {
    what: String,
    line: u32,
    held: Vec<String>,
}

#[derive(Debug, Default)]
struct FnInfo {
    file_idx: usize,
    name: String,
    self_ty: Option<String>,
    params: Vec<(String, Vec<String>)>,
    body: Option<(usize, usize)>,
    is_test: bool,
    returns_guard: bool,
    guard_class: Option<String>,
    acquires: Vec<AcqSite>,
    calls: Vec<CallSite>,
    blocking: Vec<BlockSite>,
}

/// The extracted whole-workspace concurrency model.
struct Model<'a> {
    files: &'a [SourceFile],
    /// struct name → fields.
    structs: HashMap<String, Vec<FieldInfo>>,
    /// declared trait names.
    traits: HashSet<String>,
    /// trait name → implementing self types.
    trait_impls: HashMap<String, Vec<String>>,
    fns: Vec<FnInfo>,
    /// (self_ty or "", name) → fn indices.
    by_owner: HashMap<(String, String), Vec<usize>>,
    /// name → fn indices.
    by_name: HashMap<String, Vec<usize>>,
    /// lock-field name → (declaring struct, how many structs declare it).
    lock_field_owner: HashMap<String, (String, usize)>,
}

fn is_shim(f: &SourceFile) -> bool {
    f.rel_path.starts_with("shims/")
}

fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.starts_with("examples/")
        || rel.contains("/examples/")
}

/// Skips a balanced `<...>` group starting at `i` (which must be `<`),
/// tolerating `->` and `=>` inside. Returns the index just past `>`.
fn skip_angles(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>')
            && !(j > 0 && (toks[j - 1].is_punct('-') || toks[j - 1].is_punct('=')))
        {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

impl<'a> Model<'a> {
    fn build(files: &'a [SourceFile]) -> Model<'a> {
        let mut m = Model {
            files,
            structs: HashMap::new(),
            traits: HashSet::new(),
            trait_impls: HashMap::new(),
            fns: Vec::new(),
            by_owner: HashMap::new(),
            by_name: HashMap::new(),
            lock_field_owner: HashMap::new(),
        };
        for (fi, f) in files.iter().enumerate() {
            if !is_shim(f) {
                m.collect_types(fi);
            }
        }
        for (fi, f) in files.iter().enumerate() {
            if !is_shim(f) {
                m.collect_fns(fi);
            }
        }
        for (i, f) in m.fns.iter().enumerate() {
            m.by_owner
                .entry((f.self_ty.clone().unwrap_or_default(), f.name.clone()))
                .or_default()
                .push(i);
            m.by_name.entry(f.name.clone()).or_default().push(i);
        }
        let mut lfo: HashMap<String, (String, usize)> = HashMap::new();
        for (name, fields) in &m.structs {
            for fld in fields.iter().filter(|f| f.is_lock) {
                lfo.entry(fld.name.clone())
                    .and_modify(|(_, n)| *n += 1)
                    .or_insert_with(|| (name.clone(), 1));
            }
        }
        m.lock_field_owner = lfo;
        m.resolve_guard_classes();
        m
    }

    fn collect_types(&mut self, fi: usize) {
        let toks = &self.files[fi].lexed.toks;
        let mut i = 0;
        while i < toks.len() {
            if toks[i].is_ident("struct")
                && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            {
                let name = toks[i + 1].text.clone();
                let mut j = i + 2;
                if j < toks.len() && toks[j].is_punct('<') {
                    j = skip_angles(toks, j);
                }
                while j < toks.len()
                    && !(toks[j].is_punct('{') || toks[j].is_punct(';') || toks[j].is_punct('('))
                {
                    j += 1;
                }
                if j < toks.len() && toks[j].is_punct('{') {
                    if let Some(close) = matching_close(toks, j, '{', '}') {
                        self.structs.insert(name, parse_fields(&toks[j + 1..close]));
                        i = close + 1;
                        continue;
                    }
                }
                i = j + 1;
                continue;
            }
            if toks[i].is_ident("trait")
                && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            {
                self.traits.insert(toks[i + 1].text.clone());
            }
            i += 1;
        }
    }

    fn collect_fns(&mut self, fi: usize) {
        let file = &self.files[fi];
        let toks = &file.lexed.toks;
        // Impl spans: (body_open, body_close, self_ty).
        let mut impls: Vec<(usize, usize, String)> = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            if toks[i].is_ident("impl") && impl_item_position(toks, i) {
                let mut j = i + 1;
                if j < toks.len() && toks[j].is_punct('<') {
                    j = skip_angles(toks, j);
                }
                let header_start = j;
                let mut angle = 0i32;
                while j < toks.len() {
                    let t = &toks[j];
                    if t.is_punct('<') {
                        angle += 1;
                    } else if t.is_punct('>') && !(j > 0 && toks[j - 1].is_punct('-')) {
                        angle -= 1;
                    } else if t.is_punct('{') && angle <= 0 {
                        break;
                    }
                    j += 1;
                }
                if j >= toks.len() {
                    break;
                }
                let header = &toks[header_start..j];
                let close = matching_close(toks, j, '{', '}').unwrap_or(toks.len() - 1);
                let first_ident = |ts: &[Tok]| {
                    ts.iter()
                        .find(|t| {
                            t.kind == TokKind::Ident
                                && !matches!(t.text.as_str(), "dyn" | "mut" | "where")
                        })
                        .map(|t| t.text.clone())
                };
                let for_pos = header.iter().position(|t| t.is_ident("for"));
                let (self_ty, trait_name) = match for_pos {
                    Some(p) => (first_ident(&header[p + 1..]), first_ident(&header[..p])),
                    None => (first_ident(header), None),
                };
                if let (Some(st), Some(tr)) = (&self_ty, &trait_name) {
                    self.trait_impls.entry(tr.clone()).or_default().push(st.clone());
                }
                if let Some(st) = self_ty {
                    impls.push((j, close, st));
                }
                i = j + 1;
                continue;
            }
            i += 1;
        }

        let file_test = is_test_path(&file.rel_path);
        let mut i = 0;
        while i + 1 < toks.len() {
            if toks[i].is_ident("fn") && toks[i + 1].kind == TokKind::Ident {
                if let Some(f) = self.parse_fn(fi, toks, i, &impls, file_test || file.in_test(i))
                {
                    let next = f.body.map_or(i + 2, |(_, e)| e + 1);
                    self.fns.push(f);
                    i = next;
                    continue;
                }
            }
            i += 1;
        }
    }

    fn parse_fn(
        &self,
        fi: usize,
        toks: &[Tok],
        at: usize,
        impls: &[(usize, usize, String)],
        is_test: bool,
    ) -> Option<FnInfo> {
        let name = toks[at + 1].text.clone();
        let mut j = at + 2;
        if j < toks.len() && toks[j].is_punct('<') {
            j = skip_angles(toks, j);
        }
        if j >= toks.len() || !toks[j].is_punct('(') {
            return None;
        }
        let params_close = matching_close(toks, j, '(', ')')?;
        let params = parse_params(&toks[j + 1..params_close]);
        let mut ret_idents: Vec<String> = Vec::new();
        let mut k = params_close + 1;
        let mut body = None;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct('{') {
                body = Some((k, matching_close(toks, k, '{', '}')?));
                break;
            }
            if t.is_punct(';') {
                break;
            }
            if t.is_ident("where") {
                while k < toks.len() && !toks[k].is_punct('{') && !toks[k].is_punct(';') {
                    k += 1;
                }
                continue;
            }
            if t.kind == TokKind::Ident {
                ret_idents.push(t.text.clone());
            }
            k += 1;
        }
        let guard_wrapper = |id: &str| {
            self.structs.get(id).is_some_and(|fields| {
                fields.iter().any(|f| f.type_idents.iter().any(|t| t.ends_with("Guard")))
            })
        };
        let returns_guard =
            ret_idents.iter().any(|id| id.ends_with("Guard") || guard_wrapper(id));
        Some(FnInfo {
            file_idx: fi,
            name,
            self_ty: impls
                .iter()
                .find(|(s, e, _)| at > *s && at < *e)
                .map(|(_, _, st)| st.clone()),
            params,
            body,
            is_test,
            returns_guard,
            ..FnInfo::default()
        })
    }

    /// The first ident in a type that names a model struct or trait —
    /// skipping wrappers like `Arc`, `Option`, `Box`, `Mutex`.
    fn main_type_ident(&self, idents: &[String]) -> Option<String> {
        idents
            .iter()
            .find(|id| self.structs.contains_key(*id) || self.traits.contains(*id))
            .cloned()
    }

    fn field(&self, owner: &str, name: &str) -> Option<&FieldInfo> {
        self.structs.get(owner)?.iter().find(|f| f.name == name)
    }

    /// Resolves the lock class of a zero-arg `.lock()/.read()/.write()`
    /// given the receiver chain (outermost first, `"?"` = unresolvable
    /// head).
    fn resolve_acq_class(&self, f: &FnInfo, chain: &[String], method: &str) -> String {
        if chain.len() >= 2 {
            let head = &chain[0];
            let owner0 = if head == "self" {
                f.self_ty.clone()
            } else {
                f.params
                    .iter()
                    .find(|(n, _)| n == head)
                    .and_then(|(_, tys)| self.main_type_ident(tys))
            };
            if let Some(mut o) = owner0 {
                let mut ok = true;
                for mid in &chain[1..chain.len() - 1] {
                    match self
                        .field(&o, mid)
                        .and_then(|fl| self.main_type_ident(&fl.type_idents))
                    {
                        Some(next) => o = next,
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    let last = &chain[chain.len() - 1];
                    if self.field(&o, last).is_some_and(|fl| fl.is_lock) {
                        return format!("{o}.{last}");
                    }
                }
            }
        }
        // Guard-returning helper resolved by receiver type (`self.lock()`).
        if let Some(cls) = self
            .resolve_call_target(f, chain, method)
            .and_then(|ids| self.common_guard_class(&ids))
        {
            return cls;
        }
        // Guard-returning helper by name, when every candidate agrees
        // (e.g. `stem.read()` on an untyped local → `Stem::read`).
        if let Some(ids) = self.by_name.get(method) {
            let guards: Vec<usize> =
                ids.iter().copied().filter(|&i| self.fns[i].returns_guard).collect();
            if !guards.is_empty() {
                if let Some(cls) = self.common_guard_class(&guards) {
                    return cls;
                }
            }
        }
        // Unique lock-field name anywhere in the workspace.
        let last = chain.last().map(String::as_str).unwrap_or("?");
        if let Some((owner, n)) = self.lock_field_owner.get(last) {
            if *n == 1 {
                return format!("{owner}.{last}");
            }
        }
        last.to_string()
    }

    fn common_guard_class(&self, ids: &[usize]) -> Option<String> {
        let mut classes: BTreeSet<&str> = BTreeSet::new();
        for &i in ids {
            if self.fns[i].returns_guard {
                classes.insert(self.fns[i].guard_class.as_deref()?);
            }
        }
        if classes.len() == 1 {
            classes.first().map(|s| s.to_string())
        } else {
            None
        }
    }

    /// Resolves a method call through the receiver chain to candidate
    /// model functions. `None` means "unresolved" (by-name applies).
    fn resolve_call_target(&self, f: &FnInfo, chain: &[String], name: &str) -> Option<Vec<usize>> {
        let (head, rest) = chain.split_first()?;
        let mut owner = if head == "self" {
            f.self_ty.clone()?
        } else {
            f.params
                .iter()
                .find(|(n, _)| n == head)
                .and_then(|(_, tys)| self.main_type_ident(tys))?
        };
        for mid in rest {
            owner =
                self.field(&owner, mid).and_then(|fl| self.main_type_ident(&fl.type_idents))?;
        }
        self.fns_on_type(&owner, name)
    }

    /// Resolves a method call whose receiver is a live guard —
    /// `self.ingestion.lock().progress(q)` — to the method on the lock
    /// field's *inner* type (`IngestionState::progress`). `chain` is the
    /// receiver chain of the acquisition itself.
    fn locked_inner_fns(&self, f: &FnInfo, chain: &[String], name: &str) -> Option<Vec<usize>> {
        let (head, rest) = chain.split_first()?;
        let mut owner = if head == "self" {
            f.self_ty.clone()?
        } else {
            f.params
                .iter()
                .find(|(n, _)| n == head)
                .and_then(|(_, tys)| self.main_type_ident(tys))?
        };
        let (mids, last) = rest.split_at(rest.len().checked_sub(1)?);
        for mid in mids {
            owner =
                self.field(&owner, mid).and_then(|fl| self.main_type_ident(&fl.type_idents))?;
        }
        let fld = self.field(&owner, &last[0])?;
        if !fld.is_lock {
            return None;
        }
        let inner = self.main_type_ident(&fld.type_idents)?;
        self.fns_on_type(&inner, name)
    }

    /// Functions named `name` on type `ty`; a trait fans out to impls.
    fn fns_on_type(&self, ty: &str, name: &str) -> Option<Vec<usize>> {
        if self.traits.contains(ty) {
            let mut out = Vec::new();
            if let Some(impls) = self.trait_impls.get(ty) {
                for st in impls {
                    if let Some(ids) = self.by_owner.get(&(st.clone(), name.to_string())) {
                        out.extend(ids.iter().copied());
                    }
                }
            }
            return if out.is_empty() { None } else { Some(out) };
        }
        self.by_owner.get(&(ty.to_string(), name.to_string())).cloned()
    }

    /// Assigns `guard_class` to every guard-returning helper by scanning
    /// its body for the lock it takes; iterated so helpers can wrap each
    /// other.
    fn resolve_guard_classes(&mut self) {
        for _ in 0..3 {
            let mut updates: Vec<(usize, String)> = Vec::new();
            for (i, f) in self.fns.iter().enumerate() {
                if !f.returns_guard || f.guard_class.is_some() {
                    continue;
                }
                let Some((open, close)) = f.body else { continue };
                let toks = &self.files[f.file_idx].lexed.toks;
                let mut cls: Option<String> = None;
                let mut j = open;
                while j < close {
                    if acquisition_at(toks, j).is_some() {
                        let chain = receiver_chain(toks, j - 1);
                        let found = self.resolve_acq_class(f, &chain, &toks[j].text);
                        if found.contains('.') {
                            cls = Some(found);
                            break;
                        }
                        cls.get_or_insert(found);
                    } else if let Some(c) = self.guard_call_class(f, toks, j) {
                        cls = Some(c);
                        break;
                    }
                    j += 1;
                }
                if let Some(c) = cls {
                    updates.push((i, c));
                }
            }
            if updates.is_empty() {
                break;
            }
            for (i, c) in updates {
                self.fns[i].guard_class = Some(c);
            }
        }
    }

    /// If `toks[j]` is a method call resolving to a guard-returning fn
    /// with a known class, returns that class.
    fn guard_call_class(&self, f: &FnInfo, toks: &[Tok], j: usize) -> Option<String> {
        let t = toks.get(j)?;
        if t.kind != TokKind::Ident
            || !toks.get(j + 1)?.is_punct('(')
            || j == 0
            || !toks[j - 1].is_punct('.')
        {
            return None;
        }
        let chain = receiver_chain(toks, j - 1);
        let ids = self.resolve_call_target(f, &chain, &t.text)?;
        self.common_guard_class(&ids)
    }
}

/// If `toks[i]` is the method ident of a zero-arg `.lock()/.read()/.write()`
/// call, returns the index of the preceding `.`.
fn acquisition_at(toks: &[Tok], i: usize) -> Option<usize> {
    if toks[i].kind != TokKind::Ident || !ACQUIRE_METHODS.contains(&toks[i].text.as_str()) {
        return None;
    }
    if i == 0 || !toks[i - 1].is_punct('.') {
        return None;
    }
    if toks.get(i + 1)?.is_punct('(') && toks.get(i + 2)?.is_punct(')') {
        return Some(i - 1);
    }
    None
}

/// Walks the receiver chain backwards from the `.` at `dot`, returning it
/// outermost-first. An unresolvable head yields a leading `"?"`.
fn receiver_chain(toks: &[Tok], dot: usize) -> Vec<String> {
    let mut chain: Vec<String> = Vec::new();
    let mut j = dot; // toks[j] is `.`
    loop {
        if j == 0 {
            break;
        }
        let mut k = j - 1;
        if toks[k].is_punct(']') {
            // Skip one balanced index group backwards (`xs[i].lock()`).
            let mut depth = 0i32;
            loop {
                if toks[k].is_punct(']') {
                    depth += 1;
                } else if toks[k].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    chain.push("?".into());
                    chain.reverse();
                    return chain;
                }
                k -= 1;
            }
            if k == 0 {
                chain.push("?".into());
                break;
            }
            k -= 1;
        }
        if toks[k].kind == TokKind::Ident {
            chain.push(toks[k].text.clone());
        } else {
            chain.push("?".into());
            break;
        }
        if k >= 1 && toks[k - 1].is_punct('.') {
            j = k - 1;
        } else {
            break;
        }
    }
    chain.reverse();
    chain
}

// ---------------------------------------------------------------------------
// Body analysis
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Held {
    binding: Option<String>,
    class: String,
}

struct BodyWalker<'m, 'a> {
    model: &'m Model<'a>,
    fn_idx: usize,
    toks: &'a [Tok],
    acquires: Vec<AcqSite>,
    calls: Vec<CallSite>,
    blocking: Vec<BlockSite>,
}

impl BodyWalker<'_, '_> {
    fn fninfo(&self) -> &FnInfo {
        &self.model.fns[self.fn_idx]
    }

    /// Head-level (brace-depth-0) acquisitions inside `[start, end)`:
    /// `(tok_idx, class)` pairs, from direct `.lock()` forms and from
    /// calls resolved to guard-returning helpers.
    fn prescan(&self, start: usize, end: usize) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        let mut depth = 0i32;
        let mut j = start;
        while j < end {
            let t = &self.toks[j];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
            } else if depth == 0 && t.kind == TokKind::Ident {
                if let Some(dot) = acquisition_at(self.toks, j) {
                    let chain = receiver_chain(self.toks, dot);
                    let cls = self.model.resolve_acq_class(self.fninfo(), &chain, &t.text);
                    // A class that never resolved to `Struct.field` is not a
                    // modelled lock (std `stdin.lock()`, untyped locals).
                    if cls.contains('.') {
                        out.push((j, cls));
                    }
                } else if let Some((_, Target::Fn(id))) = self.call_at(j) {
                    let f = &self.model.fns[id];
                    if f.returns_guard {
                        if let Some(cls) = &f.guard_class {
                            if cls.contains('.') {
                                out.push((j, cls.clone()));
                            }
                        }
                    }
                }
            }
            j += 1;
        }
        out
    }

    /// Classifies the ident at `j` as a call (`toks[j + 1]` must be `(`).
    fn call_at(&self, j: usize) -> Option<(String, Target)> {
        let t = &self.toks[j];
        if t.kind != TokKind::Ident || !self.toks.get(j + 1)?.is_punct('(') {
            return None;
        }
        if NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            return None;
        }
        // Skip definitions (`fn name(`); macro invocations never reach
        // here because `!` sits between the name and the `(`.
        if j > 0 && self.toks[j - 1].is_ident("fn") {
            return None;
        }
        let target = if j > 0 && self.toks[j - 1].is_punct('.') {
            let chain = receiver_chain(self.toks, j - 1);
            let resolved = self
                .model
                .resolve_call_target(self.fninfo(), &chain, &t.text)
                .or_else(|| self.guard_receiver_target(j, &t.text));
            match resolved {
                Some(ids) if ids.len() == 1 => Target::Fn(ids[0]),
                _ => Target::ByName,
            }
        } else if j > 1 && self.toks[j - 1].is_punct(':') && self.toks[j - 2].is_punct(':') {
            // Path call `Type::name(…)`.
            match j.checked_sub(3).map(|q| &self.toks[q]) {
                Some(q) if q.kind == TokKind::Ident => {
                    let ty = if q.text == "Self" {
                        self.fninfo().self_ty.clone().unwrap_or_default()
                    } else {
                        q.text.clone()
                    };
                    match self.model.fns_on_type(&ty, &t.text) {
                        Some(ids) if ids.len() == 1 => Target::Fn(ids[0]),
                        _ => Target::ByName,
                    }
                }
                _ => Target::ByName,
            }
        } else {
            match self.model.by_owner.get(&(String::new(), t.text.clone())) {
                Some(ids) if ids.len() == 1 => Target::Fn(ids[0]),
                _ => Target::ByName,
            }
        };
        Some((t.text.clone(), target))
    }

    /// When the receiver of the method call at `j` is the result of an
    /// acquisition chain (`self.field.lock()` with optional guard adapters
    /// like `.unwrap()`), resolves the call against the lock field's inner
    /// type. This is what keeps `self.ingestion.lock().progress(q)` from
    /// by-name-resolving to the enclosing `Session::progress` itself.
    fn guard_receiver_target(&self, j: usize, name: &str) -> Option<Vec<usize>> {
        let mut k = j.checked_sub(1)?; // the `.` before the method name
        loop {
            if !self.toks[k].is_punct('.') || k == 0 || !self.toks[k - 1].is_punct(')') {
                return None;
            }
            // Find the matching `(` of the call the receiver chain ends in.
            let mut depth = 0i32;
            let mut o = k - 1;
            loop {
                if self.toks[o].is_punct(')') {
                    depth += 1;
                } else if self.toks[o].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                o = o.checked_sub(1)?;
            }
            let m = self.toks.get(o.checked_sub(1)?)?;
            if m.kind != TokKind::Ident || o < 2 || !self.toks[o - 2].is_punct('.') {
                return None;
            }
            if GUARD_ADAPTERS.contains(&m.text.as_str()) {
                k = o - 2;
                continue;
            }
            if ACQUIRE_METHODS.contains(&m.text.as_str()) {
                let chain = receiver_chain(self.toks, o - 2);
                return self.model.locked_inner_fns(self.fninfo(), &chain, name);
            }
            return None;
        }
    }

    /// Whether the temp acquisition at token `idx` still denotes the guard
    /// at the end of its statement (so a `let` binding would keep it
    /// alive). `lock().unwrap()` does; `lock().iter().collect()` hands the
    /// guard to a temporary that dies with the statement.
    fn temp_retained(&self, idx: usize, stmt_end: usize) -> bool {
        let Some(open) = (idx + 1 < self.toks.len()).then(|| idx + 1) else { return true };
        if !self.toks[open].is_punct('(') {
            return true;
        }
        let Some(close) = matching_close(self.toks, open, '(', ')') else { return true };
        let mut pos = close + 1;
        while pos < stmt_end {
            if self.toks[pos].is_punct('?') {
                pos += 1;
                continue;
            }
            if self.toks[pos].is_punct('.') {
                let adapter = self
                    .toks
                    .get(pos + 1)
                    .is_some_and(|m| GUARD_ADAPTERS.contains(&m.text.as_str()))
                    && self.toks.get(pos + 2).is_some_and(|p| p.is_punct('('));
                if adapter {
                    match matching_close(self.toks, pos + 2, '(', ')') {
                        Some(c) => pos = c + 1,
                        None => return true,
                    }
                    continue;
                }
                return false;
            }
            return true;
        }
        true
    }

    /// Statement extent from `i` inside `(i, close)`: returns
    /// `(stmt_end, next_i)` where `[i, stmt_end)` is the statement and
    /// `next_i` is where the next statement starts. A brace-depth-0 `{`
    /// whose close is not continued by `else` / `.` / `?` / `;` ends the
    /// statement (block statements: `for … { }`, `if … { }`, bare
    /// blocks), so a following `let g = m.lock();` is never merged in.
    fn stmt_extent(&self, i: usize, close: usize) -> (usize, usize) {
        let mut depth = 0i32;
        let mut j = i;
        while j < close {
            let t = &self.toks[j];
            if t.is_punct('{') && depth == 0 {
                let c = match matching_close(self.toks, j, '{', '}') {
                    Some(c) => c.min(close),
                    None => close,
                };
                let cont = self.toks.get(c + 1).is_some_and(|n| {
                    n.is_punct('.') || n.is_punct('?') || n.is_punct(';') || n.is_ident("else")
                });
                if cont {
                    j = c + 1;
                    continue;
                }
                return (c + 1, c + 1);
            }
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct(';') && depth == 0 {
                return (j, j + 1);
            }
            j += 1;
        }
        (close, close)
    }

    fn walk_block(&mut self, open: usize, close: usize, held_in: &[Held]) {
        let mut held: Vec<Held> = held_in.to_vec();
        let mut i = open + 1;
        while i < close {
            let (stmt_end, next_i) = self.stmt_extent(i, close);
            if stmt_end <= i {
                i = next_i.max(i + 1);
                continue;
            }
            let temps = self.prescan(i, stmt_end);
            let binding = if self.toks[i].is_ident("let") {
                let mut name = None;
                let mut k = i + 1;
                while k < stmt_end && !self.toks[k].is_punct('=') {
                    if self.toks[k].is_punct(':') {
                        break;
                    }
                    if self.toks[k].kind == TokKind::Ident && !self.toks[k].is_ident("mut") {
                        name = Some(self.toks[k].text.clone());
                    }
                    k += 1;
                }
                name
            } else {
                None
            };

            let mut j = i;
            while j < stmt_end {
                let t = &self.toks[j];
                if t.is_punct('{') {
                    let c = match matching_close(self.toks, j, '{', '}') {
                        Some(c) => c.min(close),
                        None => close,
                    };
                    // Temporaries created before the block (match / if-let
                    // scrutinees) are live inside it.
                    let mut inner = held.clone();
                    inner.extend(temps.iter().filter(|(idx, _)| *idx < j).map(|(_, cls)| {
                        Held { binding: None, class: cls.clone() }
                    }));
                    self.walk_block(j, c, &inner);
                    j = c + 1;
                    continue;
                }
                if t.is_ident("drop")
                    && self.toks.get(j + 1).is_some_and(|n| n.is_punct('('))
                    && self.toks.get(j + 3).is_some_and(|n| n.is_punct(')'))
                    && self.toks.get(j + 2).is_some_and(|a| a.kind == TokKind::Ident)
                {
                    let arg = &self.toks[j + 2].text;
                    held.retain(|h| h.binding.as_deref() != Some(arg.as_str()));
                    j += 4;
                    continue;
                }
                if t.kind == TokKind::Ident {
                    let held_classes = |upto: usize, held: &[Held]| -> Vec<String> {
                        let mut v: Vec<String> = held.iter().map(|h| h.class.clone()).collect();
                        v.extend(
                            temps
                                .iter()
                                .filter(|(idx, _)| *idx < upto && *idx != j)
                                .map(|(_, c)| c.clone()),
                        );
                        v.sort();
                        v.dedup();
                        v
                    };
                    if let Some((_, class)) = temps.iter().find(|(idx, _)| *idx == j) {
                        self.acquires.push(AcqSite {
                            class: class.clone(),
                            line: t.line,
                            held: held_classes(j, &held),
                        });
                    }
                    if let Some((name, target)) = self.call_at(j) {
                        // A guard is live across the whole call if it was
                        // created anywhere before the argument list closes
                        // (`self.f(&self.m.lock())`).
                        let args_close =
                            matching_close(self.toks, j + 1, '(', ')').unwrap_or(stmt_end);
                        let held_now = held_classes(args_close + 1, &held);
                        let zero_args = self.toks.get(j + 2).is_some_and(|n| n.is_punct(')'));
                        let is_blocking_name = (zero_args
                            && BLOCKING_ZERO_ARG.contains(&name.as_str()))
                            || BLOCKING_ANY_ARG.contains(&name.as_str());
                        let workspace_defined =
                            self.model.by_name.get(&name).is_some_and(|ids| !ids.is_empty());
                        if target == Target::ByName && is_blocking_name && !workspace_defined {
                            self.blocking.push(BlockSite {
                                what: name,
                                line: t.line,
                                held: held_now,
                            });
                        } else {
                            self.calls.push(CallSite {
                                name,
                                target,
                                line: t.line,
                                held: held_now,
                            });
                        }
                    }
                }
                j += 1;
            }

            // Statement end: let-bound guards survive to the block close;
            // unbound temporaries (and guards consumed by a value-extracting
            // chain like `lock().iter().collect()`) die here.
            if let Some(b) = &binding {
                for (tidx, cls) in &temps {
                    if self.temp_retained(*tidx, stmt_end) {
                        held.push(Held { binding: Some(b.clone()), class: cls.clone() });
                    }
                }
            }
            i = next_i;
        }
    }
}

// ---------------------------------------------------------------------------
// Effects fixpoint and rule evaluation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Default, PartialEq)]
struct Effect {
    locks: BTreeSet<String>,
    /// blocking call name → via-path description.
    blocks: BTreeMap<String, String>,
}

fn compute_effects(model: &Model<'_>) -> Vec<Effect> {
    let mut eff: Vec<Effect> = model
        .fns
        .iter()
        .map(|f| {
            let mut e = Effect::default();
            for a in &f.acquires {
                e.locks.insert(a.class.clone());
            }
            for b in &f.blocking {
                e.blocks.insert(b.what.clone(), format!("{}()", b.what));
            }
            if let Some(cls) = &f.guard_class {
                e.locks.insert(cls.clone());
            }
            e
        })
        .collect();
    for _ in 0..32 {
        let mut changed = false;
        for i in 0..model.fns.len() {
            let mut next = eff[i].clone();
            for call in &model.fns[i].calls {
                let callee = match call.target {
                    Target::Fn(id) => Some(eff[id].clone()),
                    Target::ByName => by_name_effect(model, &eff, &call.name),
                };
                if let Some(ce) = callee {
                    next.locks.extend(ce.locks.iter().cloned());
                    for (what, via) in &ce.blocks {
                        next.blocks
                            .entry(what.clone())
                            .or_insert_with(|| format!("{}() → {via}", call.name));
                    }
                }
            }
            if next != eff[i] {
                eff[i] = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    eff
}

/// By-name effect resolution: accepted only when the name is not
/// denylisted and every lock-or-block-touching definition agrees.
fn by_name_effect(model: &Model<'_>, eff: &[Effect], name: &str) -> Option<Effect> {
    if FALLBACK_DENYLIST.contains(&name) {
        return None;
    }
    let ids = model.by_name.get(name)?;
    let mut interesting = ids
        .iter()
        .map(|&i| &eff[i])
        .filter(|e| !e.locks.is_empty() || !e.blocks.is_empty());
    let first = interesting.next()?;
    if interesting.all(|e| e == first) {
        Some(first.clone())
    } else {
        None
    }
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct EdgeKey {
    outer: String,
    inner: String,
    file: String,
    line: u32,
}

/// Runs the R7 + R8 cross-file analysis over `files` against the declared
/// `order`, appending violations. Public (taking `&[SourceFile]`) so tests
/// can assemble synthetic multi-file workspaces without touching disk.
pub fn check_concurrency(
    files: &[SourceFile],
    order: Option<&LockOrder>,
    out: &mut Vec<Violation>,
) {
    let mut model = Model::build(files);
    for i in 0..model.fns.len() {
        let f = &model.fns[i];
        if f.is_test {
            continue;
        }
        let Some((open, close)) = f.body else { continue };
        let toks = &files[f.file_idx].lexed.toks;
        let mut w = BodyWalker {
            model: &model,
            fn_idx: i,
            toks,
            acquires: Vec::new(),
            calls: Vec::new(),
            blocking: Vec::new(),
        };
        w.walk_block(open, close, &[]);
        let (a, c, b) = (w.acquires, w.calls, w.blocking);
        model.fns[i].acquires = a;
        model.fns[i].calls = c;
        model.fns[i].blocking = b;
    }
    let eff = compute_effects(&model);

    // Collect nesting edges (deduped per site) and R8 violations.
    let mut edges: BTreeMap<EdgeKey, String> = BTreeMap::new();
    for f in &model.fns {
        let file = &files[f.file_idx].rel_path;
        for a in &f.acquires {
            for h in &a.held {
                edges
                    .entry(EdgeKey {
                        outer: h.clone(),
                        inner: a.class.clone(),
                        file: file.clone(),
                        line: a.line,
                    })
                    .or_default();
            }
        }
        for call in &f.calls {
            if call.held.is_empty() {
                continue;
            }
            let callee = match call.target {
                Target::Fn(id) => Some(eff[id].clone()),
                Target::ByName => by_name_effect(&model, &eff, &call.name),
            };
            let Some(ce) = callee else { continue };
            for inner in &ce.locks {
                for h in &call.held {
                    edges
                        .entry(EdgeKey {
                            outer: h.clone(),
                            inner: inner.clone(),
                            file: file.clone(),
                            line: call.line,
                        })
                        .or_insert_with(|| format!(" (via `{}()`)", call.name));
                }
            }
            for (what, via) in &ce.blocks {
                out.push(Violation {
                    file: file.clone(),
                    line: call.line,
                    rule: NO_BLOCKING_WHILE_LOCKED,
                    message: format!(
                        "call blocks on `{what}` (via `{}() → {via}`) while holding `{}`",
                        call.name,
                        call.held.join("`, `"),
                    ),
                });
            }
        }
        for b in &f.blocking {
            if b.held.is_empty() {
                continue;
            }
            out.push(Violation {
                file: file.clone(),
                line: b.line,
                rule: NO_BLOCKING_WHILE_LOCKED,
                message: format!(
                    "blocking call `{}()` while holding `{}`",
                    b.what,
                    b.held.join("`, `"),
                ),
            });
        }
    }

    // R7: every edge must follow the declared order.
    for (e, note) in &edges {
        if e.outer == e.inner {
            out.push(Violation {
                file: e.file.clone(),
                line: e.line,
                rule: LOCK_ORDER,
                message: format!(
                    "reentrant acquisition: `{}` taken while already held{note} — deadlock \
                     (or lock-class aliasing of two instances; restructure or justify with \
                     lint:allow)",
                    e.inner
                ),
            });
            continue;
        }
        let msg = match order {
            None => Some(format!(
                "`{}` acquired while `{}` is held{note}, but no lock-order.toml declares \
                 the canonical order",
                e.inner, e.outer
            )),
            Some(o) => match (o.position(&e.outer), o.position(&e.inner)) {
                (Some(po), Some(pi)) if po < pi => None,
                (Some(_), Some(_)) => Some(format!(
                    "`{}` acquired while `{}` is held{note}, but lock-order.toml places \
                     `{}` before `{}`",
                    e.inner, e.outer, e.inner, e.outer
                )),
                (None, _) => Some(format!(
                    "`{}` acquired while `{}` is held{note}, but `{}` is not declared in \
                     lock-order.toml",
                    e.inner, e.outer, e.outer
                )),
                (_, None) => Some(format!(
                    "`{}` acquired while `{}` is held{note}, but `{}` is not declared in \
                     lock-order.toml",
                    e.inner, e.outer, e.inner
                )),
            },
        };
        if let Some(message) = msg {
            out.push(Violation { file: e.file.clone(), line: e.line, rule: LOCK_ORDER, message });
        }
    }

    // Acyclicity of the full inferred graph. With a total declared order
    // this is implied; it still catches cycles among sites individually
    // suppressed with lint:allow, and gives fixtures a direct probe.
    // Self-loops already got the dedicated reentrancy report above.
    let keys: Vec<&EdgeKey> = edges.keys().filter(|e| e.outer != e.inner).collect();
    if let Some(cycle) = find_cycle(&keys) {
        let e = cycle[0];
        out.push(Violation {
            file: e.file.clone(),
            line: e.line,
            rule: LOCK_ORDER,
            message: format!(
                "lock acquisition graph has a cycle: {}",
                cycle
                    .iter()
                    .map(|e| format!("`{}` → `{}`", e.outer, e.inner))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        });
    }
}

fn find_cycle<'e>(edges: &[&'e EdgeKey]) -> Option<Vec<&'e EdgeKey>> {
    let mut adj: BTreeMap<&str, Vec<&'e EdgeKey>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.outer.as_str()).or_default().push(e);
    }
    for start in adj.keys().copied().collect::<Vec<_>>() {
        let mut on_path = vec![start];
        let mut path = Vec::new();
        if dfs(start, &adj, &mut on_path, &mut path) {
            return Some(path);
        }
    }
    None
}

fn dfs<'e>(
    node: &str,
    adj: &BTreeMap<&str, Vec<&'e EdgeKey>>,
    on_path: &mut Vec<&'e str>,
    path: &mut Vec<&'e EdgeKey>,
) -> bool {
    if path.len() > 64 {
        return false; // workspace graphs are tiny; bound pathological input
    }
    if let Some(outs) = adj.get(node) {
        for e in outs {
            if on_path.contains(&e.inner.as_str()) {
                path.push(e);
                return true;
            }
            on_path.push(e.inner.as_str());
            path.push(e);
            if dfs(&e.inner, adj, on_path, path) {
                return true;
            }
            path.pop();
            on_path.pop();
        }
    }
    false
}

// ---------------------------------------------------------------------------
// R9: atomic-ordering-justified
// ---------------------------------------------------------------------------

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
const COUNTER_METHODS: &[&str] = &["fetch_add", "fetch_sub"];

/// Runs the R9 analysis: every `Ordering::X` site needs either the
/// Relaxed-counter exemption or an `// ordering:` comment.
pub fn check_atomic_orderings(files: &[SourceFile], out: &mut Vec<Violation>) {
    // Pass 1: atomics that are counters (receivers of fetch_add/sub).
    let mut counters: HashSet<String> = HashSet::new();
    for f in files {
        if is_shim(f) {
            continue;
        }
        let toks = &f.lexed.toks;
        for i in 2..toks.len() {
            if toks[i].kind == TokKind::Ident
                && COUNTER_METHODS.contains(&toks[i].text.as_str())
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                && toks[i - 2].kind == TokKind::Ident
            {
                counters.insert(toks[i - 2].text.clone());
            }
        }
    }
    // Pass 2: audit every Ordering::X site.
    for f in files {
        if is_shim(f) || is_test_path(&f.rel_path) {
            continue;
        }
        let toks = &f.lexed.toks;
        let mut flagged_lines: HashSet<u32> = HashSet::new();
        for i in 0..toks.len() {
            if !toks[i].is_ident("Ordering")
                || !toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                || !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            {
                continue;
            }
            let Some(ord) = toks.get(i + 3) else { continue };
            if !ATOMIC_ORDERINGS.contains(&ord.text.as_str()) || f.in_test(i) {
                continue;
            }
            // Find the enclosing call: scan back for the unmatched `(`.
            let mut depth = 0i32;
            let mut method: Option<&str> = None;
            let mut receiver: Option<&str> = None;
            let mut in_use = false;
            let mut k = i;
            while k > 0 {
                k -= 1;
                let t = &toks[k];
                if t.is_punct(')') || t.is_punct(']') {
                    depth += 1;
                } else if t.is_punct('(') || t.is_punct('[') {
                    if depth == 0 {
                        if t.is_punct('(') && k > 0 && toks[k - 1].kind == TokKind::Ident {
                            method = Some(&toks[k - 1].text);
                            if k > 2
                                && toks[k - 2].is_punct('.')
                                && toks[k - 3].kind == TokKind::Ident
                            {
                                receiver = Some(&toks[k - 3].text);
                            }
                        }
                        break;
                    }
                    depth -= 1;
                } else if t.is_punct(';') && depth == 0 {
                    break;
                } else if t.is_ident("use") {
                    in_use = true;
                    break;
                }
            }
            if in_use {
                continue; // `use std::sync::atomic::Ordering::…`
            }
            let counter_site = method.is_some_and(|m| COUNTER_METHODS.contains(&m))
                || receiver.is_some_and(|r| counters.contains(r));
            if ord.text == "Relaxed" && counter_site {
                continue;
            }
            let line = ord.line;
            let commented =
                (line.saturating_sub(2)..=line).any(|l| f.ordering_lines.contains(&l));
            if commented || !flagged_lines.insert(line) {
                continue;
            }
            let message = if ord.text == "Relaxed" {
                format!(
                    "`Ordering::Relaxed`{} on a non-counter atomic needs an `// ordering:` \
                     comment (why is no cross-thread ordering required here?)",
                    receiver.map(|r| format!(" on `{r}`")).unwrap_or_default()
                )
            } else {
                format!(
                    "`Ordering::{}`{} needs an `// ordering:` comment naming the \
                     store/load it pairs with",
                    ord.text,
                    method.map(|m| format!(" in `{m}`")).unwrap_or_default()
                )
            };
            out.push(Violation {
                file: f.rel_path.clone(),
                line,
                rule: ATOMIC_ORDERING_JUSTIFIED,
                message,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Token-stream parsing helpers
// ---------------------------------------------------------------------------

fn parse_fields(toks: &[Tok]) -> Vec<FieldInfo> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::DocComment {
            i += 1;
            continue;
        }
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            i = matching_close(toks, i + 1, '[', ']').map_or(toks.len(), |c| c + 1);
            continue;
        }
        if toks[i].is_ident("pub") {
            i += 1;
            if i < toks.len() && toks[i].is_punct('(') {
                i = matching_close(toks, i, '(', ')').map_or(toks.len(), |c| c + 1);
            }
            continue;
        }
        // Field: `name : type , …`
        if toks[i].kind == TokKind::Ident && toks.get(i + 1).is_some_and(|t| t.is_punct(':')) {
            let name = toks[i].text.clone();
            let mut j = i + 2;
            let mut depth = 0i32;
            let mut type_idents = Vec::new();
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')')
                    || t.is_punct(']')
                    // `>` closes a generic unless it is the `->` arrow.
                    || (t.is_punct('>') && !toks[j - 1].is_punct('-'))
                {
                    depth -= 1;
                } else if t.is_punct(',') && depth <= 0 {
                    break;
                } else if t.kind == TokKind::Ident {
                    type_idents.push(t.text.clone());
                }
                j += 1;
            }
            let is_lock = type_idents.iter().any(|t| t == "Mutex" || t == "RwLock");
            out.push(FieldInfo { name, type_idents, is_lock });
            i = j + 1;
            continue;
        }
        i += 1;
    }
    out
}

fn parse_params(toks: &[Tok]) -> Vec<(String, Vec<String>)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut j = i;
        let mut depth = 0i32;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')')
                || t.is_punct(']')
                // `>` closes a generic unless it is the `->` arrow.
                || (t.is_punct('>') && j > 0 && !toks[j - 1].is_punct('-'))
            {
                depth -= 1;
            } else if t.is_punct(',') && depth <= 0 {
                break;
            }
            j += 1;
        }
        let param = &toks[i..j];
        if let Some(colon) = param.iter().position(|t| t.is_punct(':')) {
            let name = param[..colon]
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident && !t.is_ident("mut") && !t.is_ident("ref"))
                .map(|t| t.text.clone());
            if let Some(name) = name {
                let tys = param[colon + 1..]
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone())
                    .collect();
                out.push((name, tys));
            }
        }
        i = j + 1;
    }
    out
}

/// True when the `impl` at `i` starts an item (not `-> impl Trait`).
fn impl_item_position(toks: &[Tok], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let p = &toks[i - 1];
    p.is_punct('}')
        || p.is_punct(';')
        || p.is_punct(']')
        || p.is_ident("unsafe")
        || p.kind == TokKind::DocComment
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_conc(files: &[(&str, &str)], order: Option<&str>) -> Vec<Violation> {
        let sfs: Vec<SourceFile> =
            files.iter().map(|(p, s)| SourceFile::new(*p, s)).collect();
        let lo = order.map(|t| LockOrder::parse(t).expect("fixture lock-order parses"));
        let mut out = Vec::new();
        check_concurrency(&sfs, lo.as_ref(), &mut out);
        for f in &sfs {
            out.retain(|v| v.file != f.rel_path || !f.allowed(v.rule, v.line));
        }
        out
    }

    fn run_r9(files: &[(&str, &str)]) -> Vec<Violation> {
        let sfs: Vec<SourceFile> =
            files.iter().map(|(p, s)| SourceFile::new(*p, s)).collect();
        let mut out = Vec::new();
        check_atomic_orderings(&sfs, &mut out);
        for f in &sfs {
            out.retain(|v| v.file != f.rel_path || !f.allowed(v.rule, v.line));
        }
        out
    }

    const ORDER_AB: &str = "version = 1\norder = [\"S.a\", \"S.b\"]\n";

    const TWO_LOCKS: &str = r#"
use std::sync::Mutex;
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    pub fn forward(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }
}
"#;

    #[test]
    fn lock_order_toml_round_trip() {
        let lo =
            LockOrder::parse("version = 1\norder = [\n  \"A.x\",\n  \"B.y\",\n]\n").unwrap();
        assert_eq!(lo.order, ["A.x", "B.y"]);
        assert_eq!(lo.position("A.x"), Some(0));
        assert_eq!(lo.position("C.z"), None);
        // Inline arrays and comments parse too.
        let lo =
            LockOrder::parse("# header\nversion = 1\norder = [\"A.x\", \"B.y\"] # tail\n")
                .unwrap();
        assert_eq!(lo.order, ["A.x", "B.y"]);
    }

    #[test]
    fn lock_order_toml_rejects_bad_input() {
        assert!(LockOrder::parse("order = [\"A.x\"]\n").is_err(), "missing version");
        assert!(LockOrder::parse("version = 2\norder = []\n").is_err(), "bad version");
        assert!(
            LockOrder::parse("version = 1\norder = [\"A.x\", \"A.x\"]\n").is_err(),
            "duplicate class"
        );
        assert!(
            LockOrder::parse("version = 1\norder = [\n\"A.x\",\n").is_err(),
            "unterminated"
        );
        assert!(LockOrder::parse("version = 1\nbogus = 3\n").is_err(), "unknown directive");
    }

    #[test]
    fn r7_nesting_in_declared_order_is_clean() {
        let v = run_conc(&[("crates/x/src/a.rs", TWO_LOCKS)], Some(ORDER_AB));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r7_flags_nesting_against_declared_order() {
        let order = "version = 1\norder = [\"S.b\", \"S.a\"]\n";
        let v = run_conc(&[("crates/x/src/a.rs", TWO_LOCKS)], Some(order));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, LOCK_ORDER);
        assert!(v[0].message.contains("places `S.b` before `S.a`"), "{}", v[0].message);
        assert_eq!(v[0].line, 7);
    }

    #[test]
    fn r7_flags_undeclared_classes_and_missing_toml() {
        let only_a = "version = 1\norder = [\"S.a\"]\n";
        let v = run_conc(&[("crates/x/src/a.rs", TWO_LOCKS)], Some(only_a));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("`S.b` is not declared"), "{}", v[0].message);

        let v = run_conc(&[("crates/x/src/a.rs", TWO_LOCKS)], None);
        assert!(!v.is_empty());
        assert!(v[0].message.contains("no lock-order.toml"), "{}", v[0].message);
    }

    #[test]
    fn r7_detects_cycles_across_files() {
        let back = r#"
use roulette::S;
pub fn backward(s: &S) {
    let gb = s.b.lock();
    let ga = s.a.lock();
    drop(ga);
    drop(gb);
}
"#;
        let v = run_conc(
            &[("crates/x/src/a.rs", TWO_LOCKS), ("crates/x/src/b.rs", back)],
            Some(ORDER_AB),
        );
        // The backward nesting violates the order, and the combined graph
        // carries an explicit cycle report.
        assert!(
            v.iter().any(|x| x.message.contains("places `S.a` before `S.b`")),
            "{v:?}"
        );
        assert!(v.iter().any(|x| x.message.contains("cycle")), "{v:?}");
    }

    #[test]
    fn r7_flags_reentrant_acquisition() {
        let src = r#"
use std::sync::Mutex;
pub struct S { a: Mutex<u32> }
impl S {
    pub fn twice(&self) {
        let g1 = self.a.lock();
        let g2 = self.a.lock();
        drop(g2);
        drop(g1);
    }
}
"#;
        let v =
            run_conc(&[("crates/x/src/a.rs", src)], Some("version = 1\norder = [\"S.a\"]\n"));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("reentrant"), "{}", v[0].message);
    }

    #[test]
    fn r7_sees_nesting_through_guard_returning_helpers_across_files() {
        let def = r#"
use std::sync::{Mutex, MutexGuard};
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    pub fn lock_a(&self) -> MutexGuard<'_, u32> {
        match self.a.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}
"#;
        let user = r#"
use roulette::S;
pub fn nested(s: &S) {
    let ga = s.lock_a();
    let gb = s.b.lock();
    drop(gb);
    drop(ga);
}
"#;
        let files = [("crates/x/src/def.rs", def), ("crates/x/src/user.rs", user)];
        assert!(run_conc(&files, Some(ORDER_AB)).is_empty());
        let rev = "version = 1\norder = [\"S.b\", \"S.a\"]\n";
        let v = run_conc(&files, Some(rev));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].file.ends_with("user.rs"));
    }

    #[test]
    fn r7_sees_nesting_through_callee_effects() {
        let callee = r#"
use std::sync::Mutex;
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    pub fn touch_b(&self) {
        let g = self.b.lock();
        drop(g);
    }
}
"#;
        let caller = r#"
use roulette::S;
pub fn outer(s: &S) {
    let ga = s.a.lock();
    s.touch_b();
    drop(ga);
}
"#;
        let files = [("crates/x/src/callee.rs", callee), ("crates/x/src/caller.rs", caller)];
        assert!(run_conc(&files, Some(ORDER_AB)).is_empty());
        let v = run_conc(&files, Some("version = 1\norder = [\"S.b\", \"S.a\"]\n"));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("via `touch_b()`"), "{}", v[0].message);
    }

    #[test]
    fn r7_temp_guard_in_call_arguments_is_held_across_the_call() {
        let src = r#"
use std::sync::{Mutex, MutexGuard};
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn consume(&self, g: &MutexGuard<'_, u32>) {
        let gb = self.b.lock();
        drop(gb);
    }
    pub fn outer(&self) {
        self.consume(&self.a.lock());
    }
}
"#;
        let v = run_conc(
            &[("crates/x/src/a.rs", src)],
            Some("version = 1\norder = [\"S.b\", \"S.a\"]\n"),
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("via `consume()`"), "{}", v[0].message);
        assert!(run_conc(&[("crates/x/src/a.rs", src)], Some(ORDER_AB)).is_empty());
    }

    #[test]
    fn r7_drop_releases_the_guard() {
        let src = r#"
use std::sync::Mutex;
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    pub fn sequential(&self) {
        let ga = self.a.lock();
        drop(ga);
        let gb = self.b.lock();
        drop(gb);
    }
}
"#;
        // Even with the order reversed there is no nesting to flag.
        let v = run_conc(
            &[("crates/x/src/a.rs", src)],
            Some("version = 1\norder = [\"S.b\", \"S.a\"]\n"),
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r7_scoped_guards_do_not_leak_out_of_their_block() {
        let src = r#"
use std::sync::Mutex;
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    pub fn scoped(&self, xs: &[u32]) {
        for _x in xs {
            let ga = self.a.lock();
            drop(ga);
        }
        let gb = self.b.lock();
        drop(gb);
    }
}
"#;
        let v = run_conc(
            &[("crates/x/src/a.rs", src)],
            Some("version = 1\norder = [\"S.b\", \"S.a\"]\n"),
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r7_guard_bound_after_a_block_statement_is_tracked() {
        // A `for … { }` statement followed by `let g = lock()` must not
        // swallow the binding: the nesting below has to be seen.
        let src = r#"
use std::sync::Mutex;
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    pub fn after_loop(&self, xs: &[u32]) {
        for _x in xs {
        }
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }
}
"#;
        let v = run_conc(
            &[("crates/x/src/a.rs", src)],
            Some("version = 1\norder = [\"S.b\", \"S.a\"]\n"),
        );
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn r7_lint_allow_suppresses_a_site() {
        let src = r#"
use std::sync::Mutex;
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    pub fn forward(&self) {
        let ga = self.a.lock();
        // lint:allow(lock-order) — instances are ordered by address here
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }
}
"#;
        let v = run_conc(
            &[("crates/x/src/a.rs", src)],
            Some("version = 1\norder = [\"S.b\", \"S.a\"]\n"),
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r7_test_code_is_exempt() {
        let src = r#"
use std::sync::Mutex;
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
#[cfg(test)]
mod tests {
    use super::S;
    #[test]
    fn nested() {
        let s = S { a: Mutex::new(0), b: Mutex::new(0) };
        let gb = s.b.lock();
        let ga = s.a.lock();
        drop(ga);
        drop(gb);
    }
}
"#;
        assert!(run_conc(&[("crates/x/src/a.rs", src)], Some(ORDER_AB)).is_empty());
        // The same nesting in a tests/ file is also exempt.
        let decl = "use std::sync::Mutex;\npub struct S { a: Mutex<u32>, b: Mutex<u32> }\n";
        let race = "use roulette::S;\nfn f(s: &S) { let gb = s.b.lock(); let ga = s.a.lock(); \
                    drop(ga); drop(gb); }\n";
        let v = run_conc(
            &[("crates/x/src/a.rs", decl), ("tests/race.rs", race)],
            Some(ORDER_AB),
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r8_flags_blocking_calls_under_a_guard() {
        let src = r#"
use std::sync::Mutex;
use std::sync::mpsc::Receiver;
pub struct Q { state: Mutex<u32> }
impl Q {
    pub fn wait_bad(&self, rx: &Receiver<u32>) {
        let g = self.state.lock();
        let _ = rx.recv();
        drop(g);
    }
    pub fn wait_ok(&self, rx: &Receiver<u32>) {
        let v = rx.recv();
        let g = self.state.lock();
        drop(g);
        let _ = v;
    }
}
"#;
        let v = run_conc(
            &[("crates/x/src/q.rs", src)],
            Some("version = 1\norder = [\"Q.state\"]\n"),
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, NO_BLOCKING_WHILE_LOCKED);
        assert!(v[0].message.contains("recv"), "{}", v[0].message);
        assert!(v[0].message.contains("Q.state"), "{}", v[0].message);
    }

    #[test]
    fn r8_arity_disambiguates_join_and_propagates_through_calls() {
        let src = r#"
use std::sync::Mutex;
use std::path::Path;
pub struct Q { state: Mutex<u32> }
fn blocks_inside(h: std::thread::JoinHandle<()>) {
    let _ = h.join();
}
impl Q {
    pub fn path_join_is_fine(&self, p: &Path) {
        let g = self.state.lock();
        let _ = p.join("subdir");
        drop(g);
    }
    pub fn transitive_bad(&self, h: std::thread::JoinHandle<()>) {
        let g = self.state.lock();
        blocks_inside(h);
        drop(g);
    }
}
"#;
        let v = run_conc(
            &[("crates/x/src/q.rs", src)],
            Some("version = 1\norder = [\"Q.state\"]\n"),
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("via `blocks_inside()"), "{}", v[0].message);
    }

    #[test]
    fn r8_condvar_wait_is_not_blocking() {
        // Condvar::wait takes the guard and releases it — the admission
        // queue's pop_batch depends on this not being flagged.
        let src = r#"
use std::sync::{Condvar, Mutex};
pub struct Q { state: Mutex<u32>, ready: Condvar }
impl Q {
    pub fn pop(&self) {
        let mut g = match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        loop {
            g = match self.ready.wait(g) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            if *g > 0 {
                break;
            }
        }
        drop(g);
    }
}
"#;
        let v = run_conc(
            &[("crates/x/src/q.rs", src)],
            Some("version = 1\norder = [\"Q.state\"]\n"),
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r9_flags_unjustified_orderings_and_honors_comments() {
        let src = r#"
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
pub struct C {
    hits: AtomicU64,
    stop: AtomicBool,
}
impl C {
    pub fn work(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        let _ = self.hits.load(Ordering::Relaxed);
        self.stop.store(true, Ordering::Release);
        // ordering: pairs with the Release store in work()
        let _ = self.stop.load(Ordering::Acquire);
        let x = 1;
        let _ = x;
        let _ = self.stop.load(Ordering::Acquire);
    }
}
"#;
        let v = run_r9(&[("crates/x/src/c.rs", src)]);
        // fetch_add Relaxed: exempt. load on `hits` (a counter): exempt.
        // Release store: flagged. First Acquire: commented (same-line-or-
        // two-above window, like SAFETY). Second: flagged.
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == ATOMIC_ORDERING_JUSTIFIED));
        assert!(v[0].message.contains("Release"), "{}", v[0].message);
        assert_eq!(v[1].line, 16);
    }

    #[test]
    fn r9_flags_relaxed_on_non_counter_atomics() {
        let src = r#"
use std::sync::atomic::{AtomicBool, Ordering};
pub struct F { closed: AtomicBool }
impl F {
    pub fn check(&self) -> bool {
        self.closed.load(Ordering::Relaxed)
    }
}
"#;
        let v = run_r9(&[("crates/x/src/f.rs", src)]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("non-counter"), "{}", v[0].message);
    }

    #[test]
    fn r9_skips_tests_shims_and_use_statements() {
        let src = r#"
use std::sync::atomic::Ordering;
#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};
    #[test]
    fn t() {
        let a = AtomicU32::new(0);
        a.store(1, Ordering::SeqCst);
    }
}
"#;
        assert!(run_r9(&[("crates/x/src/t.rs", src)]).is_empty());
        let raw = "pub fn f(a: &std::sync::atomic::AtomicU32) { a.store(1, Ordering::SeqCst); }";
        assert!(run_r9(&[("shims/x/src/lib.rs", raw)]).is_empty());
        assert!(run_r9(&[("crates/x/benches/b.rs", raw)]).is_empty());
    }

    #[test]
    fn r9_one_violation_per_line_covers_compare_exchange() {
        let src = r#"
use std::sync::atomic::{AtomicU32, Ordering};
pub fn cas(a: &AtomicU32) {
    let _ = a.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire);
}
"#;
        let v = run_r9(&[("crates/x/src/c.rs", src)]);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn shims_are_outside_the_concurrency_model() {
        // A shim Mutex with an `inner` field must not alias workspace
        // classes or produce violations of its own.
        let shim = r#"
pub struct Mutex<T> { inner: std::sync::Mutex<T> }
impl<T> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock();
        MutexGuard { g }
    }
}
"#;
        let v = run_conc(&[("shims/parking_lot/src/lib.rs", shim)], None);
        assert!(v.is_empty(), "{v:?}");
    }
}
