//! A small hand-rolled Rust lexer.
//!
//! The linter must never report a match found inside a string literal, a
//! character literal, or a comment, and must survive the syntax that trips
//! up regex-based scanners: raw strings with arbitrary hash fences, nested
//! block comments, byte strings, raw identifiers, and the `'a` lifetime vs
//! `'a'` char-literal ambiguity. This lexer resolves all of those and
//! produces a flat token stream with line numbers, plus a side list of
//! non-doc comments (the linter reads those for `// SAFETY:` and
//! `// lint:allow(...)` annotations).
//!
//! It is deliberately *not* a full lexer: multi-character operators come
//! out as single-character [`TokKind::Punct`] tokens and numeric suffixes
//! are folded into the number text. The rules only need identifier and
//! punctuation adjacency, so this keeps the lexer small and obviously
//! correct.

/// What kind of token a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, with the `r#`
    /// prefix stripped so `r#fn` compares equal to `fn`).
    Ident,
    /// A lifetime such as `'a` (quote included in the text).
    Lifetime,
    /// Integer or float literal, suffix included.
    Num,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`); the text
    /// is the raw source slice, quotes and fences included.
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation character.
    Punct,
    /// Doc comment (`///`, `//!`, `/** */`, `/*! */`), full text kept.
    DocComment,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Source text (see [`TokKind`] for per-kind conventions).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// True when the token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes() == [c as u8]
    }

    /// True when the token is exactly the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// A non-doc comment (`//` or `/* */`), kept out of the token stream.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line on which the comment starts.
    pub line: u32,
    /// 1-based line on which the comment ends (equal to `line` for `//`).
    pub end_line: u32,
    /// Full comment text including the delimiters.
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub toks: Vec<Tok>,
    /// Plain comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Unterminated literals and comments are tolerated (the
/// remainder of the file is swallowed into the open token) so the linter
/// degrades gracefully on code that would not compile anyway.
pub fn lex(src: &str) -> Lexed {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Lexed {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos),
                b'\'' => self.quote(),
                b'r' | b'b' if self.raw_or_byte_prefix() => {}
                _ if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => self.ident(),
                _ if c.is_ascii_digit() => self.number(),
                _ => {
                    self.push(TokKind::Punct, (c as char).to_string(), self.line);
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.toks.push(Tok { kind, text, line });
    }

    fn text(&self, from: usize, to: usize) -> String {
        String::from_utf8_lossy(&self.src[from..to]).into_owned()
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        let text = self.text(start, self.pos);
        // `///` and `//!` are doc comments; `////…` is a plain comment again.
        let is_doc = (text.starts_with("///") && !text.starts_with("////"))
            || text.starts_with("//!");
        if is_doc {
            self.push(TokKind::DocComment, text, line);
        } else {
            self.out.comments.push(Comment { line, end_line: line, text });
        }
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                if self.src[self.pos] == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
        let text = self.text(start, self.pos);
        // `/** … */` and `/*! … */` are doc comments; `/***/` and `/**/` are
        // not (the canonical degenerate forms).
        let is_doc = (text.starts_with("/**") && !text.starts_with("/***") && text.len() > 4)
            || text.starts_with("/*!");
        if is_doc {
            self.push(TokKind::DocComment, text, line);
        } else {
            self.out.comments.push(Comment { line, end_line: self.line, text });
        }
    }

    /// Ordinary (escaped) string literal starting at the opening quote;
    /// `start` may precede `self.pos` when a `b` prefix was consumed.
    fn string(&mut self, start: usize) {
        let line = self.line;
        self.pos += 1; // opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokKind::Str, self.text(start, self.pos.min(self.src.len())), line);
    }

    /// Raw string starting at the first `#` or `"` after the `r` prefix.
    fn raw_string(&mut self, start: usize) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        let closer: Vec<u8> =
            std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'"' && self.src[self.pos..].starts_with(&closer) {
                self.pos += closer.len();
                break;
            }
            if self.src[self.pos] == b'\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
        self.push(TokKind::Str, self.text(start, self.pos.min(self.src.len())), line);
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#`, and raw
    /// identifiers `r#ident`. Returns true when it consumed something.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let c = self.src[self.pos];
        let start = self.pos;
        if c == b'r' {
            match self.peek(1) {
                Some(b'"') => {
                    self.pos += 1;
                    self.raw_string(start);
                    return true;
                }
                Some(b'#') => {
                    // `r#"` / `r##"` … raw string; `r#ident` raw identifier.
                    let mut i = 1;
                    while self.peek(i) == Some(b'#') {
                        i += 1;
                    }
                    if self.peek(i) == Some(b'"') {
                        self.pos += 1;
                        self.raw_string(start);
                        return true;
                    }
                    if i == 1 {
                        self.pos += 2; // consume `r#`, lex the rest as an ident
                        self.ident();
                        return true;
                    }
                    return false;
                }
                _ => return false,
            }
        }
        // c == b'b'
        match self.peek(1) {
            Some(b'"') => {
                self.pos += 1;
                self.string(start);
                true
            }
            Some(b'\'') => {
                self.pos += 1;
                self.quote();
                // Rewrite the just-pushed token to include the `b` prefix.
                if let Some(t) = self.out.toks.last_mut() {
                    if t.kind == TokKind::Char {
                        t.text.insert(0, 'b');
                    }
                }
                true
            }
            Some(b'r') if matches!(self.peek(2), Some(b'"') | Some(b'#')) => {
                self.pos += 2;
                self.raw_string(start);
                true
            }
            _ => false,
        }
    }

    /// A `'`: either a char literal or a lifetime.
    fn quote(&mut self) {
        let start = self.pos;
        let line = self.line;
        match self.peek(1) {
            // `'\n'`, `'\''`, `'\u{1F600}'` — escaped char literal.
            Some(b'\\') => {
                self.pos += 2;
                while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                    self.pos += 1;
                }
                self.pos = (self.pos + 1).min(self.src.len());
                self.push(TokKind::Char, self.text(start, self.pos), line);
            }
            // `'x'` — any single char followed by a closing quote. Checking
            // the third byte distinguishes this from the lifetime `'x`.
            _ if self.peek(2) == Some(b'\'') && self.peek(1) != Some(b'\'') => {
                self.pos += 3;
                self.push(TokKind::Char, self.text(start, self.pos), line);
            }
            // `'abc` — lifetime (or a stray quote; emit it as punct).
            Some(c) if c == b'_' || c.is_ascii_alphabetic() => {
                self.pos += 1;
                let id_start = self.pos;
                self.consume_ident_chars();
                let text = format!("'{}", self.text(id_start, self.pos));
                self.push(TokKind::Lifetime, text, line);
            }
            _ => {
                self.pos += 1;
                self.push(TokKind::Punct, "'".into(), line);
            }
        }
    }

    fn consume_ident_chars(&mut self) {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80 {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn ident(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.consume_ident_chars();
        self.push(TokKind::Ident, self.text(start, self.pos), line);
    }

    fn number(&mut self) {
        let start = self.pos;
        let line = self.line;
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else if c == b'.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                // `1.5` continues the number; `1..n` and `1.max(2)` do not.
                self.pos += 1;
            } else if (c == b'+' || c == b'-')
                && matches!(self.src[self.pos - 1], b'e' | b'E')
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                // Exponent sign in `1e-3`.
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push(TokKind::Num, self.text(start, self.pos), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).toks.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_punct() {
        let t = kinds("let x = a.unwrap();");
        assert_eq!(t[0], (TokKind::Ident, "let".into()));
        assert_eq!(t[3], (TokKind::Ident, "a".into()));
        assert_eq!(t[4], (TokKind::Punct, ".".into()));
        assert_eq!(t[5], (TokKind::Ident, "unwrap".into()));
    }

    #[test]
    fn string_contents_are_opaque() {
        let t = kinds(r#"let s = "x.unwrap() // not a comment";"#);
        assert!(t.iter().all(|(k, txt)| *k != TokKind::Ident || txt != "unwrap"));
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r####"let s = r##"contains "# and unwrap()"##; after"####;
        let t = kinds(src);
        assert!(t.iter().any(|(k, txt)| *k == TokKind::Str && txt.contains("unwrap")));
        assert!(t.iter().any(|(_, txt)| txt == "after"));
        assert!(!t.iter().any(|(k, txt)| *k == TokKind::Ident && txt == "unwrap"));
    }

    #[test]
    fn raw_identifiers_strip_prefix() {
        let t = kinds("fn r#match() {}");
        assert!(t.iter().any(|(k, txt)| *k == TokKind::Ident && txt == "match"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* outer /* inner unwrap() */ still comment */ b");
        let idents: Vec<_> =
            l.toks.iter().filter(|t| t.kind == TokKind::Ident).map(|t| &t.text).collect();
        assert_eq!(idents, ["a", "b"]);
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner unwrap()"));
    }

    #[test]
    fn char_vs_lifetime() {
        let t = kinds(r"fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(t.iter().any(|(k, txt)| *k == TokKind::Lifetime && txt == "'a"));
        assert!(t.iter().any(|(k, txt)| *k == TokKind::Char && txt == "'x'"));
    }

    #[test]
    fn escaped_char_literals() {
        let t = kinds(r"let c = '\''; let n = '\n'; let u = '\u{1F600}';");
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Char).count(), 3);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let t = kinds(r##"let b = b"unwrap"; let c = b'\n'; let r = br#"x"#;"##);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 2);
        assert!(t.iter().any(|(k, txt)| *k == TokKind::Char && txt.starts_with('b')));
    }

    #[test]
    fn doc_comments_enter_stream_plain_comments_do_not() {
        let l = lex("/// doc\n// plain\nfn f() {}\n//! inner\n//// four slashes");
        let docs: Vec<_> = l.toks.iter().filter(|t| t.kind == TokKind::DocComment).collect();
        assert_eq!(docs.len(), 2);
        assert_eq!(l.comments.len(), 2);
    }

    #[test]
    fn line_numbers_follow_multiline_tokens() {
        let src = "let a = \"line\n|break\";\nlet b = 1;";
        let l = lex(src);
        let b = l.toks.iter().find(|t| t.is_ident("b")).map(|t| t.line);
        assert_eq!(b, Some(3));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let t = kinds("for i in 0..10 { 1.max(2); 1.5e-3; }");
        assert!(t.iter().any(|(k, txt)| *k == TokKind::Num && txt == "0"));
        assert!(t.iter().any(|(k, txt)| *k == TokKind::Ident && txt == "max"));
        assert!(t.iter().any(|(k, txt)| *k == TokKind::Num && txt == "1.5e-3"));
    }
}
