//! The rule set and the per-file analysis context.
//!
//! Nine rules, each enforcing one workspace invariant:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `no-panic-hot-path` | the episode loop cannot reach a panic site |
//! | `unsafe-needs-safety-comment` | `unsafe` is justified or forbidden |
//! | `no-stdout-in-libs` | library crates never write to stdout/stderr |
//! | `shim-surface-drift` | shims export only what the workspace uses |
//! | `config-docs` | every public `EngineConfig` field is documented |
//! | `no-alloc-in-episode-loop` | `// lint: hot-loop` regions never allocate |
//! | `lock-order` | nested lock acquisitions follow `lock-order.toml` |
//! | `no-blocking-while-locked` | no indefinite blocking while a guard is live |
//! | `atomic-ordering-justified` | atomic orderings carry `// ordering:` comments |
//!
//! R1–R6 are per-file; R7–R9 are the cross-file concurrency analysis in
//! [`crate::conc`].
//!
//! Rules operate on the token stream of [`crate::lexer`], so matches inside
//! strings, chars, and comments are structurally impossible. Violations can
//! be suppressed at a site with `// lint:allow(<rule>)` on the same line or
//! the line above, or frozen wholesale in `lint-baseline.toml`.

use crate::lexer::{lex, Lexed, Tok, TokKind};
use crate::report::{Severity, Violation};
use std::collections::{HashMap, HashSet};

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Kebab-case rule name, used in `lint:allow(...)` and the baseline.
    pub name: &'static str,
    /// Default severity (the CLI can demote a rule to warn).
    pub severity: Severity,
    /// One-line summary for `roulette-lint rules`.
    pub summary: &'static str,
}

/// Rule R1.
pub const NO_PANIC_HOT_PATH: &str = "no-panic-hot-path";
/// Rule R2.
pub const UNSAFE_NEEDS_SAFETY_COMMENT: &str = "unsafe-needs-safety-comment";
/// Rule R3.
pub const NO_STDOUT_IN_LIBS: &str = "no-stdout-in-libs";
/// Rule R4.
pub const SHIM_SURFACE_DRIFT: &str = "shim-surface-drift";
/// Rule R5.
pub const CONFIG_DOCS: &str = "config-docs";
/// Rule R6.
pub const NO_ALLOC_IN_EPISODE_LOOP: &str = "no-alloc-in-episode-loop";
/// Rule R7.
pub const LOCK_ORDER: &str = "lock-order";
/// Rule R8.
pub const NO_BLOCKING_WHILE_LOCKED: &str = "no-blocking-while-locked";
/// Rule R9.
pub const ATOMIC_ORDERING_JUSTIFIED: &str = "atomic-ordering-justified";

/// The rule registry, in R1..R9 order.
pub const RULES: &[Rule] = &[
    Rule {
        name: NO_PANIC_HOT_PATH,
        severity: Severity::Deny,
        summary: "unwrap/expect/panic!/unreachable!/todo!/unimplemented! and direct \
                  indexing are banned in hot-path modules outside #[cfg(test)]",
    },
    Rule {
        name: UNSAFE_NEEDS_SAFETY_COMMENT,
        severity: Severity::Deny,
        summary: "every `unsafe` needs a `// SAFETY:` comment; crates without unsafe \
                  must declare #![forbid(unsafe_code)]",
    },
    Rule {
        name: NO_STDOUT_IN_LIBS,
        severity: Severity::Deny,
        summary: "println!/print!/eprintln!/eprint!/dbg! are banned in library crates \
                  (bench, bins, examples, and tests exempt)",
    },
    Rule {
        name: SHIM_SURFACE_DRIFT,
        severity: Severity::Deny,
        summary: "every pub item a shim exports must be referenced from the workspace",
    },
    Rule {
        name: CONFIG_DOCS,
        severity: Severity::Deny,
        summary: "every public EngineConfig field must carry a doc comment",
    },
    Rule {
        name: NO_ALLOC_IN_EPISODE_LOOP,
        severity: Severity::Deny,
        summary: "Vec::new/vec![/.clone()/.to_vec() are banned inside `// lint: hot-loop` \
                  regions of hot-path modules; draw from the EpisodeScratch arena instead",
    },
    Rule {
        name: LOCK_ORDER,
        severity: Severity::Deny,
        summary: "nested lock acquisitions (direct or through calls) must follow the \
                  canonical order declared in lock-order.toml, and the inferred \
                  acquisition graph must be acyclic",
    },
    Rule {
        name: NO_BLOCKING_WHILE_LOCKED,
        severity: Severity::Deny,
        summary: "recv/recv_timeout/join/sleep/accept/socket reads and writes are banned \
                  while any Mutex/RwLock guard is live in non-test code",
    },
    Rule {
        name: ATOMIC_ORDERING_JUSTIFIED,
        severity: Severity::Deny,
        summary: "every non-Relaxed atomic ordering (and Relaxed on non-counter atomics) \
                  needs an `// ordering:` comment naming the access it pairs with",
    },
];

/// Looks up a rule by name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// Modules whose panics would take down the shared global plan: the eddy's
/// episode loop and everything it calls per vector. Paths are
/// workspace-relative.
pub const HOT_PATHS: &[&str] = &[
    "crates/exec/src/episode.rs",
    "crates/exec/src/stem.rs",
    "crates/exec/src/engine.rs",
    "crates/exec/src/output.rs",
    // The scratch arena and the pooled vector both live inside the episode
    // loop: every buffer they hand out is on the per-vector path.
    "crates/exec/src/scratch.rs",
    "crates/exec/src/vector.rs",
    // The kernel layer is the innermost loop of all: every episode's
    // filter, prune, compaction, and routing work funnels through it.
    "crates/exec/src/kernels/mod.rs",
    "crates/exec/src/kernels/scalar.rs",
    "crates/exec/src/kernels/wide.rs",
    "crates/exec/src/kernels/simd.rs",
    "crates/policy/src/qlearning.rs",
    "crates/core/src/relset.rs",
    "crates/core/src/queryset.rs",
    // Telemetry hooks run inside the episode loop; a panic in a recorder
    // is a panic in the engine.
    "crates/telemetry/src/events.rs",
    "crates/telemetry/src/histogram.rs",
    "crates/telemetry/src/metrics.rs",
    "crates/telemetry/src/recorder.rs",
    "crates/telemetry/src/sink.rs",
    // The serving layer multiplexes live client traffic into shared
    // sessions: a panic in a handler or the engine loop strands every
    // in-flight query on that path. Binaries (main.rs) stay exempt.
    "crates/server/src/lib.rs",
    "crates/server/src/admission.rs",
    "crates/server/src/http.rs",
    "crates/server/src/metrics.rs",
    "crates/server/src/protocol.rs",
    "crates/server/src/server.rs",
    "crates/server/src/workload.rs",
    "crates/loadgen/src/lib.rs",
    "crates/loadgen/src/client.rs",
    "crates/loadgen/src/stats.rs",
    // The streaming layer runs continuous sessions: a panic in the epoch
    // loop, the window clock, or the recovery meter kills a long-lived
    // stream mid-flight.
    "crates/stream/src/config.rs",
    "crates/stream/src/drift.rs",
    "crates/stream/src/driver.rs",
    "crates/stream/src/recovery.rs",
    "crates/stream/src/window.rs",
    "crates/stream/src/workload.rs",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const STDOUT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// Keywords that may directly precede `[` without forming an index
/// expression (`let [a, b] = …`, `&mut [T]`, `return [x]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "async", "await", "become", "box", "break", "const", "continue", "crate", "do",
    "dyn", "else", "enum", "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop",
    "macro", "match", "mod", "move", "mut", "pub", "ref", "return", "static", "struct",
    "super", "trait", "true", "type", "union", "unsafe", "use", "where", "while", "yield",
    "Self",
];

/// One lexed source file plus the derived facts every rule needs.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Token stream and comments.
    pub lexed: Lexed,
    /// Token-index ranges `[start, end)` covered by `#[cfg(test)]` (or a
    /// bare `#[test]`) items.
    pub test_spans: Vec<(usize, usize)>,
    /// `lint:allow(rule)` escapes: line → allowed rule names. An allow on
    /// line `L` suppresses violations on `L` and `L + 1`.
    pub allows: HashMap<u32, Vec<String>>,
    /// Lines covered by a comment (or doc comment) containing `SAFETY:`.
    pub safety_lines: HashSet<u32>,
    /// Lines covered by a comment (or doc comment) containing `ordering:`,
    /// the R9 justification marker.
    pub ordering_lines: HashSet<u32>,
}

/// Grows `marked` through every contiguous run of comment lines (`all`)
/// touching a marked line, in both directions.
fn extend_through_block(marked: &mut HashSet<u32>, all: &HashSet<u32>) {
    let seeds: Vec<u32> = marked.iter().copied().collect();
    for s in seeds {
        let mut l = s + 1;
        while all.contains(&l) && marked.insert(l) {
            l += 1;
        }
        let mut l = s.saturating_sub(1);
        while l > 0 && all.contains(&l) && marked.insert(l) {
            l -= 1;
        }
    }
}

impl SourceFile {
    /// Lexes `src` and precomputes test spans, allow escapes, and SAFETY
    /// comment lines.
    pub fn new(rel_path: impl Into<String>, src: &str) -> SourceFile {
        let lexed = lex(src);
        let test_spans = find_test_spans(&lexed.toks);
        let mut allows: HashMap<u32, Vec<String>> = HashMap::new();
        let mut safety_lines = HashSet::new();
        let mut ordering_lines = HashSet::new();
        for c in &lexed.comments {
            for rule in parse_allows(&c.text) {
                allows.entry(c.end_line).or_default().push(rule);
            }
            if c.text.contains("SAFETY:") {
                safety_lines.extend(c.line..=c.end_line);
            }
            if c.text.contains("ordering:") {
                ordering_lines.extend(c.line..=c.end_line);
            }
        }
        // A marker covers its whole contiguous run of line comments, not
        // just its own line: justification prose wraps, and the rule
        // windows measure from the block's last line.
        let comment_lines: HashSet<u32> =
            lexed.comments.iter().flat_map(|c| c.line..=c.end_line).collect();
        extend_through_block(&mut safety_lines, &comment_lines);
        extend_through_block(&mut ordering_lines, &comment_lines);
        for t in &lexed.toks {
            if t.kind == TokKind::DocComment {
                if t.text.contains("SAFETY:") {
                    safety_lines.insert(t.line);
                }
                if t.text.contains("ordering:") {
                    ordering_lines.insert(t.line);
                }
            }
        }
        SourceFile {
            rel_path: rel_path.into(),
            lexed,
            test_spans,
            allows,
            safety_lines,
            ordering_lines,
        }
    }

    /// True when token `idx` falls inside a `#[cfg(test)]` item.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| idx >= s && idx < e)
    }

    /// True when a `lint:allow(rule)` escape covers `line`.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.allows.get(l).is_some_and(|rs| rs.iter().any(|r| r == rule))
        })
    }

    fn toks(&self) -> &[Tok] {
        &self.lexed.toks
    }
}

/// Extracts rule names from every `lint:allow(a, b)` occurrence in a
/// comment.
fn parse_allows(comment: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(i) = rest.find("lint:allow(") {
        rest = &rest[i + "lint:allow(".len()..];
        if let Some(close) = rest.find(')') {
            out.extend(
                rest[..close]
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string),
            );
            rest = &rest[close + 1..];
        } else {
            break;
        }
    }
    out
}

/// Finds token spans covered by `#[cfg(test)]`-gated (or `#[test]`-gated)
/// items, so rules can skip test-only code.
fn find_test_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            let attr_end = match matching_close(toks, i + 1, '[', ']') {
                Some(e) => e,
                None => break,
            };
            let body = &toks[i + 2..attr_end];
            let has = |name: &str| body.iter().any(|t| t.is_ident(name));
            let is_test_attr =
                (has("cfg") && has("test")) || (body.len() == 1 && body[0].is_ident("test"));
            if is_test_attr {
                if let Some(end) = item_end(toks, attr_end + 1) {
                    spans.push((i, end));
                    i = end;
                    continue;
                }
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    spans
}

/// Given the index of an opening delimiter, returns the index of its
/// matching closer.
pub(crate) fn matching_close(toks: &[Tok], open: usize, oc: char, cc: char) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(oc) {
            depth += 1;
        } else if t.is_punct(cc) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Finds the end (exclusive token index) of the item starting at `from`:
/// skips further attributes and doc comments, then scans to the item's
/// closing `}` or to a top-level `;`.
fn item_end(toks: &[Tok], mut from: usize) -> Option<usize> {
    // Skip stacked attributes and doc comments on the item.
    loop {
        match toks.get(from) {
            Some(t) if t.kind == TokKind::DocComment => from += 1,
            Some(t) if t.is_punct('#') => {
                from = matching_close(toks, from + 1, '[', ']')? + 1;
            }
            _ => break,
        }
    }
    let mut j = from;
    let mut depth = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        } else if t.is_punct(';') && depth == 0 {
            return Some(j + 1);
        }
        j += 1;
    }
    Some(j)
}

/// R1: panics and direct indexing in hot-path modules.
pub fn check_no_panic_hot_path(file: &SourceFile, out: &mut Vec<Violation>) {
    if !HOT_PATHS.contains(&file.rel_path.as_str()) {
        return;
    }
    let toks = file.toks();
    for i in 0..toks.len() {
        if file.in_test(i) {
            continue;
        }
        let t = &toks[i];
        let prev = i.checked_sub(1).map(|p| &toks[p]);
        let next = toks.get(i + 1);
        let mut report = |msg: String| {
            out.push(Violation {
                file: file.rel_path.clone(),
                line: t.line,
                rule: NO_PANIC_HOT_PATH,
                message: msg,
            });
        };
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && prev.is_some_and(|p| p.is_punct('.'))
            && next.is_some_and(|n| n.is_punct('('))
        {
            report(format!(
                "`.{}()` can panic inside the episode loop; return a typed \
                 `roulette_core::Error` or restructure to make the state unrepresentable",
                t.text
            ));
        } else if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && next.is_some_and(|n| n.is_punct('!'))
        {
            report(format!(
                "`{}!` is banned in hot-path modules; surface an `Error::Internal` instead",
                t.text
            ));
        } else if t.is_punct('[') && prev.is_some_and(is_indexable) {
            report(
                "direct indexing can panic on out-of-bounds; use `.get()`/`.get_mut()` \
                 or prove bounds with an iterator"
                    .to_string(),
            );
        }
    }
}

/// The marker comment that opens an R6 hot-loop region. The region covers
/// the item (function, loop, or statement) starting at the first token
/// after the marker, through its closing brace or terminating `;`.
pub const HOT_LOOP_MARKER: &str = "lint: hot-loop";

/// R6: heap allocation inside `// lint: hot-loop` regions. The episode
/// loop's steady state must draw every buffer from the `EpisodeScratch`
/// arena; a `Vec::new`, `vec![…]`, `.clone()`, or `.to_vec()` sneaking
/// into a marked region is a per-vector allocation regression that no
/// profiler run will catch before it ships.
pub fn check_no_alloc_in_episode_loop(file: &SourceFile, out: &mut Vec<Violation>) {
    if !HOT_PATHS.contains(&file.rel_path.as_str()) {
        return;
    }
    let toks = file.toks();
    // Marked regions: token span of the item following each marker.
    let mut regions: Vec<(usize, usize)> = Vec::new();
    for c in &file.lexed.comments {
        if !c.text.contains(HOT_LOOP_MARKER) {
            continue;
        }
        if let Some(start) = toks.iter().position(|t| t.line > c.end_line) {
            if let Some(end) = item_end(toks, start) {
                regions.push((start, end));
            }
        }
    }
    for &(start, end) in &regions {
        for i in start..end.min(toks.len()) {
            if file.in_test(i) {
                continue;
            }
            let t = &toks[i];
            let prev = i.checked_sub(1).map(|p| &toks[p]);
            let next = toks.get(i + 1);
            let mut report = |what: &str| {
                out.push(Violation {
                    file: file.rel_path.clone(),
                    line: t.line,
                    rule: NO_ALLOC_IN_EPISODE_LOOP,
                    message: format!(
                        "{what} allocates inside a `// {HOT_LOOP_MARKER}` region; take a \
                         pooled buffer from the `EpisodeScratch` arena instead"
                    ),
                });
            };
            if t.is_ident("vec") && next.is_some_and(|n| n.is_punct('!')) {
                report("`vec![…]`");
            } else if t.is_ident("Vec") && next.is_some_and(|n| n.is_punct(':')) {
                if let Some(ctor) = assoc_fn_after_path(toks, i + 1) {
                    if ctor == "new" || ctor == "with_capacity" {
                        report(&format!("`Vec::{ctor}`"));
                    }
                }
            } else if t.kind == TokKind::Ident
                && (t.text == "clone" || t.text == "to_vec" || t.text == "to_owned")
                && prev.is_some_and(|p| p.is_punct('.'))
                && next.is_some_and(|n| n.is_punct('('))
            {
                report(&format!("`.{}()`", t.text));
            }
        }
    }
}

/// Resolves the associated-function name at the end of a `::`-path starting
/// at the `:` token `i` (handles the turbofish: `Vec::<T>::new`). Returns
/// `None` when the tokens do not form `:: [\<…\> ::] ident`.
fn assoc_fn_after_path(toks: &[Tok], i: usize) -> Option<&str> {
    let mut j = i;
    if !(toks.get(j)?.is_punct(':') && toks.get(j + 1)?.is_punct(':')) {
        return None;
    }
    j += 2;
    if toks.get(j)?.is_punct('<') {
        j = matching_close(toks, j, '<', '>')? + 1;
        if !(toks.get(j)?.is_punct(':') && toks.get(j + 1)?.is_punct(':')) {
            return None;
        }
        j += 2;
    }
    let t = toks.get(j)?;
    (t.kind == TokKind::Ident).then_some(t.text.as_str())
}

/// Can this token end an expression that `[` would index into?
fn is_indexable(t: &Tok) -> bool {
    match t.kind {
        TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&t.text.as_str()),
        TokKind::Punct => t.text == ")" || t.text == "]",
        _ => false,
    }
}

/// R2 (per-file half): every `unsafe` keyword must have a `SAFETY:` comment
/// on its line or one of the two lines above. The per-crate
/// `#![forbid(unsafe_code)]` half lives in [`crate::workspace`] because it
/// needs crate grouping.
pub fn check_unsafe_comments(file: &SourceFile, out: &mut Vec<Violation>) {
    for (i, t) in file.toks().iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        // `forbid(unsafe_code)` / `deny(unsafe_code)` attributes mention no
        // unsafe code; the keyword only appears as `unsafe` itself.
        let covered = (t.line.saturating_sub(2)..=t.line)
            .any(|l| file.safety_lines.contains(&l));
        if !covered && !file.in_test(i) {
            out.push(Violation {
                file: file.rel_path.clone(),
                line: t.line,
                rule: UNSAFE_NEEDS_SAFETY_COMMENT,
                message: "`unsafe` without a `// SAFETY:` comment on the same or the two \
                          preceding lines"
                    .to_string(),
            });
        }
    }
}

/// True when this file is exempt from R3 (binaries, benches, examples,
/// tests, and the bench crate are allowed to print).
pub fn stdout_exempt(rel_path: &str) -> bool {
    rel_path.starts_with("crates/bench/")
        || rel_path.starts_with("tests/")
        || rel_path.starts_with("examples/")
        || rel_path.contains("/tests/")
        || rel_path.contains("/benches/")
        || rel_path.contains("/examples/")
        || rel_path.starts_with("src/bin/")
        || rel_path.contains("/src/bin/")
        || rel_path.ends_with("/main.rs")
        || rel_path.ends_with("build.rs")
}

/// R3: stdout/stderr macros in library code.
pub fn check_no_stdout_in_libs(file: &SourceFile, out: &mut Vec<Violation>) {
    if stdout_exempt(&file.rel_path) {
        return;
    }
    let toks = file.toks();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && STDOUT_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && !file.in_test(i)
        {
            out.push(Violation {
                file: file.rel_path.clone(),
                line: t.line,
                rule: NO_STDOUT_IN_LIBS,
                message: format!(
                    "`{}!` in a library crate; return data or thread a `io::Write` sink",
                    t.text
                ),
            });
        }
    }
}

/// A `pub` item exported by a shim: name and definition site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PubItem {
    /// Exported identifier.
    pub name: String,
    /// 1-based definition line.
    pub line: u32,
}

/// R4 (collection half): the `pub` surface of one shim file — top-level
/// items, impl-block methods, `pub use` re-exports, and `#[macro_export]`
/// macros. `pub(crate)`/`pub(super)` items are not part of the exported
/// surface and are skipped.
pub fn collect_pub_items(file: &SourceFile) -> Vec<PubItem> {
    let toks = file.toks();
    let mut items = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if file.in_test(i) {
            i += 1;
            continue;
        }
        // #[macro_export] macro_rules! name
        if t.is_ident("macro_rules")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && toks[..i].iter().rev().take(8).any(|p| p.is_ident("macro_export"))
        {
            if let Some(name) = toks.get(i + 2) {
                items.push(PubItem { name: name.text.clone(), line: name.line });
            }
            i += 3;
            continue;
        }
        if !t.is_ident("pub") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // pub(crate) / pub(super) / pub(in …) → not exported.
        if toks.get(j).is_some_and(|n| n.is_punct('(')) {
            i = matching_close(toks, j, '(', ')').map_or(toks.len(), |e| e + 1);
            continue;
        }
        // Skip qualifiers: const fn, unsafe fn, async fn, extern "C" fn.
        loop {
            match toks.get(j) {
                Some(n) if n.is_ident("unsafe") || n.is_ident("async") => j += 1,
                Some(n) if n.is_ident("extern") => {
                    j += 1;
                    if toks.get(j).is_some_and(|s| s.kind == TokKind::Str) {
                        j += 1;
                    }
                }
                Some(n)
                    if n.is_ident("const")
                        && toks.get(j + 1).is_some_and(|f| f.is_ident("fn")) =>
                {
                    j += 1
                }
                _ => break,
            }
        }
        match toks.get(j).map(|t| t.text.as_str()) {
            Some("fn" | "struct" | "enum" | "trait" | "type" | "const" | "union" | "mod") => {
                if let Some(name) = toks.get(j + 1) {
                    if name.kind == TokKind::Ident {
                        items.push(PubItem { name: name.text.clone(), line: name.line });
                    }
                }
                i = j + 2;
            }
            Some("static") => {
                let mut k = j + 1;
                if toks.get(k).is_some_and(|m| m.is_ident("mut")) {
                    k += 1;
                }
                if let Some(name) = toks.get(k) {
                    items.push(PubItem { name: name.text.clone(), line: name.line });
                }
                i = k + 1;
            }
            Some("use") => {
                // Export the identifier immediately preceding each `,`,
                // `}`, or the final `;` — this resolves `a as b` to `b`
                // and ignores globs.
                let mut k = j + 1;
                let mut last: Option<&Tok> = None;
                while k < toks.len() {
                    let u = &toks[k];
                    if u.is_punct(';') || u.is_punct(',') || u.is_punct('}') {
                        if let Some(id) = last.take() {
                            if id.text != "self" {
                                items.push(PubItem {
                                    name: id.text.clone(),
                                    line: id.line,
                                });
                            }
                        }
                        if u.is_punct(';') {
                            break;
                        }
                    } else if u.kind == TokKind::Ident {
                        last = Some(u);
                    } else if u.is_punct('*') {
                        last = None;
                    }
                    k += 1;
                }
                i = k + 1;
            }
            _ => i = j + 1,
        }
    }
    items
}

/// Identifiers appearing inside `#[macro_export] macro_rules!` bodies.
/// Exported macros expand at workspace call sites, so for R4 these tokens
/// count as workspace references even though they live in a shim file.
/// The macro's own name is *not* included — an exported macro nobody
/// invokes is still drift.
pub fn exported_macro_body_idents(file: &SourceFile) -> Vec<String> {
    let toks = file.toks();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("macro_rules")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && toks[..i].iter().rev().take(8).any(|p| p.is_ident("macro_export"))
        {
            // Body is the `{ … }` after the macro name.
            if let Some(open) = (i + 2..toks.len()).find(|&j| toks[j].is_punct('{')) {
                if let Some(close) = matching_close(toks, open, '{', '}') {
                    out.extend(
                        toks[open..close]
                            .iter()
                            .filter(|t| t.kind == TokKind::Ident)
                            .map(|t| t.text.clone()),
                    );
                    i = close;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// R4 (matching half): reports shim pub items whose names never appear in
/// the non-shim reference corpus. One report per name per file.
pub fn check_shim_surface(
    file: &SourceFile,
    referenced: &HashSet<String>,
    out: &mut Vec<Violation>,
) {
    let mut seen = HashSet::new();
    for item in collect_pub_items(file) {
        if referenced.contains(&item.name) || !seen.insert(item.name.clone()) {
            continue;
        }
        out.push(Violation {
            file: file.rel_path.clone(),
            line: item.line,
            rule: SHIM_SURFACE_DRIFT,
            message: format!(
                "shim exports `{}` but nothing in the workspace references it; shims must \
                 mirror only the API subset the repo uses — delete it or add the caller",
                item.name
            ),
        });
    }
}

/// R5: every public field of `EngineConfig` carries a doc comment.
pub fn check_config_docs(file: &SourceFile, out: &mut Vec<Violation>) {
    if !file.rel_path.ends_with("core/src/config.rs") {
        return;
    }
    let toks = file.toks();
    // Locate `pub struct EngineConfig {`.
    let mut start = None;
    for i in 0..toks.len() {
        if toks[i].is_ident("struct")
            && toks.get(i + 1).is_some_and(|n| n.is_ident("EngineConfig"))
        {
            if let Some(open) = toks[i..].iter().position(|t| t.is_punct('{')) {
                start = Some(i + open);
            }
            break;
        }
    }
    let Some(open) = start else { return };
    let Some(close) = matching_close(toks, open, '{', '}') else { return };
    let mut depth = 0i32;
    for i in open..close {
        let t = &toks[i];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct('>') {
            depth -= 1;
        }
        // A field: `pub name :` at struct-body depth.
        if depth == 1
            && t.is_ident("pub")
            && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
            && toks.get(i + 2).is_some_and(|c| c.is_punct(':'))
            && !field_has_doc(toks, i)
        {
            out.push(Violation {
                file: file.rel_path.clone(),
                line: t.line,
                rule: CONFIG_DOCS,
                message: format!(
                    "public field `{}` on `EngineConfig` lacks a doc comment",
                    toks[i + 1].text
                ),
            });
        }
    }
}

/// Walks backwards over attributes from the `pub` at `i` and checks the
/// preceding token is a doc comment.
fn field_has_doc(toks: &[Tok], mut i: usize) -> bool {
    while i > 0 {
        let p = &toks[i - 1];
        if p.is_punct(']') {
            // Skip back over one `#[...]` attribute.
            let mut depth = 0usize;
            let mut j = i - 1;
            loop {
                if toks[j].is_punct(']') {
                    depth += 1;
                } else if toks[j].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return false;
                }
                j -= 1;
            }
            i = j.saturating_sub(1); // the `#`
        } else {
            return p.kind == TokKind::DocComment;
        }
    }
    false
}

/// Detects `#![forbid(unsafe_code)]` (or `#![deny(unsafe_code)]`) in a
/// crate-root file.
pub fn has_forbid_unsafe(file: &SourceFile) -> bool {
    let toks = file.toks();
    for i in 0..toks.len() {
        if toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('['))
        {
            if let Some(end) = matching_close(toks, i + 2, '[', ']') {
                let body = &toks[i + 3..end];
                let gate = body.iter().any(|t| t.is_ident("forbid") || t.is_ident("deny"));
                if gate && body.iter().any(|t| t.is_ident("unsafe_code")) {
                    return true;
                }
            }
        }
    }
    false
}

/// True when any token in the file is the `unsafe` keyword.
pub fn uses_unsafe(file: &SourceFile) -> bool {
    file.toks().iter().any(|t| t.is_ident("unsafe"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_rule(
        path: &str,
        src: &str,
        rule: fn(&SourceFile, &mut Vec<Violation>),
    ) -> Vec<Violation> {
        let f = SourceFile::new(path, src);
        let mut out = Vec::new();
        rule(&f, &mut out);
        out.retain(|v| !f.allowed(v.rule, v.line));
        out
    }

    const HOT: &str = "crates/exec/src/episode.rs";

    // ---- R1 fixtures -------------------------------------------------

    #[test]
    fn r1_flags_unwrap_expect_and_panic_macros() {
        let src = r#"
fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("msg");
    if a > b { panic!("boom"); }
    match a { 0 => unreachable!(), _ => todo!() }
}
"#;
        let v = run_rule(HOT, src, check_no_panic_hot_path);
        assert_eq!(v.len(), 5, "{v:?}");
    }

    #[test]
    fn r1_flags_direct_indexing_but_not_patterns_or_attrs() {
        let src = r#"
#[derive(Clone)]
struct S { w: Vec<u64> }
fn f(s: &S, xs: &[u64]) -> u64 {
    let [a, b] = [1u64, 2];
    let ty: [u64; 2] = [a, b];
    let v = vec![0u64];
    s.w[0] + xs[1] + ty[0] + v[0]
}
"#;
        let v = run_rule(HOT, src, check_no_panic_hot_path);
        // Exactly the four index expressions on the last line.
        assert_eq!(v.len(), 4, "{v:?}");
        assert!(v.iter().all(|x| x.line == 8));
    }

    #[test]
    fn r1_ignores_strings_comments_and_cfg_test() {
        let src = r##"
fn f() -> &'static str {
    // this unwrap() is a comment, and so is panic!
    /* block: x.unwrap() /* nested: todo!() */ */
    let s = "x.unwrap() and panic!(\"no\")";
    let r = r#"raw unwrap() with "quotes" and xs[0]"#;
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v: Vec<u32> = vec![1];
        assert_eq!(v[0], Some(1).unwrap());
        panic!("fine in tests");
    }
}
"##;
        let v = run_rule(HOT, src, check_no_panic_hot_path);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r1_only_applies_to_hot_paths() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(run_rule("crates/query/src/parser.rs", src, check_no_panic_hot_path)
            .is_empty());
        assert_eq!(run_rule(HOT, src, check_no_panic_hot_path).len(), 1);
    }

    #[test]
    fn r1_respects_lint_allow_same_line_and_above() {
        let src = r#"
fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap(); // lint:allow(no-panic-hot-path) — invariant: seeded above
    // lint:allow(no-panic-hot-path)
    let b = x.unwrap();
    a + b
}
"#;
        let v = run_rule(HOT, src, check_no_panic_hot_path);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r1_does_not_flag_unwrap_or_variants() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_default() }";
        assert!(run_rule(HOT, src, check_no_panic_hot_path).is_empty());
    }

    // ---- R6 fixtures -------------------------------------------------

    #[test]
    fn r6_flags_allocation_inside_marked_regions_only() {
        let src = r#"
fn cold() -> Vec<u32> {
    let v = Vec::new(); // unmarked: allocation is fine here
    v
}
// lint: hot-loop
fn hot(xs: &[u32], scratch: &mut Vec<u32>) -> Vec<u32> {
    let a: Vec<u32> = Vec::new();
    let b = Vec::<u32>::with_capacity(4);
    let c = vec![1u32];
    let d = xs.to_vec();
    let e = a.clone();
    e
}
fn also_cold(xs: &[u32]) -> Vec<u32> { xs.to_vec() }
"#;
        let v = run_rule(HOT, src, check_no_alloc_in_episode_loop);
        assert_eq!(v.len(), 5, "{v:?}");
        assert!(v.iter().all(|x| (8..=12).contains(&x.line)), "{v:?}");
    }

    #[test]
    fn r6_marker_covers_loops_and_respects_allow_and_tests() {
        let src = r#"
fn f(xs: &[u32]) {
    // lint: hot-loop
    for x in xs {
        let v = vec![*x];
        let w = v.clone(); // lint:allow(no-alloc-in-episode-loop) — cold branch
        drop(w);
    }
    let after = vec![1]; // after the loop's closing brace: unmarked
    drop(after);
}

#[cfg(test)]
mod tests {
    // lint: hot-loop
    fn g() { let v = Vec::new(); drop(v); }
}
"#;
        let v = run_rule(HOT, src, check_no_alloc_in_episode_loop);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 5);
        assert!(v[0].message.contains("vec!"));
    }

    #[test]
    fn r6_only_applies_to_hot_path_modules() {
        let src = "// lint: hot-loop\nfn f() -> Vec<u8> { Vec::new() }";
        assert!(run_rule("crates/query/src/parser.rs", src, check_no_alloc_in_episode_loop)
            .is_empty());
        assert_eq!(run_rule(HOT, src, check_no_alloc_in_episode_loop).len(), 1);
        assert_eq!(
            run_rule("crates/exec/src/scratch.rs", src, check_no_alloc_in_episode_loop).len(),
            1,
            "scratch.rs must be hot-path covered"
        );
    }

    #[test]
    fn r6_ignores_non_allocating_lookalikes() {
        let src = r#"
// lint: hot-loop
fn f(xs: &mut Vec<u32>, s: &str) -> usize {
    xs.clear();
    let n = s.len(); // "vec![" and Vec::new() in a string are not tokens
    xs.capacity() + n
}
"#;
        let v = run_rule(HOT, src, check_no_alloc_in_episode_loop);
        assert!(v.is_empty(), "{v:?}");
    }

    // ---- R2 fixtures -------------------------------------------------

    #[test]
    fn r2_requires_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
        let v = run_rule("crates/x/src/a.rs", bad, check_unsafe_comments);
        assert_eq!(v.len(), 1);

        let good = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}";
        assert!(run_rule("crates/x/src/a.rs", good, check_unsafe_comments).is_empty());
    }

    #[test]
    fn r2_forbid_detection() {
        let f = SourceFile::new("crates/x/src/lib.rs", "#![forbid(unsafe_code)]\npub fn a() {}");
        assert!(has_forbid_unsafe(&f));
        assert!(!uses_unsafe(&f));
        let g = SourceFile::new("crates/x/src/lib.rs", "//! docs\npub fn a() {}");
        assert!(!has_forbid_unsafe(&g));
        // The string "unsafe" in a literal is not the keyword.
        let h = SourceFile::new("crates/x/src/lib.rs", "const S: &str = \"unsafe\";");
        assert!(!uses_unsafe(&h));
    }

    // ---- R3 fixtures -------------------------------------------------

    #[test]
    fn r3_flags_stdout_in_lib_but_not_bins_bench_tests() {
        let src = "pub fn f() { println!(\"x\"); dbg!(1); }";
        assert_eq!(run_rule("crates/query/src/parser.rs", src, check_no_stdout_in_libs).len(), 2);
        for exempt in [
            "crates/bench/src/harness.rs",
            "src/bin/roulette-cli.rs",
            "crates/exec/src/main.rs",
            "tests/smoke.rs",
            "examples/quickstart.rs",
            "crates/bench/benches/figures.rs",
        ] {
            assert!(run_rule(exempt, src, check_no_stdout_in_libs).is_empty(), "{exempt}");
        }
        let test_only = "#[cfg(test)]\nmod t { fn f() { println!(\"debugging\"); } }";
        assert!(run_rule("crates/query/src/parser.rs", test_only, check_no_stdout_in_libs)
            .is_empty());
    }

    // ---- R4 fixtures -------------------------------------------------

    #[test]
    fn r4_collects_top_level_items_methods_and_reexports() {
        let src = r#"
pub struct Rng { seed: u64 }
impl Rng {
    pub fn new(seed: u64) -> Self { Rng { seed } }
    pub(crate) fn internal(&self) {}
    pub const fn width() -> usize { 64 }
}
pub use std::hint::black_box;
pub use other::{alpha, beta as gamma, *};
pub trait SampleUniform {}
pub mod distributions;
pub(crate) fn helper() {}
pub static SEED: u64 = 1;
"#;
        let f = SourceFile::new("shims/rand/src/lib.rs", src);
        let names: Vec<String> =
            collect_pub_items(&f).into_iter().map(|i| i.name).collect();
        assert_eq!(
            names,
            ["Rng", "new", "width", "black_box", "alpha", "gamma", "SampleUniform",
             "distributions", "SEED"]
        );
    }

    #[test]
    fn r4_reports_unreferenced_surface_only() {
        let f = SourceFile::new(
            "shims/rand/src/lib.rs",
            "pub fn used() {}\npub fn orphan() {}\n",
        );
        let referenced: HashSet<String> = ["used".to_string()].into_iter().collect();
        let mut out = Vec::new();
        check_shim_surface(&f, &referenced, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("orphan"));
        assert_eq!(out[0].line, 2);
    }

    // ---- R5 fixtures -------------------------------------------------

    #[test]
    fn r5_flags_undocumented_fields() {
        let src = r#"
/// Config.
pub struct EngineConfig {
    /// Documented.
    pub vector_size: usize,
    pub mu: f64,
    #[allow(dead_code)]
    pub epsilon: f64,
    /// Documented with attribute.
    #[allow(dead_code)]
    pub gamma: f64,
    not_public: u8,
}
"#;
        let v = run_rule("crates/core/src/config.rs", src, check_config_docs);
        let fields: Vec<&str> = v
            .iter()
            .map(|x| x.message.split('`').nth(1).unwrap_or_default())
            .collect();
        assert_eq!(fields, ["mu", "epsilon"], "{v:?}");
    }

    #[test]
    fn r5_clean_when_all_documented_and_other_files_ignored() {
        let src = "pub struct EngineConfig { /** doc */ pub a: u8 }";
        assert!(run_rule("crates/core/src/config.rs", src, check_config_docs).is_empty());
        let undoc = "pub struct EngineConfig { pub a: u8 }";
        assert!(run_rule("crates/exec/src/engine.rs", undoc, check_config_docs).is_empty());
    }

    // ---- shared machinery --------------------------------------------

    #[test]
    fn allow_parsing_handles_lists() {
        assert_eq!(
            parse_allows("// lint:allow(a, b) then lint:allow(c)"),
            ["a", "b", "c"]
        );
        assert!(parse_allows("// nothing here").is_empty());
    }

    #[test]
    fn test_spans_cover_gated_fns_and_mods() {
        let src = r#"
fn live() {}
#[cfg(test)]
fn gated() { let x: Vec<u32> = vec![]; x[0]; }
#[cfg(all(test, feature = "x"))]
mod m { fn g() {} }
fn live2() {}
"#;
        let f = SourceFile::new("crates/x/src/a.rs", src);
        let toks = &f.lexed.toks;
        let idx_of = |name: &str| toks.iter().position(|t| t.is_ident(name)).unwrap();
        assert!(!f.in_test(idx_of("live")));
        assert!(f.in_test(idx_of("gated")));
        assert!(f.in_test(idx_of("g")));
        assert!(!f.in_test(idx_of("live2")));
    }
}
