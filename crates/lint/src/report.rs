//! Violation records, severities, and output rendering.
//!
//! Rendering returns `String`s — the library never writes to stdout (rule
//! R3 applies to this crate too; only the `roulette-lint` binary prints).

use std::collections::BTreeMap;
use std::fmt;

/// How a rule's violations affect the exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Violations fail the check.
    Deny,
    /// Violations are reported but never fail the check.
    Warn,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        })
    }
}

/// One rule violation at one source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name, e.g. `no-panic-hot-path`.
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

/// A baseline entry that no longer matches the tree.
#[derive(Debug, Clone)]
pub struct StaleEntry {
    /// Baselined file.
    pub file: String,
    /// Baselined rule.
    pub rule: String,
    /// Count frozen in the baseline.
    pub baselined: usize,
    /// Count actually found (strictly less than `baselined`).
    pub found: usize,
}

/// Outcome of a `check` run.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Number of `.rs` files analyzed.
    pub checked_files: usize,
    /// Deny-severity violations not covered by the baseline; any entry
    /// here fails the check.
    pub errors: Vec<Violation>,
    /// Warn-severity violations not covered by the baseline.
    pub warnings: Vec<Violation>,
    /// Violations covered by the baseline (informational).
    pub baselined: usize,
    /// Baseline entries whose frozen count exceeds what the tree contains;
    /// these fail the check so the baseline can only shrink via an explicit
    /// `roulette-lint baseline` regeneration.
    pub stale: Vec<StaleEntry>,
}

impl CheckReport {
    /// True when the check passes.
    pub fn ok(&self) -> bool {
        self.errors.is_empty() && self.stale.is_empty()
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in self.warnings.iter() {
            out.push_str(&format!("warn[{}] {}:{}: {}\n", v.rule, v.file, v.line, v.message));
        }
        for v in self.errors.iter() {
            out.push_str(&format!("error[{}] {}:{}: {}\n", v.rule, v.file, v.line, v.message));
        }
        for s in self.stale.iter() {
            out.push_str(&format!(
                "error[stale-baseline] {}: baseline freezes {} `{}` violation(s) but the tree \
                 has {}; run `cargo run -p roulette-lint -- baseline` to shrink the freeze\n",
                s.file, s.baselined, s.rule, s.found
            ));
        }
        out.push_str(&format!(
            "{}: {} file(s) checked, {} error(s), {} warning(s), {} baselined, {} stale\n",
            if self.ok() { "ok" } else { "FAILED" },
            self.checked_files,
            self.errors.len(),
            self.warnings.len(),
            self.baselined,
            self.stale.len()
        ));
        out
    }

    /// Machine-readable report (stable key order).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"ok\":{},", self.ok()));
        out.push_str(&format!("\"checked_files\":{},", self.checked_files));
        out.push_str(&format!("\"baselined\":{},", self.baselined));
        let render = |vs: &[Violation]| -> String {
            let items: Vec<String> = vs
                .iter()
                .map(|v| {
                    format!(
                        "{{\"file\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
                        json_str(&v.file),
                        v.line,
                        json_str(v.rule),
                        json_str(&v.message)
                    )
                })
                .collect();
            format!("[{}]", items.join(","))
        };
        out.push_str(&format!("\"errors\":{},", render(&self.errors)));
        out.push_str(&format!("\"warnings\":{},", render(&self.warnings)));
        let stale: Vec<String> = self
            .stale
            .iter()
            .map(|s| {
                format!(
                    "{{\"file\":{},\"rule\":{},\"baselined\":{},\"found\":{}}}",
                    json_str(&s.file),
                    json_str(&s.rule),
                    s.baselined,
                    s.found
                )
            })
            .collect();
        out.push_str(&format!("\"stale\":[{}]", stale.join(",")));
        out.push('}');
        out
    }
}

/// Groups violations by `(file, rule)` with counts, in sorted order —
/// the shape both the baseline comparison and serialization use.
pub fn group_counts(violations: &[Violation]) -> BTreeMap<(String, String), usize> {
    let mut m = BTreeMap::new();
    for v in violations {
        *m.entry((v.file.clone(), v.rule.to_string())).or_insert(0) += 1;
    }
    m
}

/// Minimal JSON string escaping.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_ok_logic() {
        let mut r = CheckReport::default();
        assert!(r.ok());
        r.warnings.push(Violation {
            file: "f".into(),
            line: 1,
            rule: "x",
            message: "m".into(),
        });
        assert!(r.ok(), "warnings alone must not fail the check");
        r.stale.push(StaleEntry {
            file: "f".into(),
            rule: "x".into(),
            baselined: 2,
            found: 1,
        });
        assert!(!r.ok(), "stale baseline entries fail the check");
    }

    #[test]
    fn json_render_is_parseable_shape() {
        let mut r = CheckReport { checked_files: 3, ..Default::default() };
        r.errors.push(Violation {
            file: "a.rs".into(),
            line: 7,
            rule: "no-panic-hot-path",
            message: "`unwrap()` in hot path".into(),
        });
        let j = r.render_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"ok\":false"));
        assert!(j.contains("\"line\":7"));
    }
}
