//! The committed `lint-baseline.toml` must exactly describe the tree.
//!
//! These tests are the CI gate's local twin: the repository stays clean
//! against the frozen baseline, and the baseline itself stays honest —
//! removing (or shrinking) any entry whose violations still exist makes
//! the check fail, so stale headroom can never accumulate.

use roulette_lint::{default_root, Baseline, LockOrder, Workspace};
use std::collections::HashSet;

fn load() -> (Workspace, Baseline) {
    let root = default_root();
    let ws = Workspace::load(&root).expect("workspace loads");
    let text = std::fs::read_to_string(root.join("lint-baseline.toml"))
        .expect("lint-baseline.toml is committed at the workspace root");
    let baseline = Baseline::parse(&text).expect("committed baseline parses");
    (ws, baseline)
}

#[test]
fn tree_is_clean_against_committed_baseline() {
    let (ws, baseline) = load();
    let report = ws.check(&baseline, &HashSet::new());
    assert!(
        report.ok(),
        "repository violates its own lint rules:\n{}",
        report.render_text()
    );
    assert!(report.checked_files > 50, "suspiciously few files scanned");
}

#[test]
fn removing_any_baseline_entry_fails_the_check() {
    let (ws, baseline) = load();
    assert!(!baseline.entries.is_empty(), "test requires a non-empty baseline");
    for skip in 0..baseline.entries.len() {
        let reduced = Baseline {
            entries: baseline
                .entries
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, e)| e.clone())
                .collect(),
        };
        let report = ws.check(&reduced, &HashSet::new());
        assert!(
            !report.ok(),
            "dropping baseline entry for {} ({}) should fail the check",
            baseline.entries[skip].file,
            baseline.entries[skip].rule,
        );
    }
}

#[test]
fn shrinking_a_baseline_count_fails_the_check() {
    let (ws, baseline) = load();
    let mut shrunk = baseline.clone();
    let entry = shrunk.entries.first_mut().expect("non-empty baseline");
    entry.count -= 1;
    let report = ws.check(&shrunk, &HashSet::new());
    assert!(!report.ok(), "an under-counted baseline entry must fail the check");
}

#[test]
fn lock_order_is_committed_and_loaded() {
    let root = default_root();
    let text = std::fs::read_to_string(root.join("lock-order.toml"))
        .expect("lock-order.toml is committed at the workspace root");
    let order = LockOrder::parse(&text).expect("committed lock order parses");
    assert!(order.order.len() >= 5, "suspiciously short canonical order");
    let (ws, _) = load();
    assert!(ws.lock_order.is_some(), "workspace did not pick up lock-order.toml");
}

/// A violating mini-workspace round-trips through the full pipeline:
/// analysis finds all three concurrency rules, the JSON report names
/// them, and freezing + re-checking against the frozen baseline is clean.
#[test]
fn concurrency_rules_round_trip_through_json_and_baseline() {
    let root = std::env::temp_dir().join(format!("roulette-lint-rt-{}", std::process::id()));
    let src_dir = root.join("crates/demo/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(
        root.join("lock-order.toml"),
        "version = 1\norder = [\"S.a\", \"S.b\"]\n",
    )
    .expect("write lock order");
    std::fs::write(
        src_dir.join("lib.rs"),
        r#"
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct S {
    pub a: Mutex<u64>,
    pub b: Mutex<u64>,
    pub n: AtomicU64,
}

impl S {
    pub fn bad_order(&self) {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        let _ = (*gb, *ga);
    }

    pub fn blocks(&self, rx: &std::sync::mpsc::Receiver<u64>) {
        let g = self.a.lock().unwrap();
        let _ = rx.recv();
        let _ = *g;
    }

    pub fn unjustified(&self) -> u64 {
        self.n.load(Ordering::Acquire)
    }
}
"#,
    )
    .expect("write fixture");

    let ws = Workspace::load(&root).expect("fixture workspace loads");
    assert!(ws.lock_order.is_some(), "fixture lock-order.toml not picked up");
    let violations = ws.analyze();
    for rule in ["lock-order", "no-blocking-while-locked", "atomic-ordering-justified"] {
        assert!(
            violations.iter().any(|v| v.rule == rule),
            "fixture should trip {rule}, got: {violations:?}"
        );
    }

    // The JSON report names every violated rule (this is the artifact the
    // CI jobs upload).
    let report = ws.check(&Baseline::default(), &HashSet::new());
    assert!(!report.ok());
    let json = report.render_json();
    for rule in ["lock-order", "no-blocking-while-locked", "atomic-ordering-justified"] {
        assert!(json.contains(&format!("\"{rule}\"")), "JSON report missing {rule}: {json}");
    }

    // Freeze → serialize → parse → re-check: the two-way ratchet holds
    // for the concurrency rules exactly as it does for the per-file ones.
    let frozen = Baseline::from_violations(&violations);
    let reparsed = Baseline::parse(&frozen.to_toml()).expect("frozen baseline parses");
    let clean = ws.check(&reparsed, &HashSet::new());
    assert!(clean.ok(), "frozen baseline should make the fixture clean:\n{}", clean.render_text());
    assert_eq!(clean.baselined, violations.len());

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn missing_baseline_reports_every_frozen_violation() {
    let (ws, baseline) = load();
    let frozen: usize = baseline.entries.iter().map(|e| e.count).sum();
    let report = ws.check(&Baseline::default(), &HashSet::new());
    assert_eq!(report.errors.len(), frozen, "without a baseline every frozen site errors");
    assert!(!report.ok());
}
