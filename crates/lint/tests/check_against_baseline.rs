//! The committed `lint-baseline.toml` must exactly describe the tree.
//!
//! These tests are the CI gate's local twin: the repository stays clean
//! against the frozen baseline, and the baseline itself stays honest —
//! removing (or shrinking) any entry whose violations still exist makes
//! the check fail, so stale headroom can never accumulate.

use roulette_lint::{default_root, Baseline, Workspace};
use std::collections::HashSet;

fn load() -> (Workspace, Baseline) {
    let root = default_root();
    let ws = Workspace::load(&root).expect("workspace loads");
    let text = std::fs::read_to_string(root.join("lint-baseline.toml"))
        .expect("lint-baseline.toml is committed at the workspace root");
    let baseline = Baseline::parse(&text).expect("committed baseline parses");
    (ws, baseline)
}

#[test]
fn tree_is_clean_against_committed_baseline() {
    let (ws, baseline) = load();
    let report = ws.check(&baseline, &HashSet::new());
    assert!(
        report.ok(),
        "repository violates its own lint rules:\n{}",
        report.render_text()
    );
    assert!(report.checked_files > 50, "suspiciously few files scanned");
}

#[test]
fn removing_any_baseline_entry_fails_the_check() {
    let (ws, baseline) = load();
    assert!(!baseline.entries.is_empty(), "test requires a non-empty baseline");
    for skip in 0..baseline.entries.len() {
        let reduced = Baseline {
            entries: baseline
                .entries
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, e)| e.clone())
                .collect(),
        };
        let report = ws.check(&reduced, &HashSet::new());
        assert!(
            !report.ok(),
            "dropping baseline entry for {} ({}) should fail the check",
            baseline.entries[skip].file,
            baseline.entries[skip].rule,
        );
    }
}

#[test]
fn shrinking_a_baseline_count_fails_the_check() {
    let (ws, baseline) = load();
    let mut shrunk = baseline.clone();
    let entry = shrunk.entries.first_mut().expect("non-empty baseline");
    entry.count -= 1;
    let report = ws.check(&shrunk, &HashSet::new());
    assert!(!report.ok(), "an under-counted baseline entry must fail the check");
}

#[test]
fn missing_baseline_reports_every_frozen_violation() {
    let (ws, baseline) = load();
    let frozen: usize = baseline.entries.iter().map(|e| e.count).sum();
    let report = ws.check(&Baseline::default(), &HashSet::new());
    assert_eq!(report.errors.len(), frozen, "without a baseline every frozen site errors");
    assert!(!report.ok());
}
