//! # roulette-server
//!
//! The serving frontend for the RouLette engine: a long-running TCP server
//! speaking a hand-rolled line protocol over `std::net` (no external
//! dependencies), multiplexing concurrent client queries into shared
//! engine sessions and streaming results back.
//!
//! Robustness is the point of this crate, not an afterthought:
//!
//! * **admission control** — a bounded queue sheds load with a typed
//!   `overloaded` wire error when depth or the engine's memory-pressure
//!   ladder says stop ([`admission`]);
//! * **deadlines** — per-query budgets (client-supplied or configured
//!   default) are enforced through the engine's quarantine machinery and
//!   surface as a distinct `deadline-exceeded` wire error and telemetry
//!   event ([`server`]);
//! * **graceful drain** — shutdown closes the listener, runs every
//!   admitted query to a terminal status, and accounts for all of them:
//!   [`DrainReport::leaked`] is pinned to zero by the integration tests;
//! * **chaos** — the deterministic wire-layer fault sites
//!   (`wire-torn-read`, `wire-slow-client`, `wire-disconnect`) reuse the
//!   engine's [`roulette_exec::FaultInjector`], so a seeded chaos run is
//!   reproducible end to end ([`protocol`], `CHAOS <seed>`);
//! * **STREAM demo mode** — [`Server::start_stream`] hosts the churning
//!   streaming star workload instead of a static catalog: a background
//!   epoch thread lands seeded arrivals, expires aged tuples out of the
//!   time window, and swaps fresh snapshots in, while batches stay
//!   snapshot-isolated ([`StreamServeConfig`],
//!   [`workload::stream_demo_sql`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod http;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod workload;

pub use admission::{AdmissionQueue, Job, JobOutcome};
pub use http::spawn_metrics_http;
pub use metrics::ServerMetrics;
pub use protocol::{Request, Response};
pub use server::{DrainReport, Server, ServerConfig, StreamServeConfig};
pub use workload::{demo_dataset, demo_sql, stream_demo_sql, DEMO_PARAMS};
