//! A deliberately tiny HTTP/1.0 endpoint serving the Prometheus dump.
//!
//! Observability must not depend on the health of the query path, so the
//! metrics endpoint is its own listener with its own thread and no shared
//! locks beyond the telemetry registry's wait-free cells. Only
//! `GET /metrics` is meaningful; every request gets the text-format dump
//! (scrapers do not send anything else here, and answering unconditionally
//! keeps the parser trivial and un-crashable).

use roulette_core::{Error, Result};
use roulette_telemetry::Telemetry;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Spawns the metrics listener on `addr`; it serves until `stop` becomes
/// true. Returns the resolved address and the serving thread's handle.
pub fn spawn_metrics_http(
    addr: &str,
    telemetry: Arc<Telemetry>,
    stop: Arc<AtomicBool>,
) -> Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)
        .map_err(|e| Error::Internal(format!("bind metrics {addr}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| Error::Internal(format!("metrics local_addr: {e}")))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| Error::Internal(format!("metrics nonblocking: {e}")))?;
    let handle = std::thread::Builder::new()
        .name("roulette-metrics-http".into())
        .spawn(move || loop {
            // ordering: Acquire pairs with the Release store in main's
            // shutdown path, ordering the stop flag before `join`.
            if stop.load(Ordering::Acquire) {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = answer(stream, &telemetry);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        })
        .map_err(|e| Error::Internal(format!("spawn metrics thread: {e}")))?;
    Ok((local, handle))
}

fn answer(mut stream: TcpStream, telemetry: &Arc<Telemetry>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    // Drain (a prefix of) the request; the reply never depends on it.
    let mut buf = [0u8; 1024];
    let _ = stream.read(&mut buf);
    let mut body = Vec::new();
    let _ = telemetry.registry().render_prometheus(&mut body);
    let header = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(&body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    #[test]
    fn serves_prometheus_dump_and_stops() {
        let telemetry = Telemetry::with_defaults();
        telemetry
            .registry()
            .counter("roulette_http_test_total", "test counter")
            .add(3);
        let stop = Arc::new(AtomicBool::new(false));
        let (addr, handle) =
            spawn_metrics_http("127.0.0.1:0", telemetry, Arc::clone(&stop)).unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut reader = std::io::BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        assert!(status.starts_with("HTTP/1.0 200"), "{status}");
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut reader, &mut rest).unwrap();
        assert!(rest.contains("roulette_http_test_total 3"), "{rest}");
        stop.store(true, Ordering::Release);
        handle.join().unwrap();
    }
}
