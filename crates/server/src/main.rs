//! The `roulette-server` binary: hosts the demo chains dataset behind the
//! line protocol, with optional Prometheus-over-HTTP and seeded wire chaos.
//!
//! ```text
//! roulette-server [--addr 127.0.0.1:7878] [--queue 64] [--batch 8]
//!                 [--workers 1] [--deadline-ms N] [--chaos SEED]
//!                 [--metrics-addr 127.0.0.1:0] [--workload-seed 11]
//!                 [--duration-s N] [--stream] [--stream-epoch-ms 50]
//!                 [--stream-window 8]
//! ```
//!
//! With `--duration-s` the server drains itself after N seconds (CI smoke
//! runs); otherwise it serves until a client sends `DRAIN`. `--stream`
//! switches to the STREAM demo mode: instead of the static chains
//! catalog, the server hosts the churning streaming star workload
//! (arrivals every `--stream-epoch-ms`, tuples expiring after
//! `--stream-window` epochs), so a load generator run with `--stream`
//! and the same `--workload-seed` drives a windowed continuous workload
//! end to end.

use roulette_core::EngineConfig;
use roulette_server::{
    demo_dataset, spawn_metrics_http, Server, ServerConfig, StreamServeConfig,
};
use roulette_telemetry::Telemetry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    config: ServerConfig,
    workers: usize,
    workload_seed: u64,
    metrics_addr: Option<String>,
    duration_s: Option<u64>,
    stream: Option<StreamServeConfig>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: ServerConfig { addr: "127.0.0.1:7878".into(), ..ServerConfig::default() },
        workers: 1,
        workload_seed: 11,
        metrics_addr: None,
        duration_s: None,
        stream: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or(format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.config.addr = val("--addr")?,
            "--queue" => {
                args.config.queue_capacity =
                    val("--queue")?.parse().map_err(|e| format!("--queue: {e}"))?
            }
            "--batch" => {
                args.config.batch_max =
                    val("--batch")?.parse().map_err(|e| format!("--batch: {e}"))?
            }
            "--workers" => {
                args.workers = val("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--deadline-ms" => {
                args.config.default_deadline_ms =
                    Some(val("--deadline-ms")?.parse().map_err(|e| format!("--deadline-ms: {e}"))?)
            }
            "--chaos" => {
                args.config.chaos_seed =
                    Some(val("--chaos")?.parse().map_err(|e| format!("--chaos: {e}"))?)
            }
            "--metrics-addr" => args.metrics_addr = Some(val("--metrics-addr")?),
            "--workload-seed" => {
                args.workload_seed =
                    val("--workload-seed")?.parse().map_err(|e| format!("--workload-seed: {e}"))?
            }
            "--duration-s" => {
                args.duration_s =
                    Some(val("--duration-s")?.parse().map_err(|e| format!("--duration-s: {e}"))?)
            }
            "--stream" => {
                args.stream.get_or_insert_with(StreamServeConfig::default);
            }
            "--stream-epoch-ms" => {
                args.stream.get_or_insert_with(StreamServeConfig::default).epoch_ms =
                    val("--stream-epoch-ms")?
                        .parse()
                        .map_err(|e| format!("--stream-epoch-ms: {e}"))?
            }
            "--stream-window" => {
                args.stream.get_or_insert_with(StreamServeConfig::default).window =
                    val("--stream-window")?
                        .parse()
                        .map_err(|e| format!("--stream-window: {e}"))?
            }
            "--help" | "-h" => return Err("see module docs for usage".into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let mut args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("roulette-server: {e}");
            std::process::exit(2);
        }
    };
    args.config.engine = match EngineConfig::default().with_workers(args.workers) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("roulette-server: {e}");
            std::process::exit(2);
        }
    };
    let telemetry = Telemetry::with_defaults();
    let started = match args.stream {
        Some(mut stream) => {
            stream.seed = args.workload_seed;
            Server::start_stream(args.config, stream, Arc::clone(&telemetry))
        }
        None => {
            let ds = demo_dataset(args.workload_seed);
            Server::start(args.config, ds.catalog, Arc::clone(&telemetry))
        }
    };
    let server = match started {
        Ok(s) => s,
        Err(e) => {
            eprintln!("roulette-server: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    let stop_http = Arc::new(AtomicBool::new(false));
    let http = args.metrics_addr.as_deref().map(|addr| {
        match spawn_metrics_http(addr, Arc::clone(&telemetry), Arc::clone(&stop_http)) {
            Ok((local, handle)) => {
                println!("metrics on http://{local}/metrics");
                Some(handle)
            }
            Err(e) => {
                eprintln!("roulette-server: metrics endpoint: {e}");
                None
            }
        }
    });
    let deadline = args.duration_s.map(|s| Instant::now() + Duration::from_secs(s));
    loop {
        if server.is_draining() {
            break;
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let report = server.shutdown();
    // ordering: Release pairs with the Acquire load in the metrics HTTP
    // accept loop; the thread exits before we join it below.
    stop_http.store(true, Ordering::Release);
    if let Some(Some(handle)) = http {
        let _ = handle.join();
    }
    // Flush telemetry: terminal event log to stderr-adjacent sink (stdout
    // is the operator's; events are line-oriented JSONL).
    let mut events = Vec::new();
    let _ = telemetry.write_events_jsonl(&mut events);
    println!(
        "drained: admitted={} terminal={} leaked={} shed={} lingering={} events={}",
        report.admitted,
        report.terminal,
        report.leaked,
        report.shed,
        report.lingering_connections,
        events.iter().filter(|&&b| b == b'\n').count(),
    );
    if report.leaked > 0 {
        std::process::exit(1);
    }
}
