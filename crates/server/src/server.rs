//! The long-running TCP server: accept loop, per-connection handlers, and
//! the micro-batching engine loop.
//!
//! # Architecture
//!
//! Three kinds of threads cooperate around the [`AdmissionQueue`]:
//!
//! * the **accept loop** takes connections and spawns one handler each;
//! * **handlers** parse request lines, shed or enqueue [`Job`]s, and write
//!   responses at the client's pace — socket writes are the only place a
//!   slow client costs anything, so backpressure is per-connection;
//! * the **engine loop** pops jobs in micro-batches and executes each
//!   batch as one shared RouLette session (the paper's batch sharing at
//!   the serving layer), with a sweeper thread enforcing per-query
//!   deadlines through the engine's quarantine machinery.
//!
//! # Robustness
//!
//! Overload is refused at admission with a typed `overloaded` error
//! (queue depth, engine memory pressure ≥ the admissions-paused rung, or
//! drain). Deadlines evict through [`Session::quarantine`] so a late query
//! costs the shared session nothing further and its client receives
//! `deadline-exceeded` with the query attribution intact. A drain closes
//! the queue, unblocks the accept loop, lets the engine loop run the
//! backlog dry, and accounts every admitted query to a terminal outcome —
//! [`DrainReport::leaked`] is the invariant the integration tests pin at
//! zero. Wire-layer chaos (torn reads, slow clients, mid-stream
//! disconnects) is driven by the same deterministic [`FaultInjector`]
//! plans the engine's fault tests use.

use crate::admission::{AdmissionQueue, Job, JobOutcome};
use crate::metrics::ServerMetrics;
use crate::protocol::{Request, Response};
use roulette_core::{EngineConfig, Error, QueryId, QuerySet, Result};
use roulette_exec::{CompletionStatus, FaultInjector, FaultSite, RouletteEngine, Session};
use roulette_query::parse;
use roulette_storage::Catalog;
use roulette_stream::{ArrivalGen, Tick, WindowedStore, WorkloadParams};
use roulette_telemetry::{EventKind, Recorder, Telemetry};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Serving knobs. `Default` binds an ephemeral localhost port with a
/// 64-deep queue and no default deadline.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (ephemeral port).
    pub addr: String,
    /// Admission queue depth; pushes beyond it shed with `overloaded`.
    pub queue_capacity: usize,
    /// Maximum jobs coalesced into one shared session.
    pub batch_max: usize,
    /// Deadline applied to queries that do not carry their own, in
    /// milliseconds from admission. `None` means no default deadline.
    pub default_deadline_ms: Option<u64>,
    /// Engine configuration for every batch session.
    pub engine: EngineConfig,
    /// When set, every connection starts with this wire chaos plan (as if
    /// each client had sent `CHAOS <seed>`).
    pub chaos_seed: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            queue_capacity: 64,
            batch_max: 8,
            default_deadline_ms: None,
            engine: EngineConfig::default(),
            chaos_seed: None,
        }
    }
}

/// Knobs for the STREAM demo mode ([`Server::start_stream`]): the server
/// hosts the streaming star workload instead of a static catalog, and a
/// background epoch thread keeps the hosted snapshot churning — one epoch
/// of seeded arrivals lands, the window clock advances (expiring aged
/// tuples, with `window-expiry` telemetry), and the fresh snapshot is
/// swapped in for subsequent batches. Batches are snapshot-isolated: each
/// micro-batch parses and executes against the one snapshot that was
/// current at batch start.
#[derive(Debug, Clone)]
pub struct StreamServeConfig {
    /// Seed shared with clients; both sides derive the same star schema
    /// (and the client a valid SQL pool) from it.
    pub seed: u64,
    /// Milliseconds between stream epochs (arrivals + expiry + swap).
    pub epoch_ms: u64,
    /// Window width in epochs; tuples older than this expire.
    pub window: Tick,
}

impl Default for StreamServeConfig {
    fn default() -> Self {
        StreamServeConfig { seed: 11, epoch_ms: 50, window: 8 }
    }
}

/// Terminal accounting returned by [`Server::shutdown`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Jobs admitted into the queue over the server's lifetime.
    pub admitted: u64,
    /// Jobs that received a terminal outcome (`OK` or `ERR`).
    pub terminal: u64,
    /// Admitted jobs that left a session without a terminal
    /// [`CompletionStatus`] — must be zero; anything else is a bug.
    pub leaked: u64,
    /// Queries refused with `overloaded`.
    pub shed: u64,
    /// Connections still open when the drain wait timed out.
    pub lingering_connections: u64,
}

struct Shared {
    config: ServerConfig,
    /// The hosted snapshot. Static serving never swaps it; the STREAM
    /// epoch thread replaces the `Arc` wholesale, so a batch that cloned
    /// the `Arc` at pop time keeps a consistent snapshot for its whole
    /// lifetime (parse and execution see the same catalog).
    catalog: RwLock<Arc<Catalog>>,
    addr: SocketAddr,
    queue: AdmissionQueue,
    metrics: ServerMetrics,
    telemetry: Arc<Telemetry>,
    draining: AtomicBool,
    /// Mirror of the last batch session's memory-pressure rung; at ≥ 2
    /// (admissions paused) the wire sheds before touching the queue.
    pressure: AtomicU8,
    active_connections: AtomicU64,
    admitted: AtomicU64,
    terminal: AtomicU64,
    leaked: AtomicU64,
}

/// A running server; dropping it without [`shutdown`](Server::shutdown)
/// leaves the threads serving until process exit.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    engine: Option<JoinHandle<()>>,
    stream: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept and engine loops, and returns immediately.
    /// The server serves queries against `catalog` and reports into
    /// `telemetry` (engine events and server metrics share one registry).
    pub fn start(
        config: ServerConfig,
        catalog: Catalog,
        telemetry: Arc<Telemetry>,
    ) -> Result<Server> {
        Server::start_inner(config, catalog, telemetry, None)
    }

    /// Starts the server in STREAM demo mode: the hosted dataset is the
    /// streaming star workload derived from `stream.seed`, and a
    /// background epoch thread keeps it churning (arrivals, window
    /// expiry, snapshot swap) until drain. Clients with the same seed can
    /// generate SQL against the schema without any exchange — see
    /// [`crate::workload::stream_demo_sql`].
    pub fn start_stream(
        config: ServerConfig,
        stream: StreamServeConfig,
        telemetry: Arc<Telemetry>,
    ) -> Result<Server> {
        let mut gen = ArrivalGen::new(WorkloadParams::default(), stream.seed);
        let mut store = gen.store()?;
        // Pre-populate one epoch so the first batches see data.
        gen.generate(&mut store, 1)?;
        Server::start_inner(config, store.snapshot()?, telemetry, Some((stream, gen, store)))
    }

    fn start_inner(
        config: ServerConfig,
        catalog: Catalog,
        telemetry: Arc<Telemetry>,
        stream: Option<(StreamServeConfig, ArrivalGen, WindowedStore)>,
    ) -> Result<Server> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| Error::Internal(format!("bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::Internal(format!("local_addr: {e}")))?;
        let metrics = ServerMetrics::register(telemetry.registry());
        let queue = AdmissionQueue::new(config.queue_capacity);
        let shared = Arc::new(Shared {
            config,
            catalog: RwLock::new(Arc::new(catalog)),
            addr,
            queue,
            metrics,
            telemetry,
            draining: AtomicBool::new(false),
            pressure: AtomicU8::new(0),
            active_connections: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            terminal: AtomicU64::new(0),
            leaked: AtomicU64::new(0),
        });
        let engine = {
            let s = Arc::clone(&shared);
            thread::Builder::new()
                .name("roulette-engine".into())
                .spawn(move || engine_loop(&s))
                .map_err(|e| Error::Internal(format!("spawn engine loop: {e}")))?
        };
        let accept = {
            let s = Arc::clone(&shared);
            thread::Builder::new()
                .name("roulette-accept".into())
                .spawn(move || accept_loop(&s, listener))
                .map_err(|e| Error::Internal(format!("spawn accept loop: {e}")))?
        };
        let stream = match stream {
            Some((scfg, gen, store)) => {
                let s = Arc::clone(&shared);
                Some(
                    thread::Builder::new()
                        .name("roulette-stream".into())
                        .spawn(move || stream_loop(&s, scfg, gen, store))
                        .map_err(|e| Error::Internal(format!("spawn stream loop: {e}")))?,
                )
            }
            None => None,
        };
        Ok(Server { shared, accept: Some(accept), engine: Some(engine), stream })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The telemetry sink the server reports into.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.shared.telemetry
    }

    /// The server's metric handles (for tests and smoke checks).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// Whether a drain has begun (via [`shutdown`](Server::shutdown) or a
    /// client's `DRAIN` request).
    pub fn is_draining(&self) -> bool {
        // ordering: Acquire pairs with `begin_drain`'s AcqRel swap.
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Gracefully drains and stops the server: closes admissions, lets the
    /// engine loop run the backlog to terminal outcomes, joins the accept
    /// and engine threads, and waits (bounded) for handlers to finish
    /// writing. Returns the terminal accounting.
    pub fn shutdown(mut self) -> DrainReport {
        begin_drain(&self.shared);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.engine.take() {
            let _ = h.join();
        }
        if let Some(h) = self.stream.take() {
            let _ = h.join();
        }
        let wait_until = Instant::now() + Duration::from_secs(10);
        // ordering: Acquire pairs with the handler's AcqRel fetch_sub so a
        // zero count proves every handler finished writing its response.
        while self.shared.active_connections.load(Ordering::Acquire) > 0
            && Instant::now() < wait_until
        {
            thread::sleep(Duration::from_millis(2));
        }
        // ordering: Acquire — same pairing as the wait loop above.
        let lingering = self.shared.active_connections.load(Ordering::Acquire);
        self.shared.metrics.active_connections.set(lingering);
        DrainReport {
            // ordering: Acquire pairs with the AcqRel counter updates in
            // admission and the engine loop; both threads were joined above,
            // so these reads see the final drain accounting.
            admitted: self.shared.admitted.load(Ordering::Acquire),
            terminal: self.shared.terminal.load(Ordering::Acquire),
            leaked: self.shared.leaked.load(Ordering::Acquire), // ordering: as above.
            shed: self.shared.metrics.shed.total(),
            lingering_connections: lingering,
        }
    }
}

impl Shared {
    /// Clones the current hosted snapshot. Batches call this once at pop
    /// time so parse and execution share one consistent catalog even
    /// while the stream thread swaps in newer snapshots.
    fn snapshot_catalog(&self) -> Arc<Catalog> {
        match self.catalog.read() {
            Ok(c) => Arc::clone(&c),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }
}

/// The STREAM epoch thread: every `epoch_ms`, one epoch of seeded
/// arrivals lands, the window clock advances (expiry events +
/// `roulette_window_expired_tuples_total`), and the fresh snapshot
/// replaces the hosted catalog. Exits at drain.
fn stream_loop(
    shared: &Shared,
    scfg: StreamServeConfig,
    mut gen: ArrivalGen,
    mut store: WindowedStore,
) {
    // Epoch 1 was pre-populated before the server started.
    let mut now: Tick = 1;
    loop {
        thread::sleep(Duration::from_millis(scfg.epoch_ms.max(1)));
        // ordering: Acquire pairs with `begin_drain`'s AcqRel swap.
        if shared.draining.load(Ordering::Acquire) {
            return;
        }
        now += 1;
        if gen.generate(&mut store, now).is_err() {
            return;
        }
        for (relation, expired) in store.advance(now, scfg.window.max(1)) {
            shared
                .telemetry
                .record_event(now, EventKind::WindowExpiry { relation, expired });
        }
        match store.snapshot() {
            Ok(c) => match shared.catalog.write() {
                Ok(mut slot) => *slot = Arc::new(c),
                Err(poisoned) => *poisoned.into_inner() = Arc::new(c),
            },
            Err(_) => return,
        }
    }
}

fn begin_drain(shared: &Shared) {
    // ordering: AcqRel — the winner of the swap owns the one-shot drain
    // side effects; Acquire loads of `draining` see them after the flag.
    if shared.draining.swap(true, Ordering::AcqRel) {
        return;
    }
    shared.metrics.draining.set(1);
    shared.queue.close();
    // Unblock the accept loop with a throwaway connection; it checks the
    // drain flag after every accept.
    let _ = TcpStream::connect(shared.addr);
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    loop {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                // ordering: Acquire pairs with `begin_drain`'s AcqRel swap.
                if shared.draining.load(Ordering::Acquire) {
                    // Refuse with a typed terminal instead of a bare RST so
                    // a client racing the drain still reads `overloaded`.
                    let _ = write_line(
                        &mut stream,
                        &Response::Err(Error::Overloaded("draining".into())),
                    );
                    shared.metrics.shed.inc();
                    return;
                }
                let s = Arc::clone(shared);
                let spawned = thread::Builder::new()
                    .name("roulette-conn".into())
                    .spawn(move || handle_connection(&s, stream));
                if spawned.is_err() {
                    // Thread exhaustion: refuse this client, keep serving.
                    continue;
                }
            }
            Err(e) => {
                // ordering: Acquire pairs with `begin_drain`'s AcqRel swap.
                if shared.draining.load(Ordering::Acquire) {
                    return;
                }
                if e.kind() == ErrorKind::Interrupted {
                    continue;
                }
                // Transient accept errors (EMFILE, aborted handshake):
                // back off briefly instead of spinning.
                thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    shared.metrics.connections.inc();
    // ordering: AcqRel on both counter edges pairs with shutdown's Acquire
    // wait loop — count 0 proves the handler's writes are visible.
    let active = shared.active_connections.fetch_add(1, Ordering::AcqRel) + 1;
    shared.metrics.active_connections.set(active);
    let _ = serve_connection(shared, stream);
    // ordering: AcqRel — the Release edge publishes this handler's writes
    // to shutdown's Acquire wait loop.
    let active = shared.active_connections.fetch_sub(1, Ordering::AcqRel).saturating_sub(1);
    shared.metrics.active_connections.set(active);
}

fn write_line(w: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut s = resp.encode();
    s.push('\n');
    w.write_all(s.as_bytes())
}

/// Fires `site` against the connection's chaos plan, if armed.
fn chaos_fires(
    shared: &Shared,
    chaos: &Option<FaultInjector>,
    site: FaultSite,
    wire_qs: &QuerySet,
) -> bool {
    match chaos {
        Some(inj) if inj.check(site, wire_qs).is_some() => {
            shared.metrics.wire_faults.inc();
            true
        }
        _ => false,
    }
}

fn serve_connection(shared: &Shared, stream: TcpStream) -> std::io::Result<()> {
    // The read timeout doubles as the drain poll interval: an idle
    // connection notices a drain within ~50 ms instead of pinning the
    // server open forever.
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut chaos: Option<FaultInjector> =
        shared.config.chaos_seed.map(FaultInjector::seeded_wire);
    // Wire faults target the connection, not a specific query slot.
    let wire_qs = QuerySet::full(1);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()),
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // `read_line` may have buffered a partial line; keep it and
                // retry so a slow writer is not misread as a torn request.
                // ordering: Acquire pairs with `begin_drain`'s AcqRel swap.
                if shared.draining.load(Ordering::Acquire) && line.is_empty() {
                    return Ok(());
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
        if chaos_fires(shared, &chaos, FaultSite::WireTornRead, &wire_qs) {
            // Torn read: the request line arrives cut in half. The parser
            // must answer with a typed error, never hang or panic.
            let mut keep = line.len() / 2;
            while keep > 0 && !line.is_char_boundary(keep) {
                keep -= 1;
            }
            line.truncate(keep);
        }
        let req = Request::parse(&line);
        line.clear();
        let keep_alive = match req {
            Err(e) => {
                shared.metrics.protocol_errors.inc();
                write_line(&mut writer, &Response::Err(e))?;
                true
            }
            Ok(Request::Ping) => {
                write_line(&mut writer, &Response::Pong)?;
                true
            }
            Ok(Request::Faults) => {
                let names =
                    FaultSite::ALL.iter().map(|s| s.name().to_string()).collect();
                write_line(&mut writer, &Response::Sites(names))?;
                true
            }
            Ok(Request::Chaos { seed }) => {
                chaos = Some(FaultInjector::seeded_wire(seed));
                write_line(&mut writer, &Response::Ok { rows: 0, checksum: seed })?;
                true
            }
            Ok(Request::Drain) => {
                begin_drain(shared);
                write_line(&mut writer, &Response::Ok { rows: 0, checksum: 0 })?;
                true
            }
            Ok(Request::Query { sql, want_rows, deadline_ms }) => {
                serve_query(shared, &mut writer, &chaos, &wire_qs, sql, want_rows, deadline_ms)?
            }
        };
        if !keep_alive {
            return Ok(());
        }
    }
}

/// Runs one `QUERY` request end to end; returns `false` when an injected
/// disconnect dropped the connection mid-stream.
fn serve_query(
    shared: &Shared,
    writer: &mut TcpStream,
    chaos: &Option<FaultInjector>,
    wire_qs: &QuerySet,
    sql: String,
    want_rows: bool,
    deadline_ms: Option<u64>,
) -> std::io::Result<bool> {
    let started = Instant::now();
    // Admission control: shed before any work is queued.
    // ordering: Acquire on `draining` pairs with `begin_drain`'s AcqRel
    // swap; Acquire on `pressure` pairs with the engine loop's Release
    // store so the shed decision sees the batch that raised the level.
    let shed_reason = if shared.draining.load(Ordering::Acquire) {
        Some("server is draining; no new admissions".to_string())
    } else if shared.pressure.load(Ordering::Acquire) >= 2 { // ordering: as above.
        Some("engine memory pressure; admissions paused".to_string())
    } else {
        None
    };
    if let Some(reason) = shed_reason {
        shared.metrics.shed.inc();
        write_line(writer, &Response::Err(Error::Overloaded(reason)))?;
        return Ok(true);
    }
    let (tx, rx) = sync_channel(1);
    let job = Job { sql, want_rows, deadline_ms, enqueued_at: started, reply: tx };
    let depth = match shared.queue.push(job) {
        Ok(depth) => depth,
        Err(e) => {
            shared.metrics.shed.inc();
            write_line(writer, &Response::Err(e))?;
            return Ok(true);
        }
    };
    // ordering: AcqRel drain-accounting counter; shutdown reads it with
    // Acquire after joining the threads that update it.
    shared.admitted.fetch_add(1, Ordering::AcqRel);
    shared.metrics.admitted.inc();
    shared.metrics.queue_depth.set(depth as u64);
    // Exactly one terminal outcome arrives per admitted job; the engine
    // loop cannot exit before delivering it (drain pops the full backlog).
    let outcome = match rx.recv() {
        Ok(o) => o,
        Err(_) => JobOutcome::Failed(Error::Internal(
            "engine loop dropped the job without an outcome".into(),
        )),
    };
    let keep_alive = match outcome {
        JobOutcome::Done { rows, checksum, collected } => {
            if chaos_fires(shared, chaos, FaultSite::WireSlowClient, wire_qs) {
                // Slow client: stall before streaming so the engine side
                // demonstrably keeps running (results are already
                // materialized; only this connection pays).
                thread::sleep(Duration::from_millis(30));
            }
            let mut disconnected = false;
            for row in &collected {
                if chaos_fires(shared, chaos, FaultSite::WireDisconnect, wire_qs) {
                    disconnected = true;
                    break;
                }
                write_line(writer, &Response::Row(row.clone()))?;
                shared.metrics.rows_streamed.inc();
            }
            if !disconnected
                && chaos_fires(shared, chaos, FaultSite::WireDisconnect, wire_qs)
            {
                disconnected = true;
            }
            if !disconnected {
                write_line(writer, &Response::Ok { rows, checksum })?;
            }
            !disconnected
        }
        JobOutcome::Failed(e) => {
            write_line(writer, &Response::Err(e))?;
            true
        }
    };
    let lat = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    shared.metrics.latency_us.record(lat);
    Ok(keep_alive)
}

fn engine_loop(shared: &Shared) {
    loop {
        let Some(jobs) = shared.queue.pop_batch(shared.config.batch_max) else {
            break;
        };
        shared.metrics.queue_depth.set(shared.queue.depth() as u64);
        process_batch(shared, jobs);
    }
    shared.metrics.queue_depth.set(0);
}

fn process_batch(shared: &Shared, jobs: Vec<Job>) {
    let catalog = shared.snapshot_catalog();
    let mut engine = RouletteEngine::new(&catalog, shared.config.engine.clone());
    engine.set_recorder(shared.telemetry.clone());
    let mut session = engine.session(jobs.len());
    let collecting =
        jobs.iter().any(|j| j.want_rows) && session.collect_rows().is_ok();
    let mut admitted: Vec<Admitted> = Vec::new();
    for job in jobs {
        match parse(&catalog, &job.sql).and_then(|q| session.admit(q)) {
            Ok(qid) => {
                let budget_ms = job.deadline_ms.or(shared.config.default_deadline_ms);
                let deadline =
                    budget_ms.map(|ms| job.enqueued_at + Duration::from_millis(ms));
                admitted.push(Admitted { qid, job, deadline, budget_ms });
            }
            Err(e) => {
                shared.metrics.failed.inc();
                // ordering: AcqRel drain-accounting counter; see DrainReport.
                shared.terminal.fetch_add(1, Ordering::AcqRel);
                let _ = job.reply.send(JobOutcome::Failed(e));
            }
        }
    }
    if admitted.is_empty() {
        return;
    }
    session.close();
    run_with_deadlines(&session, &admitted);
    // ordering: Release pairs with admission's Acquire load so shedding
    // observes the pressure level the finished batch produced.
    shared.pressure.store(session.stats().memory_pressure, Ordering::Release);
    for a in admitted {
        let outcome = match session.terminal_status(a.qid) {
            Some(CompletionStatus::Complete) => {
                let res = session.result(a.qid);
                let collected = if a.job.want_rows && collecting {
                    session.take_collected(a.qid)
                } else {
                    Vec::new()
                };
                shared.metrics.completed.inc();
                JobOutcome::Done { rows: res.rows, checksum: res.checksum, collected }
            }
            Some(CompletionStatus::Quarantined) => {
                let err = session.query_error(a.qid).unwrap_or_else(|| {
                    Error::Internal("quarantined without an attributed error".into())
                });
                if matches!(err, Error::DeadlineExceeded { .. }) {
                    shared.metrics.deadline_exceeded.inc();
                }
                shared.metrics.failed.inc();
                JobOutcome::Failed(err)
            }
            None => {
                // ordering: AcqRel drain-accounting counter; see DrainReport.
                shared.leaked.fetch_add(1, Ordering::AcqRel);
                shared.metrics.failed.inc();
                JobOutcome::Failed(Error::Internal(
                    "query left the session without a terminal status".into(),
                ))
            }
        };
        // ordering: AcqRel drain-accounting counter; see DrainReport.
        shared.terminal.fetch_add(1, Ordering::AcqRel);
        let _ = a.job.reply.send(outcome);
    }
    shared.metrics.batches.inc();
}

/// One query admitted into a batch session, with its deadline bookkeeping.
struct Admitted {
    qid: QueryId,
    job: Job,
    deadline: Option<Instant>,
    budget_ms: Option<u64>,
}

/// Runs the session's workers with a sweeper thread enforcing per-query
/// deadlines through the engine's (idempotent, thread-safe) quarantine.
fn run_with_deadlines(session: &Session<'_>, admitted: &[Admitted]) {
    if !admitted.iter().any(|a| a.deadline.is_some()) {
        session.run_workers();
        return;
    }
    let stop = AtomicBool::new(false);
    thread::scope(|scope| {
        let sweeper = scope.spawn(|| {
            // ordering: Acquire pairs with the Release store after
            // `run_workers` returns; the sweeper exits having seen every
            // terminal status the workers published.
            while !stop.load(Ordering::Acquire) {
                let now = Instant::now();
                for a in admitted {
                    let Some(dl) = a.deadline else { continue };
                    if now >= dl && session.terminal_status(a.qid).is_none() {
                        let ms = a.budget_ms.unwrap_or_default();
                        session.quarantine(
                            a.qid,
                            Error::DeadlineExceeded {
                                query: a.qid,
                                message: format!("budget of {ms} ms exceeded"),
                            },
                        );
                    }
                }
                thread::park_timeout(Duration::from_millis(1));
            }
        });
        session.run_workers();
        // ordering: Release pairs with the sweeper's Acquire poll.
        stop.store(true, Ordering::Release);
        sweeper.thread().unpark();
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{demo_dataset, demo_sql};
    use std::io::BufRead;

    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let writer = TcpStream::connect(addr).unwrap();
            let reader = BufReader::new(writer.try_clone().unwrap());
            Client { reader, writer }
        }

        fn send(&mut self, req: &Request) {
            let mut s = req.encode();
            s.push('\n');
            self.writer.write_all(s.as_bytes()).unwrap();
        }

        fn recv(&mut self) -> Response {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            Response::parse(&line).unwrap()
        }

        /// Reads ROW lines until the terminal OK/ERR, returning both.
        fn recv_result(&mut self) -> (Vec<Vec<i64>>, Response) {
            let mut rows = Vec::new();
            loop {
                match self.recv() {
                    Response::Row(r) => rows.push(r),
                    terminal => return (rows, terminal),
                }
            }
        }
    }

    fn start_demo(config: ServerConfig) -> Server {
        let ds = demo_dataset(11);
        Server::start(config, ds.catalog, Telemetry::with_defaults()).unwrap()
    }

    #[test]
    fn ping_faults_and_unknown_verbs() {
        let server = start_demo(ServerConfig::default());
        let mut c = Client::connect(server.local_addr());
        c.send(&Request::Ping);
        assert_eq!(c.recv(), Response::Pong);
        c.send(&Request::Faults);
        match c.recv() {
            Response::Sites(names) => {
                assert_eq!(names.len(), FaultSite::ALL.len());
                assert!(names.iter().any(|n| n == "wire-torn-read"));
            }
            other => panic!("expected SITES, got {other:?}"),
        }
        c.writer.write_all(b"BOGUS\n").unwrap();
        match c.recv() {
            Response::Err(Error::ProtocolViolation(_)) => {}
            other => panic!("expected protocol violation, got {other:?}"),
        }
        let report = server.shutdown();
        assert_eq!(report.leaked, 0);
        assert_eq!(report.admitted, 0);
    }

    #[test]
    fn queries_execute_and_match_direct_execution() {
        let server = start_demo(ServerConfig::default());
        let pool = demo_sql(11, 4).unwrap();
        let mut c = Client::connect(server.local_addr());
        let mut wire_results = Vec::new();
        for sql in &pool {
            c.send(&Request::Query { sql: sql.clone(), want_rows: false, deadline_ms: None });
            match c.recv_result() {
                (rows, Response::Ok { rows: n, checksum }) => {
                    assert!(rows.is_empty(), "did not ask for rows");
                    wire_results.push((n, checksum));
                }
                (_, other) => panic!("query failed: {other:?}"),
            }
        }
        // The same queries, executed directly, agree (history independence
        // means batching at the server cannot change per-query results).
        let ds = demo_dataset(11);
        let engine = RouletteEngine::new(&ds.catalog, EngineConfig::default());
        for (sql, (n, sum)) in pool.iter().zip(&wire_results) {
            let q = parse(&ds.catalog, sql).unwrap();
            let out = engine.execute_batch(std::slice::from_ref(&q)).unwrap();
            assert_eq!((out.per_query[0].rows, out.per_query[0].checksum), (*n, *sum), "{sql}");
        }
        let report = server.shutdown();
        assert_eq!(report.leaked, 0);
        assert_eq!(report.admitted, report.terminal);
    }

    #[test]
    fn rows_stream_before_terminal_ok() {
        let server = start_demo(ServerConfig::default());
        let pool = demo_sql(11, 2).unwrap();
        // Pool index 1 projects the hub's sel column.
        let sql = pool.get(1).unwrap().clone();
        let mut c = Client::connect(server.local_addr());
        c.send(&Request::Query { sql, want_rows: true, deadline_ms: None });
        let (rows, terminal) = c.recv_result();
        match terminal {
            Response::Ok { rows: n, .. } => {
                assert_eq!(rows.len() as u64, n, "every row streamed");
                assert!(n > 0, "projection query returns rows");
            }
            other => panic!("expected OK, got {other:?}"),
        }
        assert_eq!(server.shutdown().leaked, 0);
    }

    #[test]
    fn parse_errors_are_typed_not_fatal() {
        let server = start_demo(ServerConfig::default());
        let mut c = Client::connect(server.local_addr());
        c.send(&Request::Query {
            sql: "SELECT count(*) FROM no_such_relation".into(),
            want_rows: false,
            deadline_ms: None,
        });
        match c.recv() {
            Response::Err(e) => assert!(
                !matches!(e, Error::ProtocolViolation(_)),
                "parse/schema error expected, got {e}"
            ),
            other => panic!("expected ERR, got {other:?}"),
        }
        // The connection survives.
        c.send(&Request::Ping);
        assert_eq!(c.recv(), Response::Pong);
        let report = server.shutdown();
        assert_eq!(report.leaked, 0);
        assert_eq!(report.admitted, report.terminal);
    }

    #[test]
    fn drain_request_sheds_followups_with_overloaded() {
        let server = start_demo(ServerConfig::default());
        let mut c = Client::connect(server.local_addr());
        c.send(&Request::Drain);
        assert_eq!(c.recv(), Response::Ok { rows: 0, checksum: 0 });
        assert!(server.is_draining());
        c.send(&Request::Query {
            sql: "SELECT count(*) FROM store_sales".into(),
            want_rows: false,
            deadline_ms: None,
        });
        match c.recv() {
            Response::Err(Error::Overloaded(m)) => assert!(m.contains("drain"), "{m}"),
            other => panic!("expected overloaded, got {other:?}"),
        }
        let report = server.shutdown();
        assert_eq!(report.leaked, 0);
        assert!(report.shed >= 1);
    }

    #[test]
    fn chaos_connection_resolves_to_typed_errors_and_zero_leaks() {
        // Chaos plans are per-connection and deterministic; every wire
        // fault degrades to a typed error or a clean disconnect, and the
        // engine still drives every admitted query to a terminal status.
        let server = start_demo(ServerConfig::default());
        let pool = demo_sql(11, 6).unwrap();
        for seed in 0..4u64 {
            let mut c = Client::connect(server.local_addr());
            c.send(&Request::Chaos { seed });
            assert_eq!(c.recv(), Response::Ok { rows: 0, checksum: seed });
            for sql in &pool {
                c.send(&Request::Query {
                    sql: sql.clone(),
                    want_rows: true,
                    deadline_ms: None,
                });
                // A torn read may mangle the request (typed ERR), a
                // disconnect may drop the connection (read returns 0 /
                // error); both are acceptable terminal behaviours.
                let mut line = String::new();
                let healthy = loop {
                    line.clear();
                    match c.reader.read_line(&mut line) {
                        Ok(0) | Err(_) => break false,
                        Ok(_) => match Response::parse(&line) {
                            Ok(Response::Row(_)) => continue,
                            Ok(_) => break true,
                            Err(_) => break false,
                        },
                    }
                };
                if !healthy {
                    break; // reconnect for the next seed
                }
            }
        }
        let report = server.shutdown();
        assert_eq!(report.leaked, 0, "{report:?}");
        assert_eq!(report.admitted, report.terminal, "{report:?}");
    }

    #[test]
    fn stream_mode_serves_churning_snapshots_without_leaks() {
        let stream = StreamServeConfig { seed: 11, epoch_ms: 5, window: 3 };
        let server = Server::start_stream(
            ServerConfig::default(),
            stream,
            Telemetry::with_defaults(),
        )
        .unwrap();
        let pool = crate::workload::stream_demo_sql(11, 6).unwrap();
        let mut c = Client::connect(server.local_addr());
        // Drive queries across many epoch swaps; the pool must stay valid
        // against every snapshot and every query must terminate cleanly.
        let deadline = Instant::now() + Duration::from_millis(300);
        let mut ok = 0u64;
        while Instant::now() < deadline {
            for sql in &pool {
                c.send(&Request::Query {
                    sql: sql.clone(),
                    want_rows: false,
                    deadline_ms: None,
                });
                match c.recv_result() {
                    (_, Response::Ok { .. }) => ok += 1,
                    (_, other) => panic!("stream query failed: {other:?}"),
                }
            }
        }
        assert!(ok >= pool.len() as u64, "at least one full pass served");
        // The epoch thread expired tuples out of the window while serving.
        let expired = server
            .telemetry()
            .registry()
            .counter("roulette_window_expired_tuples_total", "")
            .total();
        assert!(expired > 0, "window expiry ran during the serve");
        let report = server.shutdown();
        assert_eq!(report.leaked, 0, "{report:?}");
        assert_eq!(report.admitted, report.terminal, "{report:?}");
    }

    #[test]
    fn deadline_exceeded_is_a_distinct_wire_error() {
        // A 200k-row hub makes per-query work comfortably exceed a 1 ms
        // budget, so the sweeper must evict.
        use roulette_storage::datagen::chains::{generate, ChainsParams};
        let params = ChainsParams { chains: 2, relations: 5, domain: 64, hub_rows: 200_000 };
        let ds = generate(params, 5);
        let sql = {
            let qs = roulette_query::generator::chains_queries(&ds, 1, 5).unwrap();
            crate::protocol::Request::Query {
                sql: roulette_query::to_sql(&ds.catalog, qs.first().unwrap()),
                want_rows: false,
                deadline_ms: Some(1),
            }
        };
        let server =
            Server::start(ServerConfig::default(), ds.catalog, Telemetry::with_defaults())
                .unwrap();
        let mut c = Client::connect(server.local_addr());
        c.send(&sql);
        match c.recv() {
            Response::Err(Error::DeadlineExceeded { query, message }) => {
                assert_eq!(query, QueryId(0));
                assert!(message.contains("1 ms"), "{message}");
            }
            other => panic!("expected deadline-exceeded, got {other:?}"),
        }
        assert_eq!(server.metrics().deadline_exceeded.total(), 1);
        // The telemetry ring carries the dedicated event.
        let events = server.telemetry().events().snapshot();
        assert!(
            events.iter().any(|e| e.kind.name() == "deadline-exceeded"),
            "{events:?}"
        );
        let report = server.shutdown();
        assert_eq!(report.leaked, 0);
        assert_eq!(report.admitted, report.terminal);
    }
}
