//! Bounded admission queue with load shedding and drain semantics.
//!
//! Connection handlers push [`Job`]s; the engine loop pops them in
//! micro-batches and executes each batch as one shared session (the
//! paper's batch-sharing, applied at the serving layer). The queue is the
//! server's single overload valve:
//!
//! * **depth shedding** — a push against a full queue is refused with
//!   [`Error::Overloaded`] *before* any work is done, so the queue depth
//!   bounds both memory and worst-case queueing delay;
//! * **drain** — [`AdmissionQueue::close`] atomically refuses new pushes
//!   (also [`Error::Overloaded`], marked as draining) while letting the
//!   engine loop pop everything already admitted, so every admitted job
//!   reaches a terminal outcome and nothing is admitted that would not.
//!
//! Every job carries a rendezvous channel; the engine loop sends exactly
//! one terminal [`JobOutcome`] per admitted job. The channel is the only
//! coupling between the wire layer and the engine loop — a slow client
//! never blocks the engine, because results are handed over materialized
//! and the handler thread alone pays the socket-write backpressure.

use roulette_core::{Error, Result};
use std::collections::VecDeque;
use std::sync::mpsc::SyncSender;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// One admitted query, from the wire to the engine loop.
#[derive(Debug)]
pub struct Job {
    /// SQL text, parsed by the engine loop against the hosted catalog.
    pub sql: String,
    /// Whether the client asked for `ROW` streaming.
    pub want_rows: bool,
    /// Client-supplied deadline in milliseconds (from admission), if any.
    pub deadline_ms: Option<u64>,
    /// When the job entered the queue; deadlines count from here, so time
    /// spent queued is charged against the budget.
    pub enqueued_at: Instant,
    /// Rendezvous for the single terminal outcome.
    pub reply: SyncSender<JobOutcome>,
}

/// The terminal outcome of a job. Exactly one is sent per admitted job.
#[derive(Debug)]
pub enum JobOutcome {
    /// The query ran to completion.
    Done {
        /// Result cardinality.
        rows: u64,
        /// Order-independent result checksum.
        checksum: u64,
        /// Projected rows, only populated when the job asked for them.
        collected: Vec<Vec<i64>>,
    },
    /// The query failed with a typed error (parse, quarantine, deadline…).
    Failed(Error),
}

#[derive(Debug, Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The bounded, closable job queue between handlers and the engine loop.
#[derive(Debug)]
pub struct AdmissionQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl AdmissionQueue {
    /// A queue admitting at most `capacity` (≥ 1) waiting jobs.
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            capacity: capacity.max(1),
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Maximum number of waiting jobs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits `job`, returning the queue depth after the push. Refused
    /// with [`Error::Overloaded`] when the queue is full or draining — in
    /// that case the job is dropped without a [`JobOutcome`], and the
    /// caller answers the client directly with the returned error.
    pub fn push(&self, job: Job) -> Result<usize> {
        let mut st = self.lock();
        if st.closed {
            return Err(Error::Overloaded("server is draining; no new admissions".into()));
        }
        if st.jobs.len() >= self.capacity {
            return Err(Error::Overloaded(format!(
                "admission queue at capacity {}; retry after backoff",
                self.capacity
            )));
        }
        st.jobs.push_back(job);
        let depth = st.jobs.len();
        drop(st);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks until at least one job is available and pops up to `max` of
    /// them, or returns `None` once the queue is closed *and* empty — the
    /// engine loop's exit condition, which by construction happens only
    /// after every admitted job has been handed out.
    pub fn pop_batch(&self, max: usize) -> Option<Vec<Job>> {
        let mut st = self.lock();
        loop {
            if !st.jobs.is_empty() {
                let n = st.jobs.len().min(max.max(1));
                return Some(st.jobs.drain(..n).collect());
            }
            if st.closed {
                return None;
            }
            st = match self.ready.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Closes the queue to new admissions and wakes the engine loop so it
    /// can drain what remains. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Current number of waiting jobs.
    pub fn depth(&self) -> usize {
        self.lock().jobs.len()
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;
    use std::sync::Arc;

    fn job(sql: &str) -> (Job, std::sync::mpsc::Receiver<JobOutcome>) {
        let (tx, rx) = sync_channel(1);
        (
            Job {
                sql: sql.into(),
                want_rows: false,
                deadline_ms: None,
                enqueued_at: Instant::now(),
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn push_pop_preserves_fifo_order() {
        let q = AdmissionQueue::new(4);
        let (a, _ra) = job("a");
        let (b, _rb) = job("b");
        assert_eq!(q.push(a).unwrap(), 1);
        assert_eq!(q.push(b).unwrap(), 2);
        let batch = q.pop_batch(8).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].sql, "a");
        assert_eq!(batch[1].sql, "b");
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn full_queue_sheds_with_overloaded() {
        let q = AdmissionQueue::new(1);
        let (a, _ra) = job("a");
        q.push(a).unwrap();
        let (b, _rb) = job("b");
        let e = q.push(b).unwrap_err();
        assert!(matches!(e, Error::Overloaded(_)), "{e}");
        assert!(e.to_string().contains("capacity"));
    }

    #[test]
    fn closed_queue_sheds_but_drains_backlog() {
        let q = AdmissionQueue::new(4);
        let (a, _ra) = job("a");
        q.push(a).unwrap();
        q.close();
        let (b, _rb) = job("b");
        let e = q.push(b).unwrap_err();
        assert!(matches!(e, Error::Overloaded(_)), "{e}");
        assert!(e.to_string().contains("draining"), "{e}");
        // The backlog is still handed out, then the queue reports done.
        assert_eq!(q.pop_batch(8).unwrap().len(), 1);
        assert!(q.pop_batch(8).is_none());
        assert!(q.is_closed());
    }

    #[test]
    fn pop_batch_blocks_until_work_or_close() {
        let q = Arc::new(AdmissionQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_batch(4));
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (a, _ra) = job("a");
        q.push(a).unwrap();
        let batch = h.join().unwrap();
        assert_eq!(batch.unwrap().len(), 1);

        let q3 = Arc::clone(&q);
        let h = std::thread::spawn(move || q3.pop_batch(4));
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert!(h.join().unwrap().is_none());
    }

    #[test]
    fn batch_size_is_capped() {
        let q = AdmissionQueue::new(8);
        let mut rxs = Vec::new();
        for i in 0..5 {
            let (j, rx) = job(&format!("q{i}"));
            q.push(j).unwrap();
            rxs.push(rx);
        }
        assert_eq!(q.pop_batch(2).unwrap().len(), 2);
        assert_eq!(q.depth(), 3);
        // max of 0 is clamped to 1 rather than spinning forever.
        assert_eq!(q.pop_batch(0).unwrap().len(), 1);
    }
}
