//! Server-level metrics, registered into the shared telemetry registry so
//! one Prometheus scrape covers the engine and the serving frontend.

use roulette_telemetry::{Gauge, Histogram, MetricsRegistry, ShardedCounter};
use std::sync::Arc;

/// Counters and gauges for the serving frontend. All handles are cheap
/// sharded/atomic cells; recording is wait-free.
#[derive(Debug, Clone)]
pub struct ServerMetrics {
    /// Queries admitted into the queue.
    pub admitted: Arc<ShardedCounter>,
    /// Queries refused with `overloaded` (depth, memory pressure, drain).
    pub shed: Arc<ShardedCounter>,
    /// Queries that reached `OK`.
    pub completed: Arc<ShardedCounter>,
    /// Queries that reached a terminal `ERR` (excluding sheds).
    pub failed: Arc<ShardedCounter>,
    /// Queries evicted for blowing their deadline.
    pub deadline_exceeded: Arc<ShardedCounter>,
    /// Request lines that failed to parse.
    pub protocol_errors: Arc<ShardedCounter>,
    /// Connections accepted over the server's lifetime.
    pub connections: Arc<ShardedCounter>,
    /// Micro-batches executed by the engine loop.
    pub batches: Arc<ShardedCounter>,
    /// `ROW` lines streamed to clients.
    pub rows_streamed: Arc<ShardedCounter>,
    /// Wire faults injected by chaos plans.
    pub wire_faults: Arc<ShardedCounter>,
    /// Jobs waiting in the admission queue.
    pub queue_depth: Arc<Gauge>,
    /// Currently open client connections.
    pub active_connections: Arc<Gauge>,
    /// 1 while the server is draining, else 0.
    pub draining: Arc<Gauge>,
    /// End-to-end query latency in microseconds (admission to terminal
    /// response line), HDR-style power-of-two buckets.
    pub latency_us: Arc<Histogram>,
}

impl ServerMetrics {
    /// Registers every server metric in `reg` (idempotent per name).
    pub fn register(reg: &MetricsRegistry) -> Self {
        ServerMetrics {
            admitted: reg.counter(
                "roulette_server_admitted_total",
                "Queries admitted into the serving queue",
            ),
            shed: reg.counter(
                "roulette_server_shed_total",
                "Queries refused with overloaded (depth, pressure, or drain)",
            ),
            completed: reg.counter(
                "roulette_server_completed_total",
                "Queries answered with a terminal OK",
            ),
            failed: reg.counter(
                "roulette_server_failed_total",
                "Queries answered with a terminal ERR (excluding sheds)",
            ),
            deadline_exceeded: reg.counter(
                "roulette_server_deadline_exceeded_total",
                "Queries evicted for exceeding their deadline budget",
            ),
            protocol_errors: reg.counter(
                "roulette_server_protocol_errors_total",
                "Request lines refused as protocol violations",
            ),
            connections: reg.counter(
                "roulette_server_connections_total",
                "Client connections accepted",
            ),
            batches: reg.counter(
                "roulette_server_batches_total",
                "Micro-batches executed as shared sessions",
            ),
            rows_streamed: reg.counter(
                "roulette_server_rows_streamed_total",
                "Result ROW lines written to clients",
            ),
            wire_faults: reg.counter(
                "roulette_server_wire_faults_total",
                "Wire-layer faults injected by chaos plans",
            ),
            queue_depth: reg.gauge(
                "roulette_server_queue_depth",
                "Jobs waiting in the admission queue",
            ),
            active_connections: reg.gauge(
                "roulette_server_active_connections",
                "Currently open client connections",
            ),
            draining: reg.gauge(
                "roulette_server_draining",
                "1 while the server is draining, else 0",
            ),
            latency_us: reg.histogram(
                "roulette_server_latency_us",
                "End-to-end query latency, microseconds",
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_and_renders() {
        let reg = MetricsRegistry::new();
        let m = ServerMetrics::register(&reg);
        m.admitted.inc();
        m.queue_depth.set(3);
        m.latency_us.record(1500);
        let mut out = Vec::new();
        reg.render_prometheus(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("roulette_server_admitted_total 1"), "{text}");
        assert!(text.contains("roulette_server_queue_depth 3"), "{text}");
        assert!(text.contains("roulette_server_latency_us"), "{text}");
    }

    #[test]
    fn register_is_idempotent_per_name() {
        let reg = MetricsRegistry::new();
        let a = ServerMetrics::register(&reg);
        let b = ServerMetrics::register(&reg);
        a.admitted.inc();
        b.admitted.inc();
        assert_eq!(a.admitted.total(), 2);
    }
}
