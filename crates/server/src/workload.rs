//! The demo dataset the server hosts and the SQL pool clients draw from.
//!
//! Both sides derive everything from a shared `seed`, so a load generator
//! on the other end of a socket can produce SQL that names exactly the
//! relations and columns the server's catalog holds without any schema
//! exchange: same seed, same catalog, same pool.

use roulette_core::Result;
use roulette_query::generator::chains_queries;
use roulette_query::to_sql;
use roulette_storage::datagen::chains::{generate, ChainsDataset, ChainsParams};
use roulette_stream::{ArrivalGen, WorkloadParams};

/// Parameters of the hosted demo dataset: a small Fig. 15 chains schema
/// (hub + 2 chains of 2 relations), sized to keep per-query work in the
/// low milliseconds so serving tests exercise concurrency, not scan time.
pub const DEMO_PARAMS: ChainsParams =
    ChainsParams { chains: 2, relations: 5, domain: 64, hub_rows: 2048 };

/// Generates the demo dataset deterministically from `seed`.
pub fn demo_dataset(seed: u64) -> ChainsDataset {
    generate(DEMO_PARAMS, seed)
}

/// Generates `n` SQL strings against the `seed`-derived demo catalog.
/// Every other query projects the hub's selection column so `ROWS` mode
/// has rows to stream; the rest are `count(*)` queries.
pub fn demo_sql(seed: u64, n: usize) -> Result<Vec<String>> {
    let ds = demo_dataset(seed);
    let hub = ds.meta.hub;
    let sel = ds.catalog.relation(hub).column_id("sel")?;
    let mut queries = chains_queries(&ds, n, seed)?;
    for (i, q) in queries.iter_mut().enumerate() {
        if i % 2 == 1 {
            q.projections = vec![(hub, sel)];
        }
    }
    Ok(queries.iter().map(|q| to_sql(&ds.catalog, q)).collect())
}

/// Generates `n` SQL strings against the STREAM demo mode's star schema
/// (see [`crate::StreamServeConfig`]). The schema is derived from `seed`
/// exactly as the server derives it, and only relation/column *names* go
/// into the SQL, so the pool stays valid across every churning snapshot.
/// Every other query is demoted to `count(*)` so `ROWS` mode has both
/// streaming and counting traffic.
pub fn stream_demo_sql(seed: u64, n: usize) -> Result<Vec<String>> {
    let mut gen = ArrivalGen::new(WorkloadParams::default(), seed);
    let mut store = gen.store()?;
    gen.generate(&mut store, 1)?;
    let catalog = store.snapshot()?;
    let mut queries = gen.queries(&catalog, n)?;
    for (i, q) in queries.iter_mut().enumerate() {
        if i % 2 == 0 {
            q.projections.clear();
        }
    }
    Ok(queries.iter().map(|q| to_sql(&catalog, q)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use roulette_query::parse;

    #[test]
    fn demo_sql_parses_against_demo_catalog() {
        let ds = demo_dataset(7);
        let pool = demo_sql(7, 8).unwrap();
        assert_eq!(pool.len(), 8);
        let mut with_rows = 0;
        for sql in &pool {
            let q = parse(&ds.catalog, sql).unwrap();
            q.validate(&ds.catalog).unwrap();
            if !q.projections.is_empty() {
                with_rows += 1;
            }
        }
        assert_eq!(with_rows, 4, "half the pool streams rows");
    }

    #[test]
    fn same_seed_same_pool() {
        assert_eq!(demo_sql(3, 4).unwrap(), demo_sql(3, 4).unwrap());
        assert_ne!(demo_sql(3, 4).unwrap(), demo_sql(4, 4).unwrap());
    }

    #[test]
    fn stream_demo_sql_parses_and_mixes_rows_with_counts() {
        let pool = stream_demo_sql(11, 8).unwrap();
        assert_eq!(pool.len(), 8);
        assert_eq!(stream_demo_sql(11, 8).unwrap(), pool, "seed-deterministic");
        // The pool must parse against a *later* churned snapshot, not just
        // the epoch-1 catalog it was generated from.
        let mut gen = ArrivalGen::new(WorkloadParams::default(), 11);
        let mut store = gen.store().unwrap();
        for now in 1..=3 {
            gen.generate(&mut store, now).unwrap();
            store.advance(now, 2);
        }
        let catalog = store.snapshot().unwrap();
        let mut with_rows = 0;
        for sql in &pool {
            let q = parse(&catalog, sql).unwrap();
            q.validate(&catalog).unwrap();
            if !q.projections.is_empty() {
                with_rows += 1;
            }
        }
        assert_eq!(with_rows, 4, "half the pool streams rows");
    }
}
