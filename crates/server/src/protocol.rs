//! The hand-rolled line protocol spoken over TCP.
//!
//! Every request and every response is one `\n`-terminated UTF-8 line, so
//! the protocol can be driven from `nc` and parsed without a framing
//! layer. Requests:
//!
//! ```text
//! PING
//! QUERY [ROWS] [DEADLINE=<ms>] <sql>
//! CHAOS <seed>
//! FAULTS
//! DRAIN
//! ```
//!
//! Responses (a `QUERY` yields zero or more `ROW` lines followed by
//! exactly one terminal `OK` or `ERR` line):
//!
//! ```text
//! PONG
//! ROW <v1> <v2> …
//! OK <rows> <checksum>
//! ERR <wire-code> <query|-> <message…>
//! SITES <site-name…>
//! ```
//!
//! The `ERR` line carries the `(code, query, message)` triple that
//! [`Error::from_wire`] reconstructs, so a typed error survives the wire
//! round-trip exactly — including the query attribution of `query-fault`
//! and `deadline-exceeded`. Malformed lines in either direction decode to
//! [`Error::ProtocolViolation`] rather than being dropped.

use roulette_core::{Error, QueryId, Result};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Parse and execute one SPJ query.
    Query {
        /// The SQL text (the SPJ fragment `roulette_query::parse` accepts).
        sql: String,
        /// Stream projected result rows back as `ROW` lines.
        want_rows: bool,
        /// Per-query deadline in milliseconds, measured from admission.
        deadline_ms: Option<u64>,
    },
    /// Arm the connection's deterministic wire-fault plan.
    Chaos {
        /// Seed for [`roulette_exec::FaultInjector::seeded_wire`].
        seed: u64,
    },
    /// List every injectable fault site.
    Faults,
    /// Begin a graceful drain of the whole server.
    Drain,
}

impl Request {
    /// Parses one request line. Unknown verbs, missing arguments, and bad
    /// numbers all surface as [`Error::ProtocolViolation`].
    pub fn parse(line: &str) -> Result<Request> {
        let line = line.trim();
        let mut parts = line.splitn(2, ' ');
        let verb = parts.next().unwrap_or_default();
        let rest = parts.next().unwrap_or_default().trim();
        match verb {
            "PING" => Ok(Request::Ping),
            "FAULTS" => Ok(Request::Faults),
            "DRAIN" => Ok(Request::Drain),
            "CHAOS" => match rest.parse::<u64>() {
                Ok(seed) => Ok(Request::Chaos { seed }),
                Err(_) => Err(Error::ProtocolViolation(format!(
                    "CHAOS requires a u64 seed, got {rest:?}"
                ))),
            },
            "QUERY" => Self::parse_query(rest),
            _ => Err(Error::ProtocolViolation(format!(
                "unknown request verb {verb:?}"
            ))),
        }
    }

    fn parse_query(mut rest: &str) -> Result<Request> {
        let mut want_rows = false;
        let mut deadline_ms = None;
        loop {
            if let Some(r) = rest.strip_prefix("ROWS ") {
                want_rows = true;
                rest = r.trim_start();
                continue;
            }
            if let Some(r) = rest.strip_prefix("DEADLINE=") {
                let mut halves = r.splitn(2, ' ');
                let ms = halves.next().unwrap_or_default();
                match ms.parse::<u64>() {
                    Ok(v) if v > 0 => deadline_ms = Some(v),
                    _ => {
                        return Err(Error::ProtocolViolation(format!(
                            "DEADLINE requires a positive millisecond count, got {ms:?}"
                        )))
                    }
                }
                rest = halves.next().unwrap_or_default().trim_start();
                continue;
            }
            break;
        }
        if rest.is_empty() {
            return Err(Error::ProtocolViolation("QUERY requires SQL text".into()));
        }
        Ok(Request::Query { sql: rest.to_string(), want_rows, deadline_ms })
    }

    /// Renders the request as its wire line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Ping => "PING".into(),
            Request::Faults => "FAULTS".into(),
            Request::Drain => "DRAIN".into(),
            Request::Chaos { seed } => format!("CHAOS {seed}"),
            Request::Query { sql, want_rows, deadline_ms } => {
                let mut out = String::from("QUERY ");
                if *want_rows {
                    out.push_str("ROWS ");
                }
                if let Some(ms) = deadline_ms {
                    out.push_str(&format!("DEADLINE={ms} "));
                }
                out.push_str(&sanitize(sql));
                out
            }
        }
    }
}

/// A server response line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// One streamed result row (precedes the terminal `OK`).
    Row(Vec<i64>),
    /// Terminal success: total row count and order-independent checksum.
    Ok {
        /// Result cardinality.
        rows: u64,
        /// XOR/row-hash checksum of the projected result.
        checksum: u64,
    },
    /// Terminal failure, as a typed [`Error`].
    Err(Error),
    /// Answer to [`Request::Faults`]: every injectable site name.
    Sites(Vec<String>),
}

impl Response {
    /// Renders the response as its wire line (no trailing newline). Error
    /// messages are flattened to one line so they cannot break framing.
    pub fn encode(&self) -> String {
        match self {
            Response::Pong => "PONG".into(),
            Response::Ok { rows, checksum } => format!("OK {rows} {checksum}"),
            Response::Row(vals) => {
                let mut out = String::from("ROW");
                for v in vals {
                    out.push(' ');
                    out.push_str(&v.to_string());
                }
                out
            }
            Response::Sites(names) => {
                let mut out = String::from("SITES");
                for n in names {
                    out.push(' ');
                    out.push_str(n);
                }
                out
            }
            Response::Err(e) => {
                let q = match e.query() {
                    Some(q) => q.0.to_string(),
                    None => "-".into(),
                };
                format!("ERR {} {} {}", e.wire_code(), q, sanitize(e.message()))
            }
        }
    }

    /// Parses one response line (the client side of the protocol).
    pub fn parse(line: &str) -> Result<Response> {
        let line = line.trim();
        let mut parts = line.splitn(2, ' ');
        let head = parts.next().unwrap_or_default();
        let rest = parts.next().unwrap_or_default();
        match head {
            "PONG" => Ok(Response::Pong),
            "OK" => {
                let mut nums = rest.split_whitespace();
                let rows = nums.next().and_then(|v| v.parse::<u64>().ok());
                let checksum = nums.next().and_then(|v| v.parse::<u64>().ok());
                match (rows, checksum) {
                    (Some(rows), Some(checksum)) => Ok(Response::Ok { rows, checksum }),
                    _ => Err(Error::ProtocolViolation(format!("malformed OK line {line:?}"))),
                }
            }
            "ROW" => {
                let mut vals = Vec::new();
                for tok in rest.split_whitespace() {
                    match tok.parse::<i64>() {
                        Ok(v) => vals.push(v),
                        Err(_) => {
                            return Err(Error::ProtocolViolation(format!(
                                "malformed ROW value {tok:?}"
                            )))
                        }
                    }
                }
                Ok(Response::Row(vals))
            }
            "SITES" => {
                Ok(Response::Sites(rest.split_whitespace().map(String::from).collect()))
            }
            "ERR" => {
                let mut fields = rest.splitn(3, ' ');
                let code = fields.next().unwrap_or_default();
                let qfield = fields.next().unwrap_or_default();
                let message = fields.next().unwrap_or_default().to_string();
                if code.is_empty() || qfield.is_empty() {
                    return Err(Error::ProtocolViolation(format!(
                        "malformed ERR line {line:?}"
                    )));
                }
                let query = match qfield {
                    "-" => None,
                    digits => match digits.parse::<u32>() {
                        Ok(n) => Some(QueryId(n)),
                        Err(_) => {
                            return Err(Error::ProtocolViolation(format!(
                                "malformed ERR query field {qfield:?}"
                            )))
                        }
                    },
                };
                Ok(Response::Err(Error::from_wire(code, query, message)))
            }
            _ => Err(Error::ProtocolViolation(format!(
                "unknown response head {head:?}"
            ))),
        }
    }
}

/// Flattens embedded newlines so one logical message stays one wire line.
fn sanitize(s: &str) -> String {
    if s.contains(['\n', '\r']) {
        s.replace(['\n', '\r'], " ")
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let cases = vec![
            Request::Ping,
            Request::Faults,
            Request::Drain,
            Request::Chaos { seed: 42 },
            Request::Query {
                sql: "SELECT count(*) FROM r WHERE r.a = 1".into(),
                want_rows: false,
                deadline_ms: None,
            },
            Request::Query { sql: "SELECT r.a FROM r".into(), want_rows: true, deadline_ms: Some(250) },
        ];
        for r in cases {
            assert_eq!(Request::parse(&r.encode()).unwrap(), r, "{}", r.encode());
        }
    }

    #[test]
    fn query_options_compose_in_any_prefix_order() {
        let r = Request::parse("QUERY DEADLINE=10 ROWS SELECT count(*) FROM r").unwrap();
        assert_eq!(
            r,
            Request::Query {
                sql: "SELECT count(*) FROM r".into(),
                want_rows: true,
                deadline_ms: Some(10)
            }
        );
    }

    #[test]
    fn malformed_requests_are_protocol_violations() {
        for line in ["", "NOPE", "CHAOS abc", "QUERY", "QUERY DEADLINE=abc x", "QUERY DEADLINE=0 SELECT"] {
            let e = Request::parse(line).unwrap_err();
            assert!(matches!(e, Error::ProtocolViolation(_)), "{line:?} -> {e}");
        }
    }

    #[test]
    fn response_round_trips_including_typed_errors() {
        let cases = vec![
            Response::Pong,
            Response::Ok { rows: 12, checksum: 0xdead },
            Response::Row(vec![1, -2, 3]),
            Response::Sites(vec!["ingestion".into(), "wire-torn-read".into()]),
            Response::Err(Error::Overloaded("queue full".into())),
            Response::Err(Error::DeadlineExceeded { query: QueryId(3), message: "250 ms".into() }),
            Response::Err(Error::QueryFault { query: QueryId(0), message: "injected".into() }),
            Response::Err(Error::Parse("unexpected token".into())),
        ];
        for r in cases {
            assert_eq!(Response::parse(&r.encode()).unwrap(), r, "{}", r.encode());
        }
    }

    #[test]
    fn error_messages_with_newlines_stay_one_line() {
        let r = Response::Err(Error::Internal("two\nlines".into()));
        let enc = r.encode();
        assert!(!enc.contains('\n'), "{enc:?}");
        assert!(matches!(Response::parse(&enc).unwrap(), Response::Err(Error::Internal(_))));
    }

    #[test]
    fn malformed_responses_are_protocol_violations() {
        for line in ["", "WHAT 1", "OK 1", "OK a b", "ROW 1 x", "ERR overloaded"] {
            let e = Response::parse(line).unwrap_err();
            assert!(matches!(e, Error::ProtocolViolation(_)), "{line:?} -> {e}");
        }
    }
}
