//! Strongly-typed identifiers used across the engine.
//!
//! Newtypes keep relation, column, and query indices from being mixed up in
//! the executor's hot loops while compiling down to plain integers.

use std::fmt;

/// Identifier of a query within a scheduled batch.
///
/// RouLette annotates every tuple with the set of queries it belongs to;
/// query ids index bits in those [`crate::QuerySet`]s. Batches of up to
/// 4096 queries (the paper's largest configuration) fit comfortably.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u32);

/// Identifier of a base relation in the catalog.
///
/// Lineages ([`crate::RelSet`]) are 64-bit bitsets, so at most 64 relations
/// may participate in one scheduled batch — far beyond TPC-DS (24 tables)
/// and the Join Order Benchmark (21 tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(pub u16);

/// Identifier of a column within a relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColId(pub u16);

impl QueryId {
    /// Index usable for slices/bitsets.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RelId {
    /// Index usable for slices/bitsets.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ColId {
    /// Index usable for slices.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Display for ColId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl From<usize> for QueryId {
    fn from(v: usize) -> Self {
        QueryId(v as u32)
    }
}

impl From<usize> for RelId {
    fn from(v: usize) -> Self {
        RelId(v as u16)
    }
}

impl From<usize> for ColId {
    fn from(v: usize) -> Self {
        ColId(v as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(QueryId(3).to_string(), "Q3");
        assert_eq!(RelId(1).to_string(), "R1");
        assert_eq!(ColId(7).to_string(), "C7");
    }

    #[test]
    fn index_round_trip() {
        assert_eq!(QueryId::from(5usize).index(), 5);
        assert_eq!(RelId::from(9usize).index(), 9);
        assert_eq!(ColId::from(2usize).index(), 2);
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(QueryId(1) < QueryId(2));
        assert!(RelId(0) < RelId(63));
    }
}
