//! Engine configuration.
//!
//! All tuning knobs of the prototype are collected here, with the paper's
//! published defaults: 1024-tuple vectors (§3, "Episodes … map 1-1 to
//! vectors (1024 input tuples in our prototype)"), and the grid-searched
//! Q-learning hyper-parameters `μ = 0.21`, `ε = 0.014`, `γ = 1` (§6).

use serde::{Deserialize, Serialize};

/// Tuning knobs for the RouLette engine and its learned policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Tuples per ingested vector; episodes map 1-1 to vectors.
    pub vector_size: usize,
    /// Q-learning learning rate μ. Lowering μ trades learning speed for
    /// smoothing noise due to local data distribution (§4.3).
    pub mu: f64,
    /// ε-greedy exploration probability. Lowering ε trades exploration for
    /// Q-table exploitation (§4.3).
    pub epsilon: f64,
    /// Discount rate γ; the paper sets γ = 1 because future rewards are
    /// equally important.
    pub gamma: f64,
    /// Number of executor workers (episodes processed concurrently, §5.2).
    pub workers: usize,
    /// Enable symmetric join pruning (§5.2).
    pub pruning: bool,
    /// Enable adaptive projections (§5.2).
    pub adaptive_projections: bool,
    /// Enable range-based grouped filters; when disabled, shared selections
    /// fall back to per-query predicate evaluation (§5.1 / Fig. 18).
    pub grouped_filters: bool,
    /// Enable the locality-conscious two-pass router; when disabled, routers
    /// multicast tuples directly (§5.1 / Fig. 18).
    pub locality_router: bool,
    /// Seed for the policy's exploration randomness and any tie-breaking.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            vector_size: 1024,
            mu: 0.21,
            epsilon: 0.014,
            gamma: 1.0,
            workers: 1,
            pruning: true,
            adaptive_projections: true,
            grouped_filters: true,
            locality_router: true,
            seed: 0x5EED_0001,
        }
    }
}

impl EngineConfig {
    /// Builder-style override of the vector size.
    pub fn with_vector_size(mut self, v: usize) -> Self {
        assert!(v > 0, "vector size must be positive");
        self.vector_size = v;
        self
    }

    /// Builder-style override of the worker count.
    pub fn with_workers(mut self, w: usize) -> Self {
        assert!(w > 0, "worker count must be positive");
        self.workers = w;
        self
    }

    /// Builder-style override of the learning hyper-parameters.
    pub fn with_learning(mut self, mu: f64, epsilon: f64, gamma: f64) -> Self {
        assert!((0.0..=1.0).contains(&mu), "μ must be in [0,1]");
        assert!((0.0..=1.0).contains(&epsilon), "ε must be in [0,1]");
        assert!((0.0..=1.0).contains(&gamma), "γ must be in [0,1]");
        self.mu = mu;
        self.epsilon = epsilon;
        self.gamma = gamma;
        self
    }

    /// Builder-style override of the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disables every §5 optimization — the "Plain" configuration of the
    /// ablation experiments (Figs. 17–18).
    pub fn plain(mut self) -> Self {
        self.pruning = false;
        self.adaptive_projections = false;
        self.grouped_filters = false;
        self.locality_router = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = EngineConfig::default();
        assert_eq!(c.vector_size, 1024);
        assert_eq!(c.mu, 0.21);
        assert_eq!(c.epsilon, 0.014);
        assert_eq!(c.gamma, 1.0);
        assert!(c.pruning && c.adaptive_projections && c.grouped_filters && c.locality_router);
    }

    #[test]
    fn plain_disables_all_optimizations() {
        let c = EngineConfig::default().plain();
        assert!(!c.pruning);
        assert!(!c.adaptive_projections);
        assert!(!c.grouped_filters);
        assert!(!c.locality_router);
    }

    #[test]
    fn builders_apply() {
        let c = EngineConfig::default()
            .with_vector_size(256)
            .with_workers(4)
            .with_learning(0.5, 0.1, 0.9)
            .with_seed(7);
        assert_eq!(c.vector_size, 256);
        assert_eq!(c.workers, 4);
        assert_eq!((c.mu, c.epsilon, c.gamma), (0.5, 0.1, 0.9));
        assert_eq!(c.seed, 7);
    }

    #[test]
    #[should_panic(expected = "vector size")]
    fn zero_vector_size_rejected() {
        let _ = EngineConfig::default().with_vector_size(0);
    }

    #[test]
    #[should_panic(expected = "μ must be")]
    fn out_of_range_mu_rejected() {
        let _ = EngineConfig::default().with_learning(1.5, 0.1, 1.0);
    }
}
