//! Engine configuration.
//!
//! All tuning knobs of the prototype are collected here, with the paper's
//! published defaults: 1024-tuple vectors (§3, "Episodes … map 1-1 to
//! vectors (1024 input tuples in our prototype)"), and the grid-searched
//! Q-learning hyper-parameters `μ = 0.21`, `ε = 0.014`, `γ = 1` (§6).
//!
//! Robustness knobs (`memory_budget_bytes`, the episode budgets) extend the
//! paper's design with fault isolation: they bound what one query or one
//! episode can cost the shared session. See DESIGN.md, "Failure semantics &
//! degradation ladder".

use crate::error::{Error, Result};

/// Telemetry knobs: how often the policy is probed and how many structured
/// events the bounded ring retains. These only take effect when a recorder
/// is attached to the engine; with no recorder, instrumentation compiles
/// down to a single branch per site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Sample a policy introspection probe (Q-table size, exploration
    /// share, TD error, reward distribution) every this many episodes.
    /// `0` disables policy probing.
    pub policy_probe_every: u64,
    /// Capacity of the structured event ring buffer; when full, the oldest
    /// event is dropped and a drop counter advances.
    pub event_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig { policy_probe_every: 64, event_capacity: 1024 }
    }
}

/// Tuning knobs for the RouLette engine and its learned policy.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Tuples per ingested vector; episodes map 1-1 to vectors.
    pub vector_size: usize,
    /// Q-learning learning rate μ. Lowering μ trades learning speed for
    /// smoothing noise due to local data distribution (§4.3).
    pub mu: f64,
    /// ε-greedy exploration probability. Lowering ε trades exploration for
    /// Q-table exploitation (§4.3).
    pub epsilon: f64,
    /// Discount rate γ; the paper sets γ = 1 because future rewards are
    /// equally important.
    pub gamma: f64,
    /// Number of executor workers (episodes processed concurrently, §5.2).
    pub workers: usize,
    /// Enable symmetric join pruning (§5.2).
    pub pruning: bool,
    /// Enable adaptive projections (§5.2).
    pub adaptive_projections: bool,
    /// Enable range-based grouped filters; when disabled, shared selections
    /// fall back to per-query predicate evaluation (§5.1 / Fig. 18).
    pub grouped_filters: bool,
    /// Enable the locality-conscious two-pass router; when disabled, routers
    /// multicast tuples directly (§5.1 / Fig. 18).
    pub locality_router: bool,
    /// Seed for the policy's exploration randomness and any tie-breaking.
    pub seed: u64,
    /// Upper bound on STeM memory for a session, in bytes. `None` means
    /// unbounded (the seed behaviour). When set, the engine degrades in
    /// stages as pressure rises — force pruning on, refuse new admissions,
    /// finally quarantine the heaviest query — rather than aborting.
    pub memory_budget_bytes: Option<usize>,
    /// Watchdog: maximum join tuples one episode may produce before its
    /// join phase is replanned with the greedy fallback policy. `None`
    /// disables the tuple watchdog.
    pub episode_tuple_budget: Option<u64>,
    /// Watchdog: maximum wall-clock milliseconds for one episode's join
    /// phase before it is replanned with the greedy fallback policy.
    /// `None` disables the time watchdog.
    pub episode_time_budget_ms: Option<u64>,
    /// Telemetry sampling knobs; inert unless a recorder is attached.
    pub telemetry: TelemetryConfig,
    /// Reuse each worker's episode scratch arena across episodes (the
    /// allocation-free steady state). Disabling it makes every episode
    /// allocate fresh working buffers — the seed behaviour, kept as a
    /// differential-testing reference and allocator-pressure ablation.
    pub scratch_reuse: bool,
    /// Run the vector hot loops (filter masking, bulk query-set
    /// intersection, survivor compaction, routing partition) through the
    /// unrolled data-parallel kernel layer (DESIGN.md §14). Disabling it
    /// pins the scalar row-at-a-time reference path, which produces
    /// byte-identical results — used by the kernel differential tests and
    /// as an optimization ablation.
    pub wide_kernels: bool,
    /// Number of hash shards each relation's STeM is partitioned into
    /// (DESIGN.md §15). `1` (the default) is the unsharded legacy layout;
    /// larger values split every STeM by join-key hash so concurrent
    /// workers insert and probe under disjoint latches. Per-query results
    /// are identical across shard counts; sharding only changes which lock
    /// an episode touches.
    pub stem_shards: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            vector_size: 1024,
            mu: 0.21,
            epsilon: 0.014,
            gamma: 1.0,
            workers: 1,
            pruning: true,
            adaptive_projections: true,
            grouped_filters: true,
            locality_router: true,
            seed: 0x5EED_0001,
            memory_budget_bytes: None,
            episode_tuple_budget: None,
            episode_time_budget_ms: None,
            telemetry: TelemetryConfig::default(),
            scratch_reuse: true,
            wide_kernels: true,
            stem_shards: 1,
        }
    }
}

impl EngineConfig {
    /// Builder-style override of the vector size.
    pub fn with_vector_size(mut self, v: usize) -> Result<Self> {
        if v == 0 {
            return Err(Error::InvalidQuery("vector size must be positive".into()));
        }
        self.vector_size = v;
        Ok(self)
    }

    /// Builder-style override of the worker count.
    pub fn with_workers(mut self, w: usize) -> Result<Self> {
        if w == 0 {
            return Err(Error::InvalidQuery("worker count must be positive".into()));
        }
        self.workers = w;
        Ok(self)
    }

    /// Builder-style override of the learning hyper-parameters.
    pub fn with_learning(mut self, mu: f64, epsilon: f64, gamma: f64) -> Result<Self> {
        for (name, v) in [("μ", mu), ("ε", epsilon), ("γ", gamma)] {
            if !(0.0..=1.0).contains(&v) {
                return Err(Error::InvalidQuery(format!("{name} must be in [0,1], got {v}")));
            }
        }
        self.mu = mu;
        self.epsilon = epsilon;
        self.gamma = gamma;
        Ok(self)
    }

    /// Builder-style override of the session memory budget.
    pub fn with_memory_budget(mut self, bytes: usize) -> Result<Self> {
        if bytes == 0 {
            return Err(Error::InvalidQuery("memory budget must be positive".into()));
        }
        self.memory_budget_bytes = Some(bytes);
        Ok(self)
    }

    /// Builder-style override of the episode watchdog budgets. Either
    /// budget may be `None` to disable that trigger.
    pub fn with_episode_budget(
        mut self,
        tuples: Option<u64>,
        time_ms: Option<u64>,
    ) -> Result<Self> {
        if tuples == Some(0) || time_ms == Some(0) {
            return Err(Error::InvalidQuery("episode budgets must be positive".into()));
        }
        self.episode_tuple_budget = tuples;
        self.episode_time_budget_ms = time_ms;
        Ok(self)
    }

    /// Builder-style override of the telemetry knobs. `policy_probe_every`
    /// may be 0 (probing disabled), but the event ring must hold at least
    /// one event.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Result<Self> {
        if telemetry.event_capacity == 0 {
            return Err(Error::InvalidQuery("event capacity must be positive".into()));
        }
        self.telemetry = telemetry;
        Ok(self)
    }

    /// Builder-style override of the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style override of scratch-arena reuse (see
    /// [`EngineConfig::scratch_reuse`]).
    pub fn with_scratch_reuse(mut self, reuse: bool) -> Self {
        self.scratch_reuse = reuse;
        self
    }

    /// Builder-style override of the STeM shard count (see
    /// [`EngineConfig::stem_shards`]). Rejects 0; capped at 64 shards —
    /// beyond that the per-shard bucket tables fragment without buying
    /// additional lock disjointness on realistic core counts.
    pub fn with_stem_shards(mut self, shards: usize) -> Result<Self> {
        if shards == 0 {
            return Err(Error::InvalidQuery("stem shard count must be positive".into()));
        }
        if shards > 64 {
            return Err(Error::InvalidQuery(format!(
                "stem shard count must be ≤ 64, got {shards}"
            )));
        }
        self.stem_shards = shards;
        Ok(self)
    }

    /// Builder-style override of the data-parallel kernel layer (see
    /// [`EngineConfig::wide_kernels`]). `false` pins the scalar reference
    /// path used by the `kernel_equiv` differential suite.
    pub fn with_wide_kernels(mut self, wide: bool) -> Self {
        self.wide_kernels = wide;
        self
    }

    /// Disables every §5 optimization — the "Plain" configuration of the
    /// ablation experiments (Figs. 17–18).
    pub fn plain(mut self) -> Self {
        self.pruning = false;
        self.adaptive_projections = false;
        self.grouped_filters = false;
        self.locality_router = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = EngineConfig::default();
        assert_eq!(c.vector_size, 1024);
        assert_eq!(c.mu, 0.21);
        assert_eq!(c.epsilon, 0.014);
        assert_eq!(c.gamma, 1.0);
        assert!(c.pruning && c.adaptive_projections && c.grouped_filters && c.locality_router);
        // Sharding is an extension knob; the paper's layout is one STeM
        // (one latch) per relation.
        assert_eq!(c.stem_shards, 1);
    }

    #[test]
    fn plain_disables_all_optimizations() {
        let c = EngineConfig::default().plain();
        assert!(!c.pruning);
        assert!(!c.adaptive_projections);
        assert!(!c.grouped_filters);
        assert!(!c.locality_router);
    }

    #[test]
    fn builders_apply() {
        let c = EngineConfig::default()
            .with_vector_size(256)
            .unwrap()
            .with_workers(4)
            .unwrap()
            .with_learning(0.5, 0.1, 0.9)
            .unwrap()
            .with_memory_budget(1 << 20)
            .unwrap()
            .with_episode_budget(Some(10_000), None)
            .unwrap()
            .with_stem_shards(8)
            .unwrap()
            .with_seed(7);
        assert_eq!(c.vector_size, 256);
        assert_eq!(c.workers, 4);
        assert_eq!(c.stem_shards, 8);
        assert_eq!((c.mu, c.epsilon, c.gamma), (0.5, 0.1, 0.9));
        assert_eq!(c.seed, 7);
        assert_eq!(c.memory_budget_bytes, Some(1 << 20));
        assert_eq!(c.episode_tuple_budget, Some(10_000));
        assert_eq!(c.episode_time_budget_ms, None);
    }

    #[test]
    fn invalid_knobs_are_errors_not_panics() {
        assert!(matches!(
            EngineConfig::default().with_vector_size(0),
            Err(Error::InvalidQuery(_))
        ));
        assert!(matches!(
            EngineConfig::default().with_workers(0),
            Err(Error::InvalidQuery(_))
        ));
        let e = EngineConfig::default().with_learning(1.5, 0.1, 1.0).unwrap_err();
        assert!(e.to_string().contains("μ"), "{e}");
        assert!(EngineConfig::default().with_memory_budget(0).is_err());
        assert!(EngineConfig::default().with_stem_shards(0).is_err());
        assert!(EngineConfig::default().with_stem_shards(65).is_err());
        assert!(EngineConfig::default().with_stem_shards(64).is_ok());
        assert!(EngineConfig::default().with_episode_budget(Some(0), None).is_err());
        assert!(EngineConfig::default()
            .with_telemetry(TelemetryConfig { policy_probe_every: 1, event_capacity: 0 })
            .is_err());
    }

    #[test]
    fn telemetry_defaults_and_builder() {
        let c = EngineConfig::default();
        assert_eq!(c.telemetry.policy_probe_every, 64);
        assert_eq!(c.telemetry.event_capacity, 1024);
        let c = c
            .with_telemetry(TelemetryConfig { policy_probe_every: 0, event_capacity: 16 })
            .unwrap();
        assert_eq!(c.telemetry.policy_probe_every, 0);
        assert_eq!(c.telemetry.event_capacity, 16);
    }
}
