//! # roulette-core
//!
//! Foundation types for the RouLette multi-query execution engine
//! (Sioulas & Ailamaki, *Scalable Multi-Query Execution using Reinforcement
//! Learning*, SIGMOD 2021).
//!
//! This crate implements the *Data-Query model* primitives shared by every
//! other crate in the workspace:
//!
//! * [`QuerySet`] / [`QuerySetColumn`] — per-tuple query membership bitsets,
//!   stored columnarly so that shared selections and joins can filter
//!   query-sets with straight-line word operations;
//! * [`RelSet`] — compact relation-set bitsets used for plan lineages;
//! * [`CostModel`] — the linear `κ·n_in + λ·n_out` operator cost model of
//!   §4.3, including least-squares calibration from measured timings;
//! * [`EngineConfig`] — engine- and learning-related tuning knobs with the
//!   paper's published defaults (`μ = 0.21`, `ε = 0.014`, `γ = 1`);
//! * [`Error`] — the shared error type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod cost;
pub mod error;
pub mod ids;
pub mod queryset;
pub mod relset;

pub use config::{EngineConfig, TelemetryConfig};
pub use cost::{CostModel, OpKind};
pub use error::{Error, Result, WIRE_CODES};
pub use ids::{ColId, QueryId, RelId};
pub use queryset::{QuerySet, QuerySetColumn, RowMask};
pub use relset::RelSet;
