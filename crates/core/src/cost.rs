//! The linear operator cost model of §4.3.
//!
//! RouLette's Q-learning converts observed cardinalities into time estimates
//! with a per-operator-kind linear model `c(n_in, n_out) = κ·n_in + λ·n_out`.
//! The paper calibrates κ and λ per operator type by timing executions at
//! varying input/output sizes and fitting a least-squares regression; the
//! published constants are the defaults here and [`calibrate`] reproduces
//! the fitting procedure for re-calibration on new hardware.


/// Operator kinds distinguished by the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Selection-phase shared selection (grouped filter evaluation).
    Selection,
    /// Join-phase routing selection (bitwise mask AND).
    RoutingSelection,
    /// STeM probe (shared symmetric hash join step).
    Join,
    /// STeM insert (build side of the symmetric join).
    Insert,
    /// Output router (multicast to RouLette sources).
    Router,
}

impl OpKind {
    /// All kinds, for table-driven iteration.
    pub const ALL: [OpKind; 5] =
        [OpKind::Selection, OpKind::RoutingSelection, OpKind::Join, OpKind::Insert, OpKind::Router];

    #[inline]
    fn index(self) -> usize {
        match self {
            OpKind::Selection => 0,
            OpKind::RoutingSelection => 1,
            OpKind::Join => 2,
            OpKind::Insert => 3,
            OpKind::Router => 4,
        }
    }
}

/// Per-kind `κ·n_in + λ·n_out` cost model (units: nanoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    kappa: [f64; 5],
    lambda: [f64; 5],
}

impl Default for CostModel {
    /// The paper's published calibration (§4.3): selections κ=9.32 λ=4.62,
    /// routing selections κ=3.60 λ=0.92, joins κ=38.57 λ=43.29. Inserts and
    /// routers are not reported; we default inserts to the join build cost
    /// and routers to the routing-selection cost, both re-calibratable.
    fn default() -> Self {
        let mut m = CostModel { kappa: [0.0; 5], lambda: [0.0; 5] };
        m.set(OpKind::Selection, 9.32, 4.62);
        m.set(OpKind::RoutingSelection, 3.60, 0.92);
        m.set(OpKind::Join, 38.57, 43.29);
        m.set(OpKind::Insert, 38.57, 0.0);
        m.set(OpKind::Router, 3.60, 0.92);
        m
    }
}

impl CostModel {
    /// Cost model with all coefficients zero (useful for tests).
    pub fn zero() -> Self {
        CostModel { kappa: [0.0; 5], lambda: [0.0; 5] }
    }

    /// A cost model that simply counts output tuples (κ=0, λ=1), which turns
    /// cumulative cost into the paper's implementation-independent
    /// "intermediate tuples" metric of §6.2.
    pub fn tuple_count() -> Self {
        CostModel { kappa: [0.0; 5], lambda: [1.0; 5] }
    }

    /// Overrides the coefficients for one operator kind.
    pub fn set(&mut self, kind: OpKind, kappa: f64, lambda: f64) {
        self.kappa[kind.index()] = kappa;
        self.lambda[kind.index()] = lambda;
    }

    /// κ coefficient for `kind`.
    #[inline]
    pub fn kappa(&self, kind: OpKind) -> f64 {
        self.kappa[kind.index()]
    }

    /// λ coefficient for `kind`.
    #[inline]
    pub fn lambda(&self, kind: OpKind) -> f64 {
        self.lambda[kind.index()]
    }

    /// Estimated cost of processing `n_in` input tuples producing `n_out`.
    #[inline]
    pub fn cost(&self, kind: OpKind, n_in: u64, n_out: u64) -> f64 {
        self.kappa[kind.index()] * n_in as f64 + self.lambda[kind.index()] * n_out as f64
    }
}

/// One calibration observation: an operator execution timed at a given
/// input and output size.
#[derive(Debug, Clone, Copy)]
pub struct CostSample {
    /// Input cardinality.
    pub n_in: u64,
    /// Output cardinality.
    pub n_out: u64,
    /// Measured execution time in nanoseconds.
    pub time_ns: f64,
}

/// Fits `time ≈ κ·n_in + λ·n_out` by ordinary least squares (no intercept),
/// as in the paper's calibration. Returns `(κ, λ)`.
///
/// Returns an error if fewer than two samples are given or the design matrix
/// is singular (e.g. `n_out` proportional to `n_in` in every sample); in the
/// singular-but-usable case where all outputs are zero, λ is reported as 0.
pub fn calibrate(samples: &[CostSample]) -> crate::Result<(f64, f64)> {
    if samples.len() < 2 {
        return Err(crate::Error::Calibration("need at least two samples".into()));
    }
    // Normal equations for X = [n_in n_out], y = time:
    //   [Σx²  Σxz] [κ]   [Σxy]
    //   [Σxz  Σz²] [λ] = [Σzy]
    let (mut sxx, mut sxz, mut szz, mut sxy, mut szy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
    for s in samples {
        let (x, z, y) = (s.n_in as f64, s.n_out as f64, s.time_ns);
        sxx += x * x;
        sxz += x * z;
        szz += z * z;
        sxy += x * y;
        szy += z * y;
    }
    if szz == 0.0 {
        // All outputs empty: degenerate to one-variable regression on n_in.
        if sxx == 0.0 {
            return Err(crate::Error::Calibration("all samples are zero-sized".into()));
        }
        return Ok((sxy / sxx, 0.0));
    }
    let det = sxx * szz - sxz * sxz;
    if det.abs() < 1e-9 * sxx.max(szz) {
        return Err(crate::Error::Calibration(
            "singular design matrix: vary the output/input ratio across samples".into(),
        ));
    }
    let kappa = (sxy * szz - szy * sxz) / det;
    let lambda = (szy * sxx - sxy * sxz) / det;
    Ok((kappa, lambda))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let m = CostModel::default();
        assert_eq!(m.kappa(OpKind::Selection), 9.32);
        assert_eq!(m.lambda(OpKind::Selection), 4.62);
        assert_eq!(m.kappa(OpKind::RoutingSelection), 3.60);
        assert_eq!(m.lambda(OpKind::RoutingSelection), 0.92);
        assert_eq!(m.kappa(OpKind::Join), 38.57);
        assert_eq!(m.lambda(OpKind::Join), 43.29);
    }

    #[test]
    fn cost_is_linear() {
        let m = CostModel::default();
        let c1 = m.cost(OpKind::Join, 100, 50);
        assert!((c1 - (38.57 * 100.0 + 43.29 * 50.0)).abs() < 1e-9);
        let c2 = m.cost(OpKind::Join, 200, 100);
        assert!((c2 - 2.0 * c1).abs() < 1e-6);
    }

    #[test]
    fn tuple_count_model_counts_outputs() {
        let m = CostModel::tuple_count();
        assert_eq!(m.cost(OpKind::Join, 123, 7), 7.0);
        assert_eq!(m.cost(OpKind::Selection, 9, 2), 2.0);
    }

    #[test]
    fn calibrate_recovers_exact_coefficients() {
        let (k, l) = (12.5, 3.25);
        let samples: Vec<CostSample> = [(10u64, 3u64), (100, 45), (1000, 20), (64, 64)]
            .iter()
            .map(|&(n_in, n_out)| CostSample {
                n_in,
                n_out,
                time_ns: k * n_in as f64 + l * n_out as f64,
            })
            .collect();
        let (kf, lf) = calibrate(&samples).unwrap();
        assert!((kf - k).abs() < 1e-6, "kappa {kf}");
        assert!((lf - l).abs() < 1e-6, "lambda {lf}");
    }

    #[test]
    fn calibrate_handles_zero_output_samples() {
        let samples = [
            CostSample { n_in: 10, n_out: 0, time_ns: 50.0 },
            CostSample { n_in: 20, n_out: 0, time_ns: 100.0 },
        ];
        let (k, l) = calibrate(&samples).unwrap();
        assert!((k - 5.0).abs() < 1e-9);
        assert_eq!(l, 0.0);
    }

    #[test]
    fn calibrate_rejects_degenerate_inputs() {
        assert!(calibrate(&[]).is_err());
        assert!(calibrate(&[CostSample { n_in: 1, n_out: 1, time_ns: 1.0 }]).is_err());
        // Perfectly collinear: n_out = n_in.
        let collinear = [
            CostSample { n_in: 10, n_out: 10, time_ns: 10.0 },
            CostSample { n_in: 20, n_out: 20, time_ns: 20.0 },
            CostSample { n_in: 30, n_out: 30, time_ns: 30.0 },
        ];
        assert!(calibrate(&collinear).is_err());
    }

    #[test]
    fn calibrate_with_noise_stays_close() {
        let samples: Vec<CostSample> = (1..50u64)
            .map(|i| {
                let n_in = i * 13;
                let n_out = (i * 7) % 40;
                let noise = if i % 2 == 0 { 3.0 } else { -3.0 };
                CostSample {
                    n_in,
                    n_out,
                    time_ns: 9.0 * n_in as f64 + 4.0 * n_out as f64 + noise,
                }
            })
            .collect();
        let (k, l) = calibrate(&samples).unwrap();
        assert!((k - 9.0).abs() < 0.1, "kappa {k}");
        assert!((l - 4.0).abs() < 0.5, "lambda {l}");
    }
}
