//! Shared error type for the workspace.

use crate::ids::QueryId;
use std::fmt;

/// Convenience alias used across all RouLette crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the RouLette engine and its substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A relation, column, or query referenced something missing from the
    /// catalog.
    Schema(String),
    /// A query is malformed (e.g. disconnected join graph, type mismatch).
    InvalidQuery(String),
    /// SQL-ish parser failure, with position information in the message.
    Parse(String),
    /// Plan construction or execution invariant violation.
    Plan(String),
    /// Cost-model calibration failure.
    Calibration(String),
    /// Engine capacity exceeded (e.g. more than 64 relations in a batch).
    Capacity(String),
    /// A resource budget was exhausted (e.g. the session memory budget);
    /// the operation was refused rather than degrading other queries.
    ResourceExhausted(String),
    /// An internal invariant was violated (e.g. a panic caught at an
    /// isolation boundary). Unlike `Plan`, this signals a defect, not a
    /// user error.
    Internal(String),
    /// A specific query faulted during shared execution and was
    /// quarantined; the rest of the session is unaffected.
    QueryFault {
        /// The query evicted from the shared plan.
        query: QueryId,
        /// What went wrong.
        message: String,
    },
    /// The serving frontend refused the request under load: the admission
    /// queue was at capacity, the engine's memory-pressure ladder had
    /// paused admissions, or the server was draining. The request was
    /// never admitted; retrying after backoff is safe.
    Overloaded(String),
    /// A query exceeded its deadline budget and was evicted from the
    /// shared plan; its accumulated outputs are partial and untrusted.
    DeadlineExceeded {
        /// The query evicted from the shared plan.
        query: QueryId,
        /// The budget that was exceeded, rendered for the client.
        message: String,
    },
    /// A wire-protocol request was malformed (unknown command, truncated
    /// line, bad deadline syntax) or an error code received over the wire
    /// was not recognized.
    ProtocolViolation(String),
}

/// Every stable wire code, aligned with [`Error::wire_code`]. Serving
/// clients and tests iterate this slice so the wire vocabulary cannot
/// silently drift from the enum.
pub const WIRE_CODES: &[&str] = &[
    "schema",
    "invalid-query",
    "parse",
    "plan",
    "calibration",
    "capacity",
    "resource-exhausted",
    "internal",
    "query-fault",
    "overloaded",
    "deadline-exceeded",
    "protocol-violation",
];

impl Error {
    /// The query a fault is attributed to, if the error carries one.
    pub fn query(&self) -> Option<QueryId> {
        match self {
            Error::QueryFault { query, .. } | Error::DeadlineExceeded { query, .. } => {
                Some(*query)
            }
            _ => None,
        }
    }

    /// The stable kebab-case wire code for this error. Codes are part of
    /// the serving protocol: they never change meaning, and every variant
    /// has exactly one (see [`WIRE_CODES`] and [`Error::from_wire`]).
    pub fn wire_code(&self) -> &'static str {
        match self {
            Error::Schema(_) => "schema",
            Error::InvalidQuery(_) => "invalid-query",
            Error::Parse(_) => "parse",
            Error::Plan(_) => "plan",
            Error::Calibration(_) => "calibration",
            Error::Capacity(_) => "capacity",
            Error::ResourceExhausted(_) => "resource-exhausted",
            Error::Internal(_) => "internal",
            Error::QueryFault { .. } => "query-fault",
            Error::Overloaded(_) => "overloaded",
            Error::DeadlineExceeded { .. } => "deadline-exceeded",
            Error::ProtocolViolation(_) => "protocol-violation",
        }
    }

    /// The human-readable message carried by this error (without the
    /// category prefix `Display` adds). Used by the wire encoding, which
    /// transmits `(code, query, message)` and reconstructs via
    /// [`Error::from_wire`].
    pub fn message(&self) -> &str {
        match self {
            Error::Schema(m)
            | Error::InvalidQuery(m)
            | Error::Parse(m)
            | Error::Plan(m)
            | Error::Calibration(m)
            | Error::Capacity(m)
            | Error::ResourceExhausted(m)
            | Error::Internal(m)
            | Error::Overloaded(m)
            | Error::ProtocolViolation(m) => m,
            Error::QueryFault { message, .. } | Error::DeadlineExceeded { message, .. } => {
                message
            }
        }
    }

    /// Reconstructs an error from its wire encoding. Query-attributed
    /// codes (`query-fault`, `deadline-exceeded`) require `query`; when it
    /// is absent they — like unknown codes — decode to
    /// [`Error::ProtocolViolation`], so a peer speaking a newer protocol
    /// degrades to a typed error instead of a parse failure.
    pub fn from_wire(code: &str, query: Option<QueryId>, message: String) -> Error {
        match (code, query) {
            ("schema", _) => Error::Schema(message),
            ("invalid-query", _) => Error::InvalidQuery(message),
            ("parse", _) => Error::Parse(message),
            ("plan", _) => Error::Plan(message),
            ("calibration", _) => Error::Calibration(message),
            ("capacity", _) => Error::Capacity(message),
            ("resource-exhausted", _) => Error::ResourceExhausted(message),
            ("internal", _) => Error::Internal(message),
            ("overloaded", _) => Error::Overloaded(message),
            ("protocol-violation", _) => Error::ProtocolViolation(message),
            ("query-fault", Some(query)) => Error::QueryFault { query, message },
            ("deadline-exceeded", Some(query)) => Error::DeadlineExceeded { query, message },
            ("query-fault" | "deadline-exceeded", None) => Error::ProtocolViolation(format!(
                "wire code {code:?} requires a query attribution: {message}"
            )),
            _ => Error::ProtocolViolation(format!("unknown wire code {code:?}: {message}")),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Plan(m) => write!(f, "plan error: {m}"),
            Error::Calibration(m) => write!(f, "calibration error: {m}"),
            Error::Capacity(m) => write!(f, "capacity error: {m}"),
            Error::ResourceExhausted(m) => write!(f, "resource exhausted: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
            Error::QueryFault { query, message } => {
                write!(f, "query Q{} faulted: {message}", query.0)
            }
            Error::Overloaded(m) => write!(f, "overloaded: {m}"),
            Error::DeadlineExceeded { query, message } => {
                write!(f, "query Q{} exceeded its deadline: {message}", query.0)
            }
            Error::ProtocolViolation(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = Error::Parse("unexpected token at 12".into());
        assert_eq!(e.to_string(), "parse error: unexpected token at 12");
        let e = Error::Capacity("65 relations".into());
        assert!(e.to_string().contains("capacity"));
    }

    #[test]
    fn fault_variants_render_and_attribute() {
        let e = Error::QueryFault { query: QueryId(3), message: "io fault".into() };
        assert_eq!(e.to_string(), "query Q3 faulted: io fault");
        assert_eq!(e.query(), Some(QueryId(3)));
        assert_eq!(Error::ResourceExhausted("budget".into()).query(), None);
        assert!(Error::Internal("panic".into()).to_string().contains("internal"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::Plan("x".into()));
    }

    fn one_of_each() -> Vec<Error> {
        vec![
            Error::Schema("s".into()),
            Error::InvalidQuery("iq".into()),
            Error::Parse("p".into()),
            Error::Plan("pl".into()),
            Error::Calibration("c".into()),
            Error::Capacity("cap".into()),
            Error::ResourceExhausted("re".into()),
            Error::Internal("i".into()),
            Error::QueryFault { query: QueryId(7), message: "qf".into() },
            Error::Overloaded("queue full".into()),
            Error::DeadlineExceeded { query: QueryId(3), message: "250 ms".into() },
            Error::ProtocolViolation("bad line".into()),
        ]
    }

    #[test]
    fn serving_variants_render_and_attribute() {
        let e = Error::Overloaded("depth 256".into());
        assert_eq!(e.to_string(), "overloaded: depth 256");
        assert_eq!(e.query(), None);
        let e = Error::DeadlineExceeded { query: QueryId(5), message: "100 ms".into() };
        assert!(e.to_string().contains("Q5"));
        assert_eq!(e.query(), Some(QueryId(5)));
        let e = Error::ProtocolViolation("truncated".into());
        assert!(e.to_string().contains("protocol"));
        assert_eq!(e.query(), None);
    }

    #[test]
    fn wire_codes_cover_every_variant_exactly_once() {
        let codes: Vec<&str> = one_of_each().iter().map(Error::wire_code).collect();
        assert_eq!(codes, WIRE_CODES, "enum order and WIRE_CODES must stay aligned");
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len(), "codes must be unique");
    }

    #[test]
    fn wire_round_trip_preserves_variant_query_and_message() {
        for e in one_of_each() {
            let decoded =
                Error::from_wire(e.wire_code(), e.query(), e.message().to_string());
            assert_eq!(decoded, e, "round-trip of {}", e.wire_code());
        }
    }

    #[test]
    fn unknown_or_malformed_wire_codes_decode_to_protocol_violation() {
        let e = Error::from_wire("no-such-code", None, "m".into());
        assert!(matches!(e, Error::ProtocolViolation(_)), "{e}");
        // Query-attributed codes without a query cannot reconstruct.
        let e = Error::from_wire("query-fault", None, "m".into());
        assert!(matches!(e, Error::ProtocolViolation(_)), "{e}");
        let e = Error::from_wire("deadline-exceeded", None, "m".into());
        assert!(matches!(e, Error::ProtocolViolation(_)), "{e}");
    }
}
