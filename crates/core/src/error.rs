//! Shared error type for the workspace.

use crate::ids::QueryId;
use std::fmt;

/// Convenience alias used across all RouLette crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the RouLette engine and its substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A relation, column, or query referenced something missing from the
    /// catalog.
    Schema(String),
    /// A query is malformed (e.g. disconnected join graph, type mismatch).
    InvalidQuery(String),
    /// SQL-ish parser failure, with position information in the message.
    Parse(String),
    /// Plan construction or execution invariant violation.
    Plan(String),
    /// Cost-model calibration failure.
    Calibration(String),
    /// Engine capacity exceeded (e.g. more than 64 relations in a batch).
    Capacity(String),
    /// A resource budget was exhausted (e.g. the session memory budget);
    /// the operation was refused rather than degrading other queries.
    ResourceExhausted(String),
    /// An internal invariant was violated (e.g. a panic caught at an
    /// isolation boundary). Unlike `Plan`, this signals a defect, not a
    /// user error.
    Internal(String),
    /// A specific query faulted during shared execution and was
    /// quarantined; the rest of the session is unaffected.
    QueryFault {
        /// The query evicted from the shared plan.
        query: QueryId,
        /// What went wrong.
        message: String,
    },
}

impl Error {
    /// The query a fault is attributed to, if the error carries one.
    pub fn query(&self) -> Option<QueryId> {
        match self {
            Error::QueryFault { query, .. } => Some(*query),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Plan(m) => write!(f, "plan error: {m}"),
            Error::Calibration(m) => write!(f, "calibration error: {m}"),
            Error::Capacity(m) => write!(f, "capacity error: {m}"),
            Error::ResourceExhausted(m) => write!(f, "resource exhausted: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
            Error::QueryFault { query, message } => {
                write!(f, "query Q{} faulted: {message}", query.0)
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = Error::Parse("unexpected token at 12".into());
        assert_eq!(e.to_string(), "parse error: unexpected token at 12");
        let e = Error::Capacity("65 relations".into());
        assert!(e.to_string().contains("capacity"));
    }

    #[test]
    fn fault_variants_render_and_attribute() {
        let e = Error::QueryFault { query: QueryId(3), message: "io fault".into() };
        assert_eq!(e.to_string(), "query Q3 faulted: io fault");
        assert_eq!(e.query(), Some(QueryId(3)));
        assert_eq!(Error::ResourceExhausted("budget".into()).query(), None);
        assert!(Error::Internal("panic".into()).to_string().contains("internal"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::Plan("x".into()));
    }
}
