//! Shared error type for the workspace.

use std::fmt;

/// Convenience alias used across all RouLette crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the RouLette engine and its substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A relation, column, or query referenced something missing from the
    /// catalog.
    Schema(String),
    /// A query is malformed (e.g. disconnected join graph, type mismatch).
    InvalidQuery(String),
    /// SQL-ish parser failure, with position information in the message.
    Parse(String),
    /// Plan construction or execution invariant violation.
    Plan(String),
    /// Cost-model calibration failure.
    Calibration(String),
    /// Engine capacity exceeded (e.g. more than 64 relations in a batch).
    Capacity(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Plan(m) => write!(f, "plan error: {m}"),
            Error::Calibration(m) => write!(f, "calibration error: {m}"),
            Error::Capacity(m) => write!(f, "capacity error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = Error::Parse("unexpected token at 12".into());
        assert_eq!(e.to_string(), "parse error: unexpected token at 12");
        let e = Error::Capacity("65 relations".into());
        assert!(e.to_string().contains("capacity"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::Plan("x".into()));
    }
}
